//! # vadasa-obs — zero-dependency telemetry for the Vada-SA workspace
//!
//! The paper's scalability story (Figures 7e/7f) splits elapsed time into
//! reasoning vs. risk evaluation; reproducing it — and chasing the
//! ROADMAP's "fast as the hardware allows" goal — requires seeing where
//! time and memory go *inside* the engine and the anonymization cycle.
//! This crate is the substrate: spans with monotonic timing, counters,
//! log2-bucketed histograms, and a pluggable [`Collector`] behind them.
//! It deliberately takes **no external dependencies** (the build works
//! with workspace-path dependencies only) and is enforced dependency-free
//! by CI.
//!
//! ## Architecture
//!
//! Instrumented code talks to an [`Obs`] handle — a thin wrapper over
//! `Option<&dyn Collector>`. With no collector attached every call is a
//! no-op behind one branch, so instrumentation can stay in hot paths.
//! Two collectors ship in-tree:
//!
//! - [`Recorder`] — in-memory; aggregates counters and histograms and
//!   keeps every event for inspection in tests;
//! - [`JsonLinesWriter`] — streams one JSON object per event to any
//!   `Write` sink (see the schema below);
//!
//! and the *no-collector* state itself is the no-op default.
//!
//! ## JSON-lines schema
//!
//! Every line is one event object:
//!
//! ```json
//! {"type":"span","name":"engine.stratum","seq":3,"t_ns":88122,"dur_ns":81022,"fields":{"stratum":0,"rounds":5}}
//! {"type":"counter","name":"engine.facts_derived","seq":4,"t_ns":90011,"value":812,"fields":{}}
//! {"type":"observe","name":"engine.round_delta","seq":5,"t_ns":90100,"value":64,"fields":{"stratum":0}}
//! ```
//!
//! `seq` is a per-collector sequence number, `t_ns` the monotonic offset
//! from collector creation; `span` events add `dur_ns`, `counter` and
//! `observe` events add `value`. `fields` holds event-specific context.

#![warn(missing_docs)]

pub mod json;

use json::Json;
use std::borrow::Cow;
use std::io::Write;
use std::sync::Mutex;
use std::time::Instant;

/// A field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// Text.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::Int(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::UInt(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::UInt(v as u64)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::Float(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl FieldValue {
    fn to_json(&self) -> Json {
        match self {
            FieldValue::Int(v) => Json::Num(*v as f64),
            FieldValue::UInt(v) => Json::Num(*v as f64),
            FieldValue::Float(v) => Json::Num(*v),
            FieldValue::Str(s) => Json::Str(s.clone()),
            FieldValue::Bool(b) => Json::Bool(*b),
        }
    }
}

/// What kind of measurement an [`Event`] carries.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A completed span with its duration.
    Span {
        /// Wall-clock duration in nanoseconds (monotonic clock).
        dur_ns: u64,
    },
    /// A counter increment.
    Counter {
        /// The increment.
        delta: u64,
    },
    /// A histogram observation.
    Observe {
        /// The observed value.
        value: u64,
    },
}

/// One telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// The measurement.
    pub kind: EventKind,
    /// Dotted event name, e.g. `engine.stratum` or `cycle.iteration`.
    pub name: Cow<'static, str>,
    /// Event-specific context fields.
    pub fields: Vec<(Cow<'static, str>, FieldValue)>,
}

impl Event {
    /// Encode as one JSON-lines object, with collector-assigned sequence
    /// number and monotonic offset.
    pub fn to_json_line(&self, seq: u64, t_ns: u64) -> String {
        let kind = match &self.kind {
            EventKind::Span { .. } => "span",
            EventKind::Counter { .. } => "counter",
            EventKind::Observe { .. } => "observe",
        };
        let mut members = vec![
            ("type".to_string(), Json::Str(kind.to_string())),
            ("name".to_string(), Json::Str(self.name.to_string())),
            ("seq".to_string(), Json::Num(seq as f64)),
            ("t_ns".to_string(), Json::Num(t_ns as f64)),
        ];
        match &self.kind {
            EventKind::Span { dur_ns } => {
                members.push(("dur_ns".to_string(), Json::Num(*dur_ns as f64)));
            }
            EventKind::Counter { delta } => {
                members.push(("value".to_string(), Json::Num(*delta as f64)));
            }
            EventKind::Observe { value } => {
                members.push(("value".to_string(), Json::Num(*value as f64)));
            }
        }
        members.push((
            "fields".to_string(),
            Json::Obj(
                self.fields
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_json()))
                    .collect(),
            ),
        ));
        Json::Obj(members).to_string()
    }
}

/// Receives telemetry events. Implementations must be cheap and must not
/// panic; they run at the boundaries of the engine's hot loops.
pub trait Collector: Send + Sync {
    /// Record one event.
    fn record(&self, event: Event);
}

/// Handle instrumented code talks to: either a live collector or nothing.
/// All methods are no-ops when no collector is attached.
#[derive(Clone, Copy)]
pub struct Obs<'c> {
    collector: Option<&'c dyn Collector>,
}

impl<'c> Obs<'c> {
    /// A handle over an optional collector.
    pub fn new(collector: Option<&'c dyn Collector>) -> Self {
        Obs { collector }
    }

    /// A disabled handle.
    pub fn off() -> Self {
        Obs { collector: None }
    }

    /// Whether a collector is attached (lets callers skip building
    /// expensive field values).
    pub fn enabled(&self) -> bool {
        self.collector.is_some()
    }

    /// Start a span; time runs until [`Span::finish`] (or drop).
    pub fn span(&self, name: impl Into<Cow<'static, str>>) -> Span<'c> {
        Span {
            collector: self.collector,
            name: name.into(),
            fields: Vec::new(),
            start: Instant::now(),
            finished: false,
        }
    }

    /// Record a counter increment.
    pub fn counter(
        &self,
        name: impl Into<Cow<'static, str>>,
        delta: u64,
        fields: Vec<(Cow<'static, str>, FieldValue)>,
    ) {
        if let Some(c) = self.collector {
            c.record(Event {
                kind: EventKind::Counter { delta },
                name: name.into(),
                fields,
            });
        }
    }

    /// Record a histogram observation.
    pub fn observe(
        &self,
        name: impl Into<Cow<'static, str>>,
        value: u64,
        fields: Vec<(Cow<'static, str>, FieldValue)>,
    ) {
        if let Some(c) = self.collector {
            c.record(Event {
                kind: EventKind::Observe { value },
                name: name.into(),
                fields,
            });
        }
    }

    /// Record a pre-measured span (for profiles assembled outside the
    /// collector, e.g. the engine's always-on `EngineProfile`).
    pub fn span_at(
        &self,
        name: impl Into<Cow<'static, str>>,
        dur_ns: u64,
        fields: Vec<(Cow<'static, str>, FieldValue)>,
    ) {
        if let Some(c) = self.collector {
            c.record(Event {
                kind: EventKind::Span { dur_ns },
                name: name.into(),
                fields,
            });
        }
    }
}

/// Convenience for building a field list: `fields!["k" => v, ...]`.
#[macro_export]
macro_rules! fields {
    ($($k:expr => $v:expr),* $(,)?) => {
        vec![$((std::borrow::Cow::Borrowed($k), $crate::FieldValue::from($v))),*]
    };
}

/// An in-flight span. Finishing (or dropping) records a
/// [`EventKind::Span`] event with the elapsed monotonic time.
pub struct Span<'c> {
    collector: Option<&'c dyn Collector>,
    name: Cow<'static, str>,
    fields: Vec<(Cow<'static, str>, FieldValue)>,
    start: Instant,
    finished: bool,
}

impl Span<'_> {
    /// Attach a context field (no-op when disabled).
    pub fn field(&mut self, name: impl Into<Cow<'static, str>>, value: impl Into<FieldValue>) {
        if self.collector.is_some() {
            self.fields.push((name.into(), value.into()));
        }
    }

    /// Finish the span, recording its duration; returns elapsed nanos.
    pub fn finish(mut self) -> u64 {
        self.finish_inner()
    }

    fn finish_inner(&mut self) -> u64 {
        let dur_ns = self.start.elapsed().as_nanos() as u64;
        if let Some(c) = self.collector.take() {
            c.record(Event {
                kind: EventKind::Span { dur_ns },
                name: std::mem::replace(&mut self.name, Cow::Borrowed("")),
                fields: std::mem::take(&mut self.fields),
            });
        }
        self.finished = true;
        dur_ns
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.finish_inner();
        }
    }
}

/// A log2-bucketed histogram of `u64` observations.
///
/// Bucket 0 holds the value 0; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i)`. 65 buckets cover the whole `u64` range.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Observation counts per bucket.
    pub buckets: [u64; 65],
    /// Total observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// Bucket index for a value.
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Lower bound of a bucket.
    pub fn bucket_floor(index: usize) -> u64 {
        if index == 0 {
            0
        } else {
            1u64 << (index - 1)
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper-bound estimate of the `q`-quantile (`q ∈ [0, 1]`): the upper
    /// edge of the bucket containing it.
    pub fn quantile_ceil(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return if i >= 64 { u64::MAX } else { 1u64 << i };
            }
        }
        u64::MAX
    }

    /// Render non-empty buckets as `[lo, hi): count` lines.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                let lo = Self::bucket_floor(i);
                let hi = if i >= 64 { u64::MAX } else { 1u64 << i };
                out.push_str(&format!("  [{lo}, {hi}): {n}\n"));
            }
        }
        out
    }
}

#[derive(Default)]
struct RecorderState {
    events: Vec<Event>,
    counters: Vec<(String, u64)>,
    histograms: Vec<(String, Histogram)>,
}

/// In-memory collector: keeps every event and aggregates counters and
/// histograms by name. Intended for tests and for post-run reporting.
#[derive(Default)]
pub struct Recorder {
    state: Mutex<RecorderState>,
}

impl Recorder {
    /// A fresh recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of all recorded events, in order.
    pub fn events(&self) -> Vec<Event> {
        self.state.lock().unwrap().events.clone()
    }

    /// Total of a counter across all increments (0 when never seen).
    pub fn counter_total(&self, name: &str) -> u64 {
        let state = self.state.lock().unwrap();
        state
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Aggregated histogram for an observation (or span-duration) name.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        let state = self.state.lock().unwrap();
        state
            .histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h.clone())
    }

    /// Events with a given name.
    pub fn events_named(&self, name: &str) -> Vec<Event> {
        self.state
            .lock()
            .unwrap()
            .events
            .iter()
            .filter(|e| e.name == name)
            .cloned()
            .collect()
    }
}

impl Collector for Recorder {
    fn record(&self, event: Event) {
        let mut state = self.state.lock().unwrap();
        match &event.kind {
            EventKind::Counter { delta } => {
                if let Some((_, v)) = state
                    .counters
                    .iter_mut()
                    .find(|(n, _)| *n == event.name.as_ref())
                {
                    *v += delta;
                } else {
                    let name = event.name.to_string();
                    let delta = *delta;
                    state.counters.push((name, delta));
                }
            }
            EventKind::Observe { value } | EventKind::Span { dur_ns: value } => {
                let value = *value;
                if let Some((_, h)) = state
                    .histograms
                    .iter_mut()
                    .find(|(n, _)| *n == event.name.as_ref())
                {
                    h.observe(value);
                } else {
                    let mut h = Histogram::default();
                    h.observe(value);
                    state.histograms.push((event.name.to_string(), h));
                }
            }
        }
        state.events.push(event);
    }
}

/// Streaming collector: one JSON object per event, newline-terminated.
pub struct JsonLinesWriter<W: Write + Send> {
    inner: Mutex<(W, u64)>,
    start: Instant,
}

impl JsonLinesWriter<std::io::BufWriter<std::fs::File>> {
    /// Create (truncating) a JSON-lines file sink.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::new(std::io::BufWriter::new(file)))
    }
}

impl<W: Write + Send> JsonLinesWriter<W> {
    /// Wrap any writer.
    pub fn new(writer: W) -> Self {
        JsonLinesWriter {
            inner: Mutex::new((writer, 0)),
            start: Instant::now(),
        }
    }

    /// Flush and return the underlying writer.
    pub fn into_inner(self) -> W {
        let (mut w, _) = self.inner.into_inner().unwrap();
        let _ = w.flush();
        w
    }

    /// Flush buffered output.
    pub fn flush(&self) -> std::io::Result<()> {
        self.inner.lock().unwrap().0.flush()
    }
}

impl<W: Write + Send> Collector for JsonLinesWriter<W> {
    fn record(&self, event: Event) {
        let t_ns = self.start.elapsed().as_nanos() as u64;
        let mut guard = self.inner.lock().unwrap();
        let (writer, seq) = &mut *guard;
        let line = event.to_json_line(*seq, t_ns);
        *seq += 1;
        // Telemetry must never take the instrumented program down.
        let _ = writeln!(writer, "{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::off();
        assert!(!obs.enabled());
        let mut span = obs.span("x");
        span.field("k", 1u64);
        let ns = span.finish();
        // no panic, a plausible duration, nothing recorded anywhere
        assert!(ns < 1_000_000_000);
        obs.counter("c", 1, vec![]);
        obs.observe("o", 2, vec![]);
    }

    #[test]
    fn recorder_aggregates_counters_and_histograms() {
        let rec = Recorder::new();
        let obs = Obs::new(Some(&rec));
        obs.counter("engine.facts", 10, vec![]);
        obs.counter("engine.facts", 5, vec![]);
        obs.observe("delta", 0, vec![]);
        obs.observe("delta", 1, vec![]);
        obs.observe("delta", 1000, vec![]);
        assert_eq!(rec.counter_total("engine.facts"), 15);
        let h = rec.histogram("delta").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.buckets[0], 1); // value 0
        assert_eq!(h.buckets[1], 1); // value 1
        assert_eq!(h.buckets[10], 1); // 1000 ∈ [512, 1024)
        assert_eq!(rec.events().len(), 5);
    }

    #[test]
    fn span_records_duration_and_fields() {
        let rec = Recorder::new();
        let obs = Obs::new(Some(&rec));
        let mut span = obs.span("work");
        span.field("stratum", 3u64);
        std::thread::sleep(std::time::Duration::from_millis(1));
        span.finish();
        let events = rec.events_named("work");
        assert_eq!(events.len(), 1);
        match &events[0].kind {
            EventKind::Span { dur_ns } => assert!(*dur_ns >= 1_000_000),
            other => panic!("expected span, got {other:?}"),
        }
        assert_eq!(events[0].fields[0].1, FieldValue::UInt(3));
    }

    #[test]
    fn dropped_span_still_records() {
        let rec = Recorder::new();
        {
            let obs = Obs::new(Some(&rec));
            let _span = obs.span("implicit");
        }
        assert_eq!(rec.events_named("implicit").len(), 1);
    }

    #[test]
    fn jsonlines_output_parses_back() {
        let writer = JsonLinesWriter::new(Vec::<u8>::new());
        let obs = Obs::new(Some(&writer));
        obs.counter("c", 7, fields!["k" => "v"]);
        let mut span = obs.span("s");
        span.field("n", 2u64);
        span.finish();
        let bytes = writer.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = json::parse(lines[0]).unwrap();
        assert_eq!(first.get("type").unwrap().as_str(), Some("counter"));
        assert_eq!(first.get("value").unwrap().as_f64(), Some(7.0));
        assert_eq!(
            first.get("fields").unwrap().get("k").unwrap().as_str(),
            Some("v")
        );
        let second = json::parse(lines[1]).unwrap();
        assert_eq!(second.get("type").unwrap().as_str(), Some("span"));
        assert_eq!(second.get("seq").unwrap().as_f64(), Some(1.0));
        assert!(second.get("dur_ns").unwrap().as_f64().unwrap() >= 0.0);
    }

    #[test]
    fn histogram_quantiles_and_render() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 3, 4, 100] {
            h.observe(v);
        }
        assert_eq!(h.count, 5);
        assert!((h.mean() - 22.0).abs() < 1e-9);
        assert!(h.quantile_ceil(0.5) <= 8);
        assert!(h.quantile_ceil(1.0) >= 100);
        assert!(h.render().contains("): "));
    }
}
