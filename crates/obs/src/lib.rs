//! # vadasa-obs — zero-dependency telemetry for the Vada-SA workspace
//!
//! The paper's scalability story (Figures 7e/7f) splits elapsed time into
//! reasoning vs. risk evaluation; reproducing it — and chasing the
//! ROADMAP's "fast as the hardware allows" goal — requires seeing where
//! time and memory go *inside* the engine and the anonymization cycle.
//! This crate is the substrate: spans with monotonic timing, counters,
//! log2-bucketed histograms, and a pluggable [`Collector`] behind them.
//! It deliberately takes **no external dependencies** (the build works
//! with workspace-path dependencies only) and is enforced dependency-free
//! by CI.
//!
//! ## Architecture
//!
//! Instrumented code talks to an [`Obs`] handle — a thin wrapper over
//! `Option<&dyn Collector>`. With no collector attached every call is a
//! no-op behind one branch, so instrumentation can stay in hot paths.
//! Two collectors ship in-tree:
//!
//! - [`Recorder`] — in-memory; aggregates counters and histograms and
//!   keeps every event for inspection in tests;
//! - [`JsonLinesWriter`] — streams one JSON object per event to any
//!   `Write` sink (see the schema below);
//!
//! and the *no-collector* state itself is the no-op default.
//!
//! ## JSON-lines schema
//!
//! Every line is one event object:
//!
//! ```json
//! {"type":"span","name":"engine.stratum","seq":3,"t_ns":88122,"dur_ns":81022,"fields":{"stratum":0,"rounds":5}}
//! {"type":"counter","name":"engine.facts_derived","seq":4,"t_ns":90011,"value":812,"fields":{}}
//! {"type":"observe","name":"engine.round_delta","seq":5,"t_ns":90100,"value":64,"fields":{"stratum":0}}
//! ```
//!
//! `seq` is a per-collector sequence number, `t_ns` the monotonic offset
//! from collector creation; `span` events add `dur_ns`, `counter` and
//! `observe` events add `value`. `fields` holds event-specific context.
//!
//! Span events additionally carry `span_id` / `parent_id` (and, for
//! replayed profile spans, an explicit `start_ns`) so a stream can be
//! folded back into a trace tree — see [`trace::TraceBuilder`] and the
//! Chrome-trace / collapsed-stack exporters in [`trace`].

#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod trace;

use json::Json;
use std::borrow::Cow;
use std::cell::RefCell;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Process-wide span-id allocator. Ids are never 0 (0 means "no span" /
/// "no parent") and are only minted while a collector is attached, so a
/// single-threaded instrumented run produces a deterministic id sequence.
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Stack of in-flight span ids on this thread; the top is the parent
    /// of the next span started here.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Allocate a fresh nonzero span id (for replaying pre-measured spans
/// with explicit parent linkage; live [`Span`]s allocate their own).
pub fn next_span_id() -> u64 {
    NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed)
}

fn current_parent_id() -> u64 {
    SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
}

fn push_span(id: u64) {
    SPAN_STACK.with(|s| s.borrow_mut().push(id));
}

fn pop_span(id: u64) {
    SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        if let Some(pos) = stack.iter().rposition(|&x| x == id) {
            stack.remove(pos);
        }
    });
}

/// A field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// Text.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::Int(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::UInt(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::UInt(v as u64)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::Float(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl FieldValue {
    fn to_json(&self) -> Json {
        match self {
            FieldValue::Int(v) => Json::Num(*v as f64),
            FieldValue::UInt(v) => Json::Num(*v as f64),
            FieldValue::Float(v) => Json::Num(*v),
            FieldValue::Str(s) => Json::Str(s.clone()),
            FieldValue::Bool(b) => Json::Bool(*b),
        }
    }
}

/// What kind of measurement an [`Event`] carries.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A completed span with its duration.
    Span {
        /// Wall-clock duration in nanoseconds (monotonic clock).
        dur_ns: u64,
    },
    /// A counter increment.
    Counter {
        /// The increment.
        delta: u64,
    },
    /// A histogram observation.
    Observe {
        /// The observed value.
        value: u64,
    },
}

/// One telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// The measurement.
    pub kind: EventKind,
    /// Dotted event name, e.g. `engine.stratum` or `cycle.iteration`.
    pub name: Cow<'static, str>,
    /// Event-specific context fields.
    pub fields: Vec<(Cow<'static, str>, FieldValue)>,
    /// Span identity (0 for counters/observations and legacy spans).
    pub span_id: u64,
    /// Id of the enclosing span (0 = root / unknown).
    pub parent_id: u64,
    /// Explicit span start as a monotonic offset, when known. Live spans
    /// leave this `None` (start ≈ record time − duration); replayed
    /// profile spans set it so trace trees get exact timelines.
    pub start_ns: Option<u64>,
}

impl Event {
    /// Encode as one JSON-lines object, with collector-assigned sequence
    /// number and monotonic offset.
    pub fn to_json_line(&self, seq: u64, t_ns: u64) -> String {
        let kind = match &self.kind {
            EventKind::Span { .. } => "span",
            EventKind::Counter { .. } => "counter",
            EventKind::Observe { .. } => "observe",
        };
        let mut members = vec![
            ("type".to_string(), Json::Str(kind.to_string())),
            ("name".to_string(), Json::Str(self.name.to_string())),
            ("seq".to_string(), Json::Num(seq as f64)),
            ("t_ns".to_string(), Json::Num(t_ns as f64)),
        ];
        match &self.kind {
            EventKind::Span { dur_ns } => {
                members.push(("dur_ns".to_string(), Json::Num(*dur_ns as f64)));
                members.push(("span_id".to_string(), Json::Num(self.span_id as f64)));
                members.push(("parent_id".to_string(), Json::Num(self.parent_id as f64)));
                if let Some(start) = self.start_ns {
                    members.push(("start_ns".to_string(), Json::Num(start as f64)));
                }
            }
            EventKind::Counter { delta } => {
                members.push(("value".to_string(), Json::Num(*delta as f64)));
            }
            EventKind::Observe { value } => {
                members.push(("value".to_string(), Json::Num(*value as f64)));
            }
        }
        members.push((
            "fields".to_string(),
            Json::Obj(
                self.fields
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.to_json()))
                    .collect(),
            ),
        ));
        Json::Obj(members).to_string()
    }
}

/// Receives telemetry events. Implementations must be cheap and must not
/// panic; they run at the boundaries of the engine's hot loops.
pub trait Collector: Send + Sync {
    /// Record one event.
    fn record(&self, event: Event);
}

/// Handle instrumented code talks to: either a live collector or nothing.
/// All methods are no-ops when no collector is attached.
#[derive(Clone, Copy)]
pub struct Obs<'c> {
    collector: Option<&'c dyn Collector>,
}

impl<'c> Obs<'c> {
    /// A handle over an optional collector.
    pub fn new(collector: Option<&'c dyn Collector>) -> Self {
        Obs { collector }
    }

    /// A disabled handle.
    pub fn off() -> Self {
        Obs { collector: None }
    }

    /// Whether a collector is attached (lets callers skip building
    /// expensive field values).
    pub fn enabled(&self) -> bool {
        self.collector.is_some()
    }

    /// Start a span; time runs until [`Span::finish`] (or drop). The new
    /// span nests under the innermost span still in flight on this
    /// thread, and its own id becomes the parent for spans started while
    /// it is open.
    pub fn span(&self, name: impl Into<Cow<'static, str>>) -> Span<'c> {
        let span_id = if self.collector.is_some() {
            let id = next_span_id();
            push_span(id);
            id
        } else {
            0
        };
        Span {
            collector: self.collector,
            name: name.into(),
            fields: Vec::new(),
            start: Instant::now(),
            finished: false,
            span_id,
            parent_id: if span_id == 0 {
                0
            } else {
                SPAN_STACK.with(|s| {
                    let stack = s.borrow();
                    if stack.len() >= 2 {
                        stack[stack.len() - 2]
                    } else {
                        0
                    }
                })
            },
        }
    }

    /// Record a counter increment.
    pub fn counter(
        &self,
        name: impl Into<Cow<'static, str>>,
        delta: u64,
        fields: Vec<(Cow<'static, str>, FieldValue)>,
    ) {
        if let Some(c) = self.collector {
            c.record(Event {
                kind: EventKind::Counter { delta },
                name: name.into(),
                fields,
                span_id: 0,
                parent_id: current_parent_id(),
                start_ns: None,
            });
        }
    }

    /// Record a histogram observation.
    pub fn observe(
        &self,
        name: impl Into<Cow<'static, str>>,
        value: u64,
        fields: Vec<(Cow<'static, str>, FieldValue)>,
    ) {
        if let Some(c) = self.collector {
            c.record(Event {
                kind: EventKind::Observe { value },
                name: name.into(),
                fields,
                span_id: 0,
                parent_id: current_parent_id(),
                start_ns: None,
            });
        }
    }

    /// Record a pre-measured span (for profiles assembled outside the
    /// collector, e.g. the engine's always-on `EngineProfile`). The span
    /// gets a fresh id and nests under the innermost live span, but has
    /// no explicit start; prefer [`Obs::span_in`] when replaying a whole
    /// profile so the trace tree gets exact parent links and offsets.
    pub fn span_at(
        &self,
        name: impl Into<Cow<'static, str>>,
        dur_ns: u64,
        fields: Vec<(Cow<'static, str>, FieldValue)>,
    ) {
        if let Some(c) = self.collector {
            c.record(Event {
                kind: EventKind::Span { dur_ns },
                name: name.into(),
                fields,
                span_id: next_span_id(),
                parent_id: current_parent_id(),
                start_ns: None,
            });
        }
    }

    /// Record a pre-measured span with explicit tree placement: its id,
    /// its parent's id (0 = root) and its start offset. This is the
    /// replay primitive profile emitters use to rebuild a full timeline
    /// after the fact (allocate ids with [`next_span_id`]).
    pub fn span_in(
        &self,
        name: impl Into<Cow<'static, str>>,
        span_id: u64,
        parent_id: u64,
        start_ns: u64,
        dur_ns: u64,
        fields: Vec<(Cow<'static, str>, FieldValue)>,
    ) {
        if let Some(c) = self.collector {
            c.record(Event {
                kind: EventKind::Span { dur_ns },
                name: name.into(),
                fields,
                span_id,
                parent_id,
                start_ns: Some(start_ns),
            });
        }
    }
}

/// Convenience for building a field list: `fields!["k" => v, ...]`.
#[macro_export]
macro_rules! fields {
    ($($k:expr => $v:expr),* $(,)?) => {
        vec![$((std::borrow::Cow::Borrowed($k), $crate::FieldValue::from($v))),*]
    };
}

/// An in-flight span. Finishing (or dropping) records a
/// [`EventKind::Span`] event with the elapsed monotonic time.
pub struct Span<'c> {
    collector: Option<&'c dyn Collector>,
    name: Cow<'static, str>,
    fields: Vec<(Cow<'static, str>, FieldValue)>,
    start: Instant,
    finished: bool,
    span_id: u64,
    parent_id: u64,
}

impl Span<'_> {
    /// Attach a context field (no-op when disabled).
    pub fn field(&mut self, name: impl Into<Cow<'static, str>>, value: impl Into<FieldValue>) {
        if self.collector.is_some() {
            self.fields.push((name.into(), value.into()));
        }
    }

    /// This span's id (0 when no collector is attached).
    pub fn id(&self) -> u64 {
        self.span_id
    }

    /// Finish the span, recording its duration; returns elapsed nanos.
    pub fn finish(mut self) -> u64 {
        self.finish_inner()
    }

    fn finish_inner(&mut self) -> u64 {
        let dur_ns = self.start.elapsed().as_nanos() as u64;
        if self.span_id != 0 {
            pop_span(self.span_id);
        }
        if let Some(c) = self.collector.take() {
            c.record(Event {
                kind: EventKind::Span { dur_ns },
                name: std::mem::replace(&mut self.name, Cow::Borrowed("")),
                fields: std::mem::take(&mut self.fields),
                span_id: self.span_id,
                parent_id: self.parent_id,
                start_ns: None,
            });
        }
        self.finished = true;
        dur_ns
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.finish_inner();
        }
    }
}

/// A log2-bucketed histogram of `u64` observations.
///
/// Bucket 0 holds the value 0; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i)`. 65 buckets cover the whole `u64` range.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Observation counts per bucket.
    pub buckets: [u64; 65],
    /// Total observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// Bucket index for a value.
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Lower bound of a bucket.
    pub fn bucket_floor(index: usize) -> u64 {
        if index == 0 {
            0
        } else {
            1u64 << (index - 1)
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper-bound estimate of the `q`-quantile (`q ∈ [0, 1]`): the upper
    /// edge of the bucket containing it. Bucket 0 holds only the value 0,
    /// so an all-zero histogram reports 0 (not the bucket-1 edge).
    pub fn quantile_ceil(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return match i {
                    0 => 0,
                    64.. => u64::MAX,
                    _ => 1u64 << i,
                };
            }
        }
        u64::MAX
    }

    /// Fold another histogram into this one (bucket-wise; used to
    /// aggregate per-thread histograms from parallel rounds).
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Render non-empty buckets as `[lo, hi): count` lines.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                let lo = Self::bucket_floor(i);
                let hi = if i >= 64 { u64::MAX } else { 1u64 << i };
                out.push_str(&format!("  [{lo}, {hi}): {n}\n"));
            }
        }
        out
    }
}

#[derive(Default)]
struct RecorderState {
    events: Vec<Event>,
    /// `(seq, t_ns)` per event, parallel to `events`.
    meta: Vec<(u64, u64)>,
    counters: Vec<(String, u64)>,
    histograms: Vec<(String, Histogram)>,
}

/// In-memory collector: keeps every event and aggregates counters and
/// histograms by name. Intended for tests and for post-run reporting.
pub struct Recorder {
    state: Mutex<RecorderState>,
    start: Instant,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder {
            state: Mutex::new(RecorderState::default()),
            start: Instant::now(),
        }
    }
}

impl Recorder {
    /// A fresh recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of all recorded events, in order.
    pub fn events(&self) -> Vec<Event> {
        lock_unpoisoned(&self.state).events.clone()
    }

    /// Snapshot of all recorded events with their `(seq, t_ns)` envelope,
    /// in record order — the input [`trace::TraceBuilder`] folds.
    pub fn timeline(&self) -> Vec<(u64, u64, Event)> {
        let state = lock_unpoisoned(&self.state);
        state
            .meta
            .iter()
            .zip(state.events.iter())
            .map(|(&(seq, t_ns), e)| (seq, t_ns, e.clone()))
            .collect()
    }

    /// Total of a counter across all increments (0 when never seen).
    pub fn counter_total(&self, name: &str) -> u64 {
        let state = lock_unpoisoned(&self.state);
        state
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Aggregated histogram for an observation (or span-duration) name.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        let state = lock_unpoisoned(&self.state);
        state
            .histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h.clone())
    }

    /// Events with a given name.
    pub fn events_named(&self, name: &str) -> Vec<Event> {
        lock_unpoisoned(&self.state)
            .events
            .iter()
            .filter(|e| e.name == name)
            .cloned()
            .collect()
    }
}

/// Lock a mutex, recovering the data from a poisoned lock — telemetry
/// must never take the instrumented program down.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Collector for Recorder {
    fn record(&self, event: Event) {
        let t_ns = self.start.elapsed().as_nanos() as u64;
        let mut state = lock_unpoisoned(&self.state);
        let seq = state.meta.len() as u64;
        state.meta.push((seq, t_ns));
        match &event.kind {
            EventKind::Counter { delta } => {
                if let Some((_, v)) = state
                    .counters
                    .iter_mut()
                    .find(|(n, _)| *n == event.name.as_ref())
                {
                    *v += delta;
                } else {
                    let name = event.name.to_string();
                    let delta = *delta;
                    state.counters.push((name, delta));
                }
            }
            EventKind::Observe { value } | EventKind::Span { dur_ns: value } => {
                let value = *value;
                if let Some((_, h)) = state
                    .histograms
                    .iter_mut()
                    .find(|(n, _)| *n == event.name.as_ref())
                {
                    h.observe(value);
                } else {
                    let mut h = Histogram::default();
                    h.observe(value);
                    state.histograms.push((event.name.to_string(), h));
                }
            }
        }
        state.events.push(event);
    }
}

/// A buffered JSON line, keyed for the deterministic flush order.
struct BufferedLine {
    seq: u64,
    span_id: u64,
    line: String,
}

struct JsonLinesState<W> {
    writer: W,
    seq: u64,
    buf: Vec<BufferedLine>,
}

/// Streaming collector: one JSON object per event, newline-terminated.
///
/// Lines are buffered and written on [`flush`](Self::flush) /
/// [`into_inner`](Self::into_inner) / drop, after a stable sort by
/// `(seq, span_id)` — so the byte output is deterministic even when
/// multiple threads race to record (sequence numbers are assigned under
/// the same lock that buffers the line, so `seq` stays gapless and in
/// output order).
pub struct JsonLinesWriter<W: Write + Send> {
    inner: Mutex<Option<JsonLinesState<W>>>,
    start: Instant,
    redact_timings: bool,
}

impl JsonLinesWriter<std::io::BufWriter<std::fs::File>> {
    /// Create (truncating) a JSON-lines file sink.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::new(std::io::BufWriter::new(file)))
    }
}

impl<W: Write + Send> JsonLinesWriter<W> {
    /// Wrap any writer.
    pub fn new(writer: W) -> Self {
        JsonLinesWriter {
            inner: Mutex::new(Some(JsonLinesState {
                writer,
                seq: 0,
                buf: Vec::new(),
            })),
            start: Instant::now(),
            redact_timings: false,
        }
    }

    /// Redact wall-clock timings (`t_ns`, `dur_ns`, `start_ns`, and any
    /// field named `*_ns`) to 0 so the byte output depends only on the
    /// logical event stream — for byte-for-byte determinism diffs.
    pub fn redact_timings(mut self) -> Self {
        self.redact_timings = true;
        self
    }

    fn drain(state: &mut JsonLinesState<W>) {
        state.buf.sort_by_key(|l| (l.seq, l.span_id));
        for l in state.buf.drain(..) {
            // Telemetry must never take the instrumented program down.
            let _ = writeln!(state.writer, "{}", l.line);
        }
    }

    /// Flush and return the underlying writer.
    pub fn into_inner(self) -> W {
        let mut guard = lock_unpoisoned(&self.inner);
        match guard.take() {
            Some(mut state) => {
                Self::drain(&mut state);
                let _ = state.writer.flush();
                drop(guard);
                state.writer
            }
            // Unreachable: the state is only taken here and in drop.
            None => unreachable!("JsonLinesWriter state already taken"),
        }
    }

    /// Write out buffered lines and flush the sink.
    pub fn flush(&self) -> std::io::Result<()> {
        let mut guard = lock_unpoisoned(&self.inner);
        match guard.as_mut() {
            Some(state) => {
                Self::drain(state);
                state.writer.flush()
            }
            None => Ok(()),
        }
    }
}

impl<W: Write + Send> Drop for JsonLinesWriter<W> {
    fn drop(&mut self) {
        let mut guard = lock_unpoisoned(&self.inner);
        if let Some(state) = guard.as_mut() {
            Self::drain(state);
            let _ = state.writer.flush();
        }
    }
}

impl<W: Write + Send> Collector for JsonLinesWriter<W> {
    fn record(&self, event: Event) {
        let t_ns = if self.redact_timings {
            0
        } else {
            self.start.elapsed().as_nanos() as u64
        };
        let mut guard = lock_unpoisoned(&self.inner);
        let Some(state) = guard.as_mut() else {
            return;
        };
        let seq = state.seq;
        state.seq += 1;
        let line = if self.redact_timings {
            redact_event_timings(&event).to_json_line(seq, t_ns)
        } else {
            event.to_json_line(seq, t_ns)
        };
        state.buf.push(BufferedLine {
            seq,
            span_id: event.span_id,
            line,
        });
    }
}

/// A copy of `event` with every wall-clock quantity zeroed: span
/// duration, explicit start, and numeric fields whose name ends in
/// `_ns`. Logical fields (iteration numbers, deltas, counts) survive.
fn redact_event_timings(event: &Event) -> Event {
    let mut e = event.clone();
    if let EventKind::Span { dur_ns } = &mut e.kind {
        *dur_ns = 0;
    }
    if e.start_ns.is_some() {
        e.start_ns = Some(0);
    }
    for (name, value) in &mut e.fields {
        if name.ends_with("_ns") {
            match value {
                FieldValue::Int(v) => *v = 0,
                FieldValue::UInt(v) => *v = 0,
                FieldValue::Float(v) => *v = 0.0,
                _ => {}
            }
        }
    }
    e
}

/// Fan an event stream out to several collectors (e.g. a [`Recorder`]
/// for trace building plus a [`JsonLinesWriter`] for streaming).
pub struct Fanout {
    sinks: Vec<std::sync::Arc<dyn Collector>>,
}

impl Fanout {
    /// A fanout over the given collectors.
    pub fn new(sinks: Vec<std::sync::Arc<dyn Collector>>) -> Self {
        Fanout { sinks }
    }
}

impl Collector for Fanout {
    fn record(&self, event: Event) {
        if let Some((last, rest)) = self.sinks.split_last() {
            for sink in rest {
                sink.record(event.clone());
            }
            last.record(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::off();
        assert!(!obs.enabled());
        let mut span = obs.span("x");
        span.field("k", 1u64);
        let ns = span.finish();
        // no panic, a plausible duration, nothing recorded anywhere
        assert!(ns < 1_000_000_000);
        obs.counter("c", 1, vec![]);
        obs.observe("o", 2, vec![]);
    }

    #[test]
    fn recorder_aggregates_counters_and_histograms() {
        let rec = Recorder::new();
        let obs = Obs::new(Some(&rec));
        obs.counter("engine.facts", 10, vec![]);
        obs.counter("engine.facts", 5, vec![]);
        obs.observe("delta", 0, vec![]);
        obs.observe("delta", 1, vec![]);
        obs.observe("delta", 1000, vec![]);
        assert_eq!(rec.counter_total("engine.facts"), 15);
        let h = rec.histogram("delta").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.buckets[0], 1); // value 0
        assert_eq!(h.buckets[1], 1); // value 1
        assert_eq!(h.buckets[10], 1); // 1000 ∈ [512, 1024)
        assert_eq!(rec.events().len(), 5);
    }

    #[test]
    fn span_records_duration_and_fields() {
        let rec = Recorder::new();
        let obs = Obs::new(Some(&rec));
        let mut span = obs.span("work");
        span.field("stratum", 3u64);
        std::thread::sleep(std::time::Duration::from_millis(1));
        span.finish();
        let events = rec.events_named("work");
        assert_eq!(events.len(), 1);
        match &events[0].kind {
            EventKind::Span { dur_ns } => assert!(*dur_ns >= 1_000_000),
            other => panic!("expected span, got {other:?}"),
        }
        assert_eq!(events[0].fields[0].1, FieldValue::UInt(3));
    }

    #[test]
    fn dropped_span_still_records() {
        let rec = Recorder::new();
        {
            let obs = Obs::new(Some(&rec));
            let _span = obs.span("implicit");
        }
        assert_eq!(rec.events_named("implicit").len(), 1);
    }

    #[test]
    fn jsonlines_output_parses_back() {
        let writer = JsonLinesWriter::new(Vec::<u8>::new());
        let obs = Obs::new(Some(&writer));
        obs.counter("c", 7, fields!["k" => "v"]);
        let mut span = obs.span("s");
        span.field("n", 2u64);
        span.finish();
        let bytes = writer.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = json::parse(lines[0]).unwrap();
        assert_eq!(first.get("type").unwrap().as_str(), Some("counter"));
        assert_eq!(first.get("value").unwrap().as_f64(), Some(7.0));
        assert_eq!(
            first.get("fields").unwrap().get("k").unwrap().as_str(),
            Some("v")
        );
        let second = json::parse(lines[1]).unwrap();
        assert_eq!(second.get("type").unwrap().as_str(), Some("span"));
        assert_eq!(second.get("seq").unwrap().as_f64(), Some(1.0));
        assert!(second.get("dur_ns").unwrap().as_f64().unwrap() >= 0.0);
    }

    #[test]
    fn histogram_quantiles_and_render() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 3, 4, 100] {
            h.observe(v);
        }
        assert_eq!(h.count, 5);
        assert!((h.mean() - 22.0).abs() < 1e-9);
        assert!(h.quantile_ceil(0.5) <= 8);
        assert!(h.quantile_ceil(1.0) >= 100);
        assert!(h.render().contains("): "));
    }

    /// Hand-checked edge cases: empty and all-zero histograms. Bucket 0
    /// contains only the value 0, so its quantile ceiling is 0 — the old
    /// code reported the bucket-1 edge (1) for a stream of zeros.
    #[test]
    fn histogram_empty_and_zero_edge_cases() {
        let empty = Histogram::default();
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.quantile_ceil(0.0), 0);
        assert_eq!(empty.quantile_ceil(0.5), 0);
        assert_eq!(empty.quantile_ceil(1.0), 0);

        let mut zeros = Histogram::default();
        zeros.observe(0);
        zeros.observe(0);
        zeros.observe(0);
        assert_eq!(zeros.mean(), 0.0);
        assert_eq!(zeros.quantile_ceil(0.5), 0, "all-zero stream: p50 is 0");
        assert_eq!(zeros.quantile_ceil(1.0), 0, "all-zero stream: max is 0");

        // Mixed: {0, 0, 3} — p50 is still in bucket 0, p100 in [2, 4).
        let mut mixed = Histogram::default();
        mixed.observe(0);
        mixed.observe(0);
        mixed.observe(3);
        assert_eq!(mixed.quantile_ceil(0.5), 0);
        assert_eq!(mixed.quantile_ceil(1.0), 4);
        assert!((mixed.mean() - 1.0).abs() < 1e-9);
    }

    /// Exact values for `merge`: {1, 2} ∪ {2, 100} observation by
    /// observation.
    #[test]
    fn histogram_merge_is_bucketwise_sum() {
        let mut a = Histogram::default();
        a.observe(1);
        a.observe(2);
        let mut b = Histogram::default();
        b.observe(2);
        b.observe(100);
        a.merge(&b);
        assert_eq!(a.count, 4);
        assert_eq!(a.sum, 105);
        assert_eq!(a.buckets[1], 1); // value 1 ∈ [1, 2)
        assert_eq!(a.buckets[2], 2); // both 2s ∈ [2, 4)
        assert_eq!(a.buckets[7], 1); // 100 ∈ [64, 128)
        assert!((a.mean() - 26.25).abs() < 1e-9);
        assert_eq!(a.quantile_ceil(0.5), 4);
        assert_eq!(a.quantile_ceil(1.0), 128);

        // Merging an empty histogram is a no-op.
        let before = (a.count, a.sum);
        a.merge(&Histogram::default());
        assert_eq!((a.count, a.sum), before);
    }

    /// Live spans link to the innermost open span on the same thread.
    #[test]
    fn nested_spans_carry_parent_ids() {
        let rec = Recorder::new();
        let obs = Obs::new(Some(&rec));
        let outer = obs.span("outer");
        let outer_id = outer.id();
        assert_ne!(outer_id, 0);
        {
            let inner = obs.span("inner");
            assert_ne!(inner.id(), outer_id);
            inner.finish();
        }
        outer.finish();
        let sibling = obs.span("sibling");
        sibling.finish();

        let inner_ev = &rec.events_named("inner")[0];
        let outer_ev = &rec.events_named("outer")[0];
        let sibling_ev = &rec.events_named("sibling")[0];
        assert_eq!(inner_ev.parent_id, outer_ev.span_id);
        assert_eq!(outer_ev.parent_id, 0);
        assert_eq!(sibling_ev.parent_id, 0, "stack must pop on finish");
    }

    /// `span_in` replays explicit tree placement; the JSON line carries
    /// the span/parent ids and the explicit start offset.
    #[test]
    fn span_in_round_trips_tree_placement() {
        let writer = JsonLinesWriter::new(Vec::<u8>::new());
        let obs = Obs::new(Some(&writer));
        let root = next_span_id();
        let child = next_span_id();
        obs.span_in("child", child, root, 25, 50, vec![]);
        obs.span_in("root", root, 0, 0, 100, vec![]);
        let text = String::from_utf8(writer.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = json::parse(lines[0]).unwrap();
        assert_eq!(first.get("span_id").unwrap().as_f64(), Some(child as f64));
        assert_eq!(first.get("parent_id").unwrap().as_f64(), Some(root as f64));
        assert_eq!(first.get("start_ns").unwrap().as_f64(), Some(25.0));
        assert_eq!(first.get("dur_ns").unwrap().as_f64(), Some(50.0));
    }

    /// Redaction zeroes every wall-clock quantity but preserves logical
    /// fields, so two identical logical runs produce identical bytes.
    #[test]
    fn redacted_output_is_timing_free() {
        let run = || {
            let writer = JsonLinesWriter::new(Vec::<u8>::new()).redact_timings();
            let obs = Obs::new(Some(&writer));
            obs.counter(
                "c",
                7,
                fields!["iteration" => 3u64, "risk_eval_ns" => 1234u64],
            );
            obs.span_in("s", 1, 0, 500, 900, fields!["delta" => 4u64]);
            String::from_utf8(writer.into_inner()).unwrap()
        };
        let text = run();
        for line in text.lines() {
            let v = json::parse(line).unwrap();
            assert_eq!(v.get("t_ns").unwrap().as_f64(), Some(0.0));
            if let Some(d) = v.get("dur_ns") {
                assert_eq!(d.as_f64(), Some(0.0));
            }
            if let Some(s) = v.get("start_ns") {
                assert_eq!(s.as_f64(), Some(0.0));
            }
        }
        let first = json::parse(text.lines().next().unwrap()).unwrap();
        let fields = first.get("fields").unwrap();
        assert_eq!(fields.get("iteration").unwrap().as_f64(), Some(3.0));
        assert_eq!(fields.get("risk_eval_ns").unwrap().as_f64(), Some(0.0));
        assert_eq!(text, run(), "same logical stream, same bytes");
    }

    /// Fanout delivers every event to every sink.
    #[test]
    fn fanout_feeds_all_sinks() {
        let a = std::sync::Arc::new(Recorder::new());
        let b = std::sync::Arc::new(Recorder::new());
        let fan = Fanout::new(vec![a.clone(), b.clone()]);
        let obs = Obs::new(Some(&fan));
        obs.counter("c", 2, vec![]);
        obs.counter("c", 3, vec![]);
        assert_eq!(a.counter_total("c"), 5);
        assert_eq!(b.counter_total("c"), 5);
    }

    /// The recorder's timeline exposes gapless sequence numbers.
    #[test]
    fn recorder_timeline_is_gapless() {
        let rec = Recorder::new();
        let obs = Obs::new(Some(&rec));
        obs.counter("a", 1, vec![]);
        obs.observe("b", 2, vec![]);
        obs.span_at("c", 3, vec![]);
        let timeline = rec.timeline();
        assert_eq!(timeline.len(), 3);
        for (i, (seq, _, _)) in timeline.iter().enumerate() {
            assert_eq!(*seq, i as u64);
        }
    }
}
