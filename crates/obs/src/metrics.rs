//! Live metrics: gauges, monotone counters and windowed rates.
//!
//! Profiles (`EngineProfile`, `CycleProfile`) are post-hoc: they only
//! exist once the run finishes. A [`MetricsRegistry`] is the live
//! counterpart — the engine and the anonymization cycle publish their
//! current position (stratum, iteration, rows-at-risk, delta sizes)
//! into it *while running*, and any thread can snapshot the whole
//! registry as a single JSON object at any time. This is the substrate
//! a job server polls for `/status`.
//!
//! Three instrument kinds:
//!
//! - **gauge** — a last-write-wins `f64` ("current stratum is 3");
//! - **counter** — a monotone `u64` total ("suppressions so far");
//! - **rate** — a windowed series of cumulative values; the registry
//!   reports the average increase per second across the retained window
//!   ("iterations/s").
//!
//! All methods take `&self` and are thread-safe; a poisoned lock is
//! recovered, never propagated — telemetry must not take the run down.

use crate::json::Json;
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// Default rate window: observations older than this are dropped.
const DEFAULT_WINDOW_NS: u64 = 10_000_000_000; // 10 s

struct RateWindow {
    /// `(t_ns, cumulative_value)` samples, oldest first.
    samples: VecDeque<(u64, f64)>,
}

impl RateWindow {
    fn push(&mut self, t_ns: u64, value: f64, window_ns: u64) {
        self.samples.push_back((t_ns, value));
        let horizon = t_ns.saturating_sub(window_ns);
        while let Some(&(t, _)) = self.samples.front() {
            if t < horizon && self.samples.len() > 2 {
                self.samples.pop_front();
            } else {
                break;
            }
        }
    }

    /// Average increase per second across the retained window.
    fn per_sec(&self) -> Option<f64> {
        let (&(t0, v0), &(t1, v1)) = (self.samples.front()?, self.samples.back()?);
        if t1 <= t0 {
            return None;
        }
        Some((v1 - v0) / ((t1 - t0) as f64 / 1e9))
    }
}

#[derive(Default)]
struct MetricsState {
    gauges: Vec<(String, f64)>,
    counters: Vec<(String, u64)>,
    rates: Vec<(String, RateWindow)>,
}

/// A registry of live gauges, monotone counters and windowed rates,
/// snapshot-able to one JSON object.
pub struct MetricsRegistry {
    state: Mutex<MetricsState>,
    start: Instant,
    window_ns: u64,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry {
            state: Mutex::new(MetricsState::default()),
            start: Instant::now(),
            window_ns: DEFAULT_WINDOW_NS,
        }
    }
}

impl MetricsRegistry {
    /// A fresh registry with the default 10 s rate window.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry whose rates average over the given window.
    pub fn with_rate_window_ns(window_ns: u64) -> Self {
        MetricsRegistry {
            window_ns: window_ns.max(1),
            ..Self::default()
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MetricsState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Set a gauge (last write wins).
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut state = self.lock();
        match state.gauges.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v = value,
            None => state.gauges.push((name.to_string(), value)),
        }
    }

    /// Increment a monotone counter.
    pub fn inc_counter(&self, name: &str, delta: u64) {
        let mut state = self.lock();
        match state.counters.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v = v.saturating_add(delta),
            None => state.counters.push((name.to_string(), delta)),
        }
    }

    /// Record a cumulative value into a rate window at "now".
    pub fn observe_rate(&self, name: &str, cumulative: f64) {
        self.observe_rate_at(name, self.now_ns(), cumulative);
    }

    /// Record a cumulative value at an explicit monotonic offset (for
    /// deterministic tests).
    pub fn observe_rate_at(&self, name: &str, t_ns: u64, cumulative: f64) {
        let window_ns = self.window_ns;
        let mut state = self.lock();
        match state.rates.iter_mut().find(|(n, _)| n == name) {
            Some((_, w)) => w.push(t_ns, cumulative, window_ns),
            None => {
                let mut w = RateWindow {
                    samples: VecDeque::new(),
                };
                w.push(t_ns, cumulative, window_ns);
                state.rates.push((name.to_string(), w));
            }
        }
    }

    /// Current gauge value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.lock()
            .gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Current counter total (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock()
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Average increase per second across the rate's retained window
    /// (`None` until two samples with distinct timestamps exist).
    pub fn rate_per_sec(&self, name: &str) -> Option<f64> {
        self.lock()
            .rates
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, w)| w.per_sec())
    }

    /// Snapshot the whole registry as one JSON object:
    /// `{"t_ns":…,"gauges":{…},"counters":{…},"rates_per_sec":{…}}`,
    /// members sorted by name.
    pub fn snapshot_json(&self) -> String {
        let t_ns = self.now_ns();
        let state = self.lock();
        let mut gauges: Vec<(String, Json)> = state
            .gauges
            .iter()
            .map(|(n, v)| (n.clone(), Json::Num(*v)))
            .collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let mut counters: Vec<(String, Json)> = state
            .counters
            .iter()
            .map(|(n, v)| (n.clone(), Json::Num(*v as f64)))
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let mut rates: Vec<(String, Json)> = state
            .rates
            .iter()
            .filter_map(|(n, w)| w.per_sec().map(|r| (n.clone(), Json::Num(r))))
            .collect();
        rates.sort_by(|a, b| a.0.cmp(&b.0));
        Json::Obj(vec![
            ("t_ns".to_string(), Json::Num(t_ns as f64)),
            ("gauges".to_string(), Json::Obj(gauges)),
            ("counters".to_string(), Json::Obj(counters)),
            ("rates_per_sec".to_string(), Json::Obj(rates)),
        ])
        .to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn gauges_are_last_write_wins() {
        let m = MetricsRegistry::new();
        assert_eq!(m.gauge("cycle.iteration"), None);
        m.set_gauge("cycle.iteration", 1.0);
        m.set_gauge("cycle.iteration", 5.0);
        assert_eq!(m.gauge("cycle.iteration"), Some(5.0));
    }

    #[test]
    fn counters_are_monotone() {
        let m = MetricsRegistry::new();
        m.inc_counter("sup", 3);
        m.inc_counter("sup", 4);
        assert_eq!(m.counter("sup"), 7);
        assert_eq!(m.counter("never"), 0);
    }

    #[test]
    fn rates_average_over_the_window() {
        let m = MetricsRegistry::with_rate_window_ns(1_000_000_000);
        assert_eq!(m.rate_per_sec("it"), None);
        m.observe_rate_at("it", 0, 0.0);
        assert_eq!(m.rate_per_sec("it"), None, "one sample is not a rate");
        m.observe_rate_at("it", 500_000_000, 10.0);
        assert_eq!(m.rate_per_sec("it"), Some(20.0));
        // Old samples age out: only the last window's increase counts —
        // (15 − 10) over the final 0.5 s, not the lifetime average.
        m.observe_rate_at("it", 2_000_000_000, 10.0);
        m.observe_rate_at("it", 2_500_000_000, 15.0);
        let r = m.rate_per_sec("it").unwrap();
        assert!((r - 10.0).abs() < 1e-9, "expected 5/0.5s = 10, got {r}");
    }

    #[test]
    fn snapshot_is_one_sorted_json_object() {
        let m = MetricsRegistry::new();
        m.set_gauge("b", 2.0);
        m.set_gauge("a", 1.0);
        m.inc_counter("c", 9);
        m.observe_rate_at("r", 0, 0.0);
        m.observe_rate_at("r", 1_000_000_000, 4.0);
        let v = json::parse(&m.snapshot_json()).unwrap();
        assert!(v.get("t_ns").and_then(|t| t.as_f64()).is_some());
        let gauges = v.get("gauges").unwrap();
        assert_eq!(gauges.get("a").unwrap().as_f64(), Some(1.0));
        assert_eq!(gauges.get("b").unwrap().as_f64(), Some(2.0));
        assert_eq!(
            v.get("counters").unwrap().get("c").unwrap().as_f64(),
            Some(9.0)
        );
        assert_eq!(
            v.get("rates_per_sec").unwrap().get("r").unwrap().as_f64(),
            Some(4.0)
        );
    }
}
