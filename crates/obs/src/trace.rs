//! Trace trees: fold a span stream back into a timeline.
//!
//! Span events carry `span_id` / `parent_id` (and an explicit `start_ns`
//! when replayed from a profile), so a flat [`Recorder`] or JSON-lines
//! stream can be rebuilt into a tree of intervals with self-vs-child
//! time attribution. Two zero-dependency exporters ship with the tree:
//!
//! - [`TraceTree::chrome_trace_json`] — Chrome `trace_event` JSON,
//!   loadable in `chrome://tracing` and Perfetto (`ph: "X"` complete
//!   events with microsecond `ts`/`dur`);
//! - [`TraceTree::collapsed_stacks`] — collapsed-stack text
//!   (`root;child;leaf <self-ns>` lines), the input format of
//!   `flamegraph.pl` and `inferno`.
//!
//! Orphan spans (parent id 0, or a parent that never appears in the
//! stream) become roots. Start offsets come from `start_ns` when the
//! emitter provided one, otherwise they are derived as
//! `record-time − duration`, which is exact for live [`Span`]s finished
//! at record time.
//!
//! [`Span`]: crate::Span
//! [`Recorder`]: crate::Recorder

use crate::json::{self, Json};
use crate::{Event, EventKind, FieldValue, Recorder};
use std::collections::BTreeMap;

/// One span interval in a [`TraceTree`].
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Event name.
    pub name: String,
    /// Span id as recorded (nonzero).
    pub span_id: u64,
    /// Recorded parent id (0 = root).
    pub parent_id: u64,
    /// Start offset in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Context fields, stringified keys.
    pub fields: Vec<(String, FieldValue)>,
    /// Indices of child nodes, in push order.
    pub children: Vec<usize>,
    /// Index of the parent node, when linked.
    pub parent: Option<usize>,
}

impl SpanNode {
    /// End offset in nanoseconds (saturating).
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }
}

/// Incrementally folds span events into a [`TraceTree`].
#[derive(Debug, Default)]
pub struct TraceBuilder {
    spans: Vec<SpanNode>,
}

impl TraceBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        TraceBuilder::default()
    }

    /// Fold one event in. Non-span events are ignored; span events with
    /// id 0 (recorded with no collector-side identity) are skipped too,
    /// since they cannot be linked.
    pub fn push(&mut self, t_ns: u64, event: &Event) {
        let EventKind::Span { dur_ns } = event.kind else {
            return;
        };
        if event.span_id == 0 {
            return;
        }
        let start_ns = event
            .start_ns
            .unwrap_or_else(|| t_ns.saturating_sub(dur_ns));
        self.spans.push(SpanNode {
            name: event.name.to_string(),
            span_id: event.span_id,
            parent_id: event.parent_id,
            start_ns,
            dur_ns,
            fields: event
                .fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            children: Vec::new(),
            parent: None,
        });
    }

    /// Build the tree from everything a [`Recorder`] saw.
    pub fn from_recorder(recorder: &Recorder) -> TraceTree {
        let mut b = TraceBuilder::new();
        for (_seq, t_ns, event) in recorder.timeline() {
            b.push(t_ns, &event);
        }
        b.build()
    }

    /// Build the tree from JSON-lines telemetry text (the
    /// [`JsonLinesWriter`](crate::JsonLinesWriter) schema). Lines that
    /// fail to parse or are not span events are skipped.
    pub fn from_json_lines(text: &str) -> TraceTree {
        let mut b = TraceBuilder::new();
        for line in text.lines() {
            let Ok(value) = json::parse(line) else {
                continue;
            };
            if value.get("type").and_then(|v| v.as_str()) != Some("span") {
                continue;
            }
            let Some(name) = value.get("name").and_then(|v| v.as_str()) else {
                continue;
            };
            let num = |key: &str| value.get(key).and_then(|v| v.as_f64());
            let as_u64 = |v: f64| {
                if v.is_finite() && v >= 0.0 {
                    v as u64
                } else {
                    0
                }
            };
            let event = Event {
                kind: EventKind::Span {
                    dur_ns: as_u64(num("dur_ns").unwrap_or(0.0)),
                },
                name: std::borrow::Cow::Owned(name.to_string()),
                fields: match value.get("fields") {
                    Some(Json::Obj(members)) => members
                        .iter()
                        .map(|(k, v)| (std::borrow::Cow::Owned(k.clone()), json_to_field_value(v)))
                        .collect(),
                    _ => Vec::new(),
                },
                span_id: as_u64(num("span_id").unwrap_or(0.0)),
                parent_id: as_u64(num("parent_id").unwrap_or(0.0)),
                start_ns: num("start_ns").map(as_u64),
            };
            b.push(as_u64(num("t_ns").unwrap_or(0.0)), &event);
        }
        b.build()
    }

    /// Link parents to children and return the finished tree. When the
    /// same span id appears more than once, the first occurrence wins as
    /// the link target.
    pub fn build(self) -> TraceTree {
        let mut nodes = self.spans;
        let mut by_id: BTreeMap<u64, usize> = BTreeMap::new();
        for (i, n) in nodes.iter().enumerate() {
            by_id.entry(n.span_id).or_insert(i);
        }
        let mut roots = Vec::new();
        for i in 0..nodes.len() {
            let parent_idx = match by_id.get(&nodes[i].parent_id) {
                Some(&p) if nodes[i].parent_id != 0 && p != i => Some(p),
                _ => None,
            };
            match parent_idx {
                Some(p) => {
                    nodes[i].parent = Some(p);
                    nodes[p].children.push(i);
                }
                None => roots.push(i),
            }
        }
        TraceTree { nodes, roots }
    }
}

fn json_to_field_value(v: &Json) -> FieldValue {
    match v {
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9e15 {
                if *n >= 0.0 {
                    FieldValue::UInt(*n as u64)
                } else {
                    FieldValue::Int(*n as i64)
                }
            } else {
                FieldValue::Float(*n)
            }
        }
        Json::Str(s) => FieldValue::Str(s.clone()),
        Json::Bool(b) => FieldValue::Bool(*b),
        other => FieldValue::Str(other.to_string()),
    }
}

/// A finished trace: span nodes plus root indices.
#[derive(Debug, Default)]
pub struct TraceTree {
    /// All span nodes, in stream order.
    pub nodes: Vec<SpanNode>,
    /// Indices of root spans, in stream order.
    pub roots: Vec<usize>,
}

impl TraceTree {
    /// Self time of a node: its duration minus the time covered by its
    /// children (saturating — overlapping children cannot drive it
    /// negative).
    pub fn self_ns(&self, index: usize) -> u64 {
        let node = &self.nodes[index];
        let child_ns: u64 = node
            .children
            .iter()
            .map(|&c| self.nodes[c].dur_ns)
            .fold(0u64, |acc, d| acc.saturating_add(d));
        node.dur_ns.saturating_sub(child_ns)
    }

    /// Depth-first pre-order over the tree (parents before children),
    /// deterministic in stream order.
    fn dfs(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut stack: Vec<usize> = self.roots.iter().rev().copied().collect();
        while let Some(i) = stack.pop() {
            order.push(i);
            for &c in self.nodes[i].children.iter().rev() {
                stack.push(c);
            }
        }
        order
    }

    /// Export as Chrome `trace_event` JSON — an object with a
    /// `traceEvents` array of `ph: "X"` complete events (`ts`/`dur` in
    /// microseconds), loadable in `chrome://tracing` and Perfetto.
    pub fn chrome_trace_json(&self) -> String {
        let mut events = Vec::with_capacity(self.nodes.len());
        for i in self.dfs() {
            let node = &self.nodes[i];
            let mut args: Vec<(String, Json)> = node
                .fields
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect();
            args.push((
                "self_us".to_string(),
                Json::Num(self.self_ns(i) as f64 / 1e3),
            ));
            events.push(Json::Obj(vec![
                ("name".to_string(), Json::Str(node.name.clone())),
                ("cat".to_string(), Json::Str("vadasa".to_string())),
                ("ph".to_string(), Json::Str("X".to_string())),
                ("ts".to_string(), Json::Num(node.start_ns as f64 / 1e3)),
                ("dur".to_string(), Json::Num(node.dur_ns as f64 / 1e3)),
                ("pid".to_string(), Json::Num(1.0)),
                ("tid".to_string(), Json::Num(1.0)),
                ("args".to_string(), Json::Obj(args)),
            ]));
        }
        Json::Obj(vec![
            ("traceEvents".to_string(), Json::Arr(events)),
            ("displayTimeUnit".to_string(), Json::Str("ms".to_string())),
        ])
        .to_string()
    }

    /// Export as collapsed-stack text: one `a;b;leaf <self-ns>` line per
    /// distinct stack with nonzero self time, sorted lexicographically —
    /// the input `flamegraph.pl` / `inferno-flamegraph` consume.
    pub fn collapsed_stacks(&self) -> String {
        let mut weights: BTreeMap<String, u128> = BTreeMap::new();
        for i in self.dfs() {
            let self_ns = self.self_ns(i);
            if self_ns == 0 {
                continue;
            }
            *weights.entry(self.stack_of(i)).or_insert(0) += self_ns as u128;
        }
        let mut out = String::new();
        for (stack, w) in &weights {
            out.push_str(stack);
            out.push(' ');
            out.push_str(&w.to_string());
            out.push('\n');
        }
        out
    }

    /// `;`-joined names from the root down to node `index`.
    fn stack_of(&self, index: usize) -> String {
        let mut names = Vec::new();
        let mut cur = Some(index);
        while let Some(i) = cur {
            names.push(self.nodes[i].name.as_str());
            cur = self.nodes[i].parent;
        }
        names.reverse();
        names.join(";")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fields, Obs};

    /// A three-span tree replayed via `span_in`: root [0, 100),
    /// child a [0, 60), child b [60, 100), grandchild [10, 30) under a.
    fn sample_tree() -> TraceTree {
        let rec = Recorder::new();
        let obs = Obs::new(Some(&rec));
        let root = crate::next_span_id();
        let a = crate::next_span_id();
        let b = crate::next_span_id();
        let g = crate::next_span_id();
        obs.span_in("a", a, root, 0, 60, fields!["k" => 1u64]);
        obs.span_in("g", g, a, 10, 20, vec![]);
        obs.span_in("b", b, root, 60, 40, vec![]);
        obs.span_in("root", root, 0, 0, 100, vec![]);
        TraceBuilder::from_recorder(&rec)
    }

    #[test]
    fn builds_tree_with_late_parents() {
        let tree = sample_tree();
        assert_eq!(tree.nodes.len(), 4);
        assert_eq!(tree.roots.len(), 1);
        let root = &tree.nodes[tree.roots[0]];
        assert_eq!(root.name, "root");
        assert_eq!(root.children.len(), 2);
        let a_idx = root.children[0];
        assert_eq!(tree.nodes[a_idx].name, "a");
        assert_eq!(tree.nodes[a_idx].children.len(), 1);
    }

    #[test]
    fn self_time_subtracts_children() {
        let tree = sample_tree();
        let root_idx = tree.roots[0];
        assert_eq!(tree.self_ns(root_idx), 0); // 100 − 60 − 40
        let a_idx = tree.nodes[root_idx].children[0];
        assert_eq!(tree.self_ns(a_idx), 40); // 60 − 20
    }

    #[test]
    fn chrome_trace_has_required_keys_and_microseconds() {
        let tree = sample_tree();
        let text = tree.chrome_trace_json();
        let v = json::parse(&text).unwrap();
        let events = match v.get("traceEvents") {
            Some(Json::Arr(events)) => events,
            other => panic!("traceEvents missing: {other:?}"),
        };
        assert_eq!(events.len(), 4);
        for e in events {
            for key in ["name", "cat", "ph", "ts", "dur", "pid", "tid", "args"] {
                assert!(e.get(key).is_some(), "missing {key}");
            }
            assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
        }
        // DFS pre-order: root first; ts/dur in µs.
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("root"));
        assert_eq!(events[0].get("dur").unwrap().as_f64(), Some(0.1));
        assert_eq!(events[1].get("name").unwrap().as_str(), Some("a"));
        assert_eq!(events[2].get("ts").unwrap().as_f64(), Some(0.01));
    }

    #[test]
    fn collapsed_stacks_weight_self_time() {
        let tree = sample_tree();
        let text = tree.collapsed_stacks();
        let lines: Vec<&str> = text.lines().collect();
        // root has 0 self time → absent; three leaves-with-self-time.
        assert_eq!(
            lines,
            vec!["root;a 40", "root;a;g 20", "root;b 40"],
            "unexpected collapsed output:\n{text}"
        );
    }

    #[test]
    fn json_lines_round_trip_to_tree() {
        let writer = crate::JsonLinesWriter::new(Vec::<u8>::new());
        let obs = Obs::new(Some(&writer));
        let root = crate::next_span_id();
        let child = crate::next_span_id();
        obs.counter("noise", 1, vec![]);
        obs.span_in("child", child, root, 5, 10, vec![]);
        obs.span_in("root", root, 0, 0, 50, vec![]);
        let text = String::from_utf8(writer.into_inner()).unwrap();
        let tree = TraceBuilder::from_json_lines(&text);
        assert_eq!(tree.nodes.len(), 2, "counter line must be skipped");
        assert_eq!(tree.roots.len(), 1);
        let r = &tree.nodes[tree.roots[0]];
        assert_eq!(r.name, "root");
        assert_eq!(r.children.len(), 1);
        assert_eq!(tree.nodes[r.children[0]].start_ns, 5);
    }

    #[test]
    fn orphan_spans_become_roots() {
        let mut b = TraceBuilder::new();
        let ev = Event {
            kind: EventKind::Span { dur_ns: 7 },
            name: std::borrow::Cow::Borrowed("lost"),
            fields: vec![],
            span_id: 99,
            parent_id: 12345, // never recorded
            start_ns: None,
        };
        b.push(20, &ev);
        let tree = b.build();
        assert_eq!(tree.roots, vec![0]);
        assert_eq!(tree.nodes[0].start_ns, 13); // t_ns − dur
    }
}
