//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the API subset its property tests use: the [`Strategy`] trait with
//! `prop_map`/`boxed`, range and tuple strategies, `collection::{vec,
//! btree_set}`, `bool::ANY`, the [`prop_oneof!`] union macro, and the
//! [`proptest!`] test macro with `#![proptest_config(...)]`.
//!
//! Differences from the real crate, by design:
//!
//! - **No shrinking.** A failing case panics with the assertion message;
//!   re-running is deterministic (see below), so the failure reproduces.
//! - **Deterministic generation.** Each test's RNG is seeded from the test
//!   function's name, so runs are reproducible without a persistence file.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic RNG for one property, seeded from its name.
pub fn test_rng(test_name: &str) -> StdRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                self.clone().sample_from(rng)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                self.clone().sample_from(rng)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// A weighted union of strategies (the engine behind [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(f64, BoxedStrategy<T>)>,
    total: f64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(f64, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w).sum();
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let mut u = rng.gen_range(0.0..self.total);
        for (w, s) in &self.arms {
            if u < *w {
                return s.generate(rng);
            }
            u -= w;
        }
        self.arms.last().unwrap().1.generate(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::*;
    use std::collections::BTreeSet;

    /// Something usable as a collection size: a fixed `usize` or a range.
    pub trait IntoSizeRange {
        /// Inclusive `(min, max)` bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }
    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }
    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// A vector whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.min..=self.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` targeting a size drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// A set whose size is drawn from `size`; duplicates are retried a
    /// bounded number of times, so the set may come up short when the
    /// element domain is small.
    pub fn btree_set<S>(element: S, size: impl IntoSizeRange) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        let (min, max) = size.bounds();
        BTreeSetStrategy { element, min, max }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let target = rng.gen_range(self.min..=self.max);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 10 + 10 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::*;

    /// The strategy type behind [`ANY`].
    pub struct Any;

    /// A uniformly random boolean.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as f64, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1.0f64, $crate::Strategy::boxed($strategy))),+
        ])
    };
}

/// Property assertion: plain `assert!` (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property assertion: plain `assert_eq!` (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(stringify!($name));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $p = $crate::Strategy::generate(&($s), &mut __rng);)+
                $body
            }
        }
    )*};
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn vec_lengths_respect_bounds(v in crate::collection::vec(0u8..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() <= 4);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_respects_arms(x in prop_oneof![3 => 0i64..10, 1 => 100i64..110]) {
            prop_assert!((0..10).contains(&x) || (100..110).contains(&x), "{x}");
        }

        #[test]
        fn tuples_and_maps(pair in (0u8..4, 0u8..4).prop_map(|(a, b)| (b, a))) {
            prop_assert!(pair.0 < 4 && pair.1 < 4);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let s = crate::collection::vec(0u64..1000, 5..10);
        let a: Vec<u64> = Strategy::generate(&s, &mut crate::test_rng("t"));
        let b: Vec<u64> = Strategy::generate(&s, &mut crate::test_rng("t"));
        assert_eq!(a, b);
    }
}
