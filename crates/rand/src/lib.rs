//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so this
//! workspace vendors the small API subset it actually uses: a seedable
//! generator ([`rngs::StdRng`]), uniform range sampling
//! ([`Rng::gen_range`]) over the common integer types and `f64`, and
//! Bernoulli draws ([`Rng::gen_bool`]).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! well-distributed, and deterministic per seed, which is all the
//! synthetic-data generators and benches in this repository need.
//! Sequences differ from the real `rand` crate; nothing in-tree depends
//! on the exact streams, only on determinism per seed.

#![warn(missing_docs)]

/// Random number generator implementations.
pub mod rngs {
    /// A deterministic, seedable generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the xoshiro state; the
        // state must not be all-zero, which SplitMix64 guarantees.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl StdRng {
    #[inline]
    fn next_u64_impl(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// The sampling interface.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        sample_f64(self) < p
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

/// Uniform `f64` in `[0, 1)` using the top 53 bits.
fn sample_f64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `u64` in `[0, bound)` via Lemire-style rejection (unbiased).
fn sample_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0, "empty sampling range");
    // Rejection zone keeps the distribution exactly uniform.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(sample_below(rng, span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as $wide).wrapping_add(sample_below(rng, span + 1) as $wide) as $t
            }
        }
    )*};
}

impl_int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + sample_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        lo + sample_f64(rng) * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u: usize = rng.gen_range(0..17);
            assert!(u < 17);
            let i: i64 = rng.gen_range(-30..300);
            assert!((-30..300).contains(&i));
            let v: i32 = rng.gen_range(1..=2);
            assert!((1..=2).contains(&v));
            let f: f64 = rng.gen_range(0.51..0.95);
            assert!((0.51..0.95).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let share = hits as f64 / 100_000.0;
        assert!((share - 0.25).abs() < 0.01, "share {share}");
    }

    #[test]
    fn singleton_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let v: usize = rng.gen_range(0..=0);
        assert_eq!(v, 0);
    }

    #[test]
    fn full_range_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(3);
        let _: u64 = rng.gen_range(0..=u64::MAX);
    }
}
