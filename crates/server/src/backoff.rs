//! Retry policy: fault classification and capped exponential backoff
//! with deterministic jitter.
//!
//! Classification is deliberately narrow. Only journal **I/O** errors
//! are transient — a disk hiccup, an `EINTR`, a full-then-freed volume
//! can all heal on retry, and the write-ahead journal makes retries
//! safe (a half-written attempt is just a torn tail the next attempt
//! truncates). Everything else fails fast: fingerprint mismatches and
//! corrupt journals are configuration/state faults a retry cannot fix,
//! plugin errors and panics are code faults, and `DidNotConverge` under
//! [`FallbackPolicy::Error`] is an explicit caller decision.
//!
//! [`FallbackPolicy::Error`]: vadasa_core::degrade::FallbackPolicy::Error

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;
use vadasa_core::cycle::CycleError;
use vadasa_core::journal::JournalError;

/// Whether a job failure is worth retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Might heal on retry (journal I/O).
    Transient,
    /// Retrying cannot help; fail fast.
    Permanent,
}

/// Classify a cycle error for retry purposes.
pub fn classify(error: &CycleError) -> FaultClass {
    match error {
        CycleError::Journal(JournalError::Io { .. }) => FaultClass::Transient,
        _ => FaultClass::Permanent,
    }
}

/// Capped exponential backoff with multiplicative jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (`3` → at most 4 attempts).
    pub max_retries: u32,
    /// Delay before the first retry.
    pub base: Duration,
    /// Ceiling on any single delay.
    pub cap: Duration,
    /// Jitter fraction `j ∈ [0, 1]`: each delay is scaled by a factor
    /// drawn uniformly from `[1 − j, 1 + j]`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            jitter: 0.25,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn never() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// Is another retry allowed after `attempts` full attempts?
    pub fn allows(&self, attempts: u32) -> bool {
        attempts <= self.max_retries
    }

    /// Delay before retry number `retry` (1-based). Jitter is
    /// deterministic in `(seed, retry)` so tests can pin schedules and
    /// a fleet of jobs with distinct seeds doesn't thundering-herd.
    pub fn delay(&self, retry: u32, seed: u64) -> Duration {
        let exp = retry.saturating_sub(1).min(30);
        let raw = self
            .base
            .saturating_mul(1u32.checked_shl(exp).unwrap_or(u32::MAX));
        let capped = raw.min(self.cap);
        if self.jitter <= 0.0 {
            return capped;
        }
        let mut rng = StdRng::seed_from_u64(seed ^ u64::from(retry).wrapping_mul(0x9E37_79B9));
        let factor = rng.gen_range(1.0 - self.jitter..1.0 + self.jitter);
        Duration::from_nanos((capped.as_nanos() as f64 * factor) as u64)
    }
}

/// FNV-1a of a job id — the per-job jitter seed.
pub fn jitter_seed(job_id: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in job_id.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadasa_core::journal::JournalError;

    #[test]
    fn backoff_schedule_is_pinned_without_jitter() {
        let p = RetryPolicy {
            max_retries: 6,
            base: Duration::from_millis(100),
            cap: Duration::from_secs(2),
            jitter: 0.0,
        };
        let schedule: Vec<u64> = (1..=6).map(|r| p.delay(r, 7).as_millis() as u64).collect();
        assert_eq!(schedule, vec![100, 200, 400, 800, 1600, 2000]);
    }

    #[test]
    fn jitter_is_deterministic_bounded_and_seed_dependent() {
        let p = RetryPolicy::default();
        for retry in 1..=4 {
            let a = p.delay(retry, 42);
            let b = p.delay(retry, 42);
            assert_eq!(a, b, "same seed must give same delay");
            let nominal = p
                .base
                .saturating_mul(1 << (retry - 1))
                .min(p.cap)
                .as_secs_f64();
            let got = a.as_secs_f64();
            assert!(
                got >= nominal * (1.0 - p.jitter) - 1e-9
                    && got <= nominal * (1.0 + p.jitter) + 1e-9,
                "retry {retry}: {got}s outside jitter band around {nominal}s"
            );
        }
        assert_ne!(
            p.delay(1, jitter_seed("job-a")),
            p.delay(1, jitter_seed("job-b")),
            "different jobs must not share a schedule"
        );
    }

    #[test]
    fn huge_retry_counts_saturate_at_the_cap() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.delay(40, 0), p.cap);
        assert_eq!(p.delay(u32::MAX, 0), p.cap);
    }

    #[test]
    fn only_journal_io_is_transient() {
        let io = CycleError::Journal(JournalError::Io {
            context: "appending".into(),
            source: std::io::Error::new(std::io::ErrorKind::Interrupted, "injected"),
        });
        assert_eq!(classify(&io), FaultClass::Transient);
        let permanent = [
            CycleError::Journal(JournalError::Mismatch("fingerprint".into())),
            CycleError::Journal(JournalError::Corrupt {
                offset: 12,
                reason: "bad crc".into(),
            }),
            CycleError::Journal(JournalError::NotConfigured),
            CycleError::Plugin {
                plugin: "risk".into(),
                message: "panicked".into(),
            },
        ];
        for e in &permanent {
            assert_eq!(classify(e), FaultClass::Permanent, "{e:?} must fail fast");
        }
    }

    #[test]
    fn allows_counts_full_attempts() {
        let p = RetryPolicy::default(); // 3 retries → 4 attempts
        assert!(p.allows(1));
        assert!(p.allows(3));
        assert!(!p.allows(4));
        assert!(!RetryPolicy::never().allows(1));
    }
}
