//! `vadasa_server` — the supervised multi-job anonymization service.
//!
//! ```text
//! vadasa_server --jobs-root DIR [--workers N] [--queue N] [--max-rows N]
//!               [--retries N] [--socket PATH | --stdin]
//!
//!   --jobs-root DIR   root directory; one subdirectory per job (required)
//!   --workers N       worker threads (default 2)
//!   --queue N         in-flight job cap for admission control (default 32)
//!   --max-rows N      row budget across all in-flight jobs (default unlimited)
//!   --retries N       max retries per job for transient faults (default 3)
//!   --socket PATH     serve the NDJSON protocol on a unix socket
//!   --stdin           serve the NDJSON protocol on stdin/stdout (default)
//! ```
//!
//! On start the server **always recovers the whole fleet**: every job
//! directory under the root is re-registered, and jobs that were
//! mid-flight when the previous process died resume from their
//! write-ahead journals — bit-identically to a run that was never
//! interrupted.
//!
//! Transport is newline-delimited JSON (see [`vadasa_server::protocol`]);
//! there is deliberately no HTTP. EOF on stdin is a drain shutdown. On a
//! socket, each connection is served in turn; a `shutdown` command ends
//! the process after the requested drain/stop completes.

use std::io::{BufRead, BufReader, Write};
use std::process::ExitCode;
use vadasa_server::protocol::{handle_line, Disposition};
use vadasa_server::{JobServer, RetryPolicy, ServerConfig, ShutdownMode};

fn usage() -> ExitCode {
    eprintln!(
        "usage: vadasa_server --jobs-root DIR [--workers N] [--queue N] [--max-rows N] \
         [--retries N] [--socket PATH | --stdin]"
    );
    ExitCode::from(2)
}

/// Serve one line-oriented reader/writer pair until EOF or shutdown.
/// Returns the shutdown mode if a `shutdown` command arrived.
fn serve<R: BufRead, W: Write>(
    server: &JobServer,
    reader: R,
    mut writer: W,
) -> Option<ShutdownMode> {
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break, // client went away
        };
        if line.trim().is_empty() {
            continue;
        }
        let (response, disposition) = handle_line(server, &line);
        if writeln!(writer, "{response}")
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        if let Disposition::Shutdown(mode) = disposition {
            return Some(mode);
        }
    }
    None
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let switch = |name: &str| args.iter().any(|a| a == name);
    if switch("--help") || switch("-h") {
        return usage();
    }
    let Some(jobs_root) = flag("--jobs-root") else {
        eprintln!("missing required --jobs-root DIR");
        return usage();
    };
    let mut config = ServerConfig::new(&jobs_root);
    let parse_num = |name: &str| -> Result<Option<usize>, ExitCode> {
        match flag(name) {
            None => Ok(None),
            Some(v) => match v.parse() {
                Ok(n) => Ok(Some(n)),
                Err(_) => {
                    eprintln!("{name} must be a non-negative integer");
                    Err(usage())
                }
            },
        }
    };
    match parse_num("--workers") {
        Ok(Some(n)) if n >= 1 => config.workers = n,
        Ok(Some(_)) => {
            eprintln!("--workers must be >= 1");
            return usage();
        }
        Ok(None) => {}
        Err(code) => return code,
    }
    match parse_num("--queue") {
        Ok(Some(n)) if n >= 1 => config.queue_capacity = n,
        Ok(Some(_)) => {
            eprintln!("--queue must be >= 1");
            return usage();
        }
        Ok(None) => {}
        Err(code) => return code,
    }
    match parse_num("--max-rows") {
        Ok(n) => config.budget.max_facts = n.or(config.budget.max_facts),
        Err(code) => return code,
    }
    match parse_num("--retries") {
        Ok(Some(n)) => {
            config.retry = RetryPolicy {
                max_retries: n as u32,
                ..RetryPolicy::default()
            }
        }
        Ok(None) => {}
        Err(code) => return code,
    }

    let server = match JobServer::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot start server over {jobs_root}: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "vadasa_server: supervising {} (recovered {} job(s))",
        jobs_root,
        server.metrics().counter("server.recovered")
    );

    let mode = match flag("--socket") {
        Some(path) => {
            let _ = std::fs::remove_file(&path);
            let listener = match std::os::unix::net::UnixListener::bind(&path) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("cannot bind {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            eprintln!("vadasa_server: listening on {path}");
            let mut mode = None;
            // Connections are served one at a time: the protocol is
            // cheap request/response; the heavy lifting happens on the
            // worker pool.
            while mode.is_none() {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let reader = BufReader::new(match stream.try_clone() {
                            Ok(s) => s,
                            Err(_) => continue,
                        });
                        mode = serve(&server, reader, stream);
                    }
                    Err(e) => {
                        eprintln!("accept: {e}");
                        break;
                    }
                }
            }
            let _ = std::fs::remove_file(&path);
            mode.unwrap_or(ShutdownMode::Drain)
        }
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            serve(&server, stdin.lock(), stdout.lock()).unwrap_or(ShutdownMode::Drain)
        }
    };
    server.shutdown(mode);
    ExitCode::SUCCESS
}
