//! # vadasa-server — supervised multi-job anonymization service
//!
//! A job-queue front end for the [`vadasa_core`] anonymization cycle:
//! many journaled cycles run concurrently on a bounded worker pool,
//! each job individually resumable, the whole fleet recoverable after a
//! crash of the entire process.
//!
//! - [`spec`] — what a job *is*: the submitted [`JobSpec`], its durable
//!   manifest (`job.json`) and terminal-state marker (`state.json`).
//! - [`backoff`] — fault classification (transient journal I/O vs
//!   fail-fast everything else) and capped exponential backoff with
//!   deterministic per-job jitter.
//! - [`server`] — the supervisor: [`JobServer`], admission control,
//!   panic isolation, retry, graceful shutdown, fleet recovery.
//! - [`protocol`] — the newline-delimited JSON control protocol served
//!   by the `vadasa_server` binary over a unix socket or stdin.
//!
//! ## Quick start
//!
//! ```
//! use vadasa_server::{JobServer, JobSpec, JobState, MeasureSpec, ServerConfig, ShutdownMode};
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let root = std::env::temp_dir().join(format!("vadasa-doc-{}", std::process::id()));
//! let server = JobServer::start(ServerConfig::new(&root))?;
//! let spec = JobSpec::from_csv(
//!     "survey",
//!     "id,area,weight\n1,North,9\n2,North,2\n3,South,5\n4,South,1\n",
//!     MeasureSpec::KAnonymity(2),
//! )?;
//! server.submit("demo", spec)?;
//! let report = server.wait("demo", Duration::from_secs(60)).ok_or("timed out")?;
//! assert_eq!(report.state, JobState::Done);
//! let released = server.result_csv("demo").ok_or("no released table")?;
//! assert!(released.starts_with("id,area,weight"));
//! server.shutdown(ShutdownMode::Drain);
//! # std::fs::remove_dir_all(&root).ok();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod backoff;
pub mod protocol;
pub mod server;
pub mod spec;

pub use backoff::{classify, FaultClass, RetryPolicy};
pub use server::{JobReport, JobServer, JobState, ServerConfig, ShutdownMode, SubmitError};
pub use spec::{JobSpec, Marker, MarkerSummary, MeasureSpec, SpecError};
