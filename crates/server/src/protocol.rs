//! The newline-delimited JSON control protocol.
//!
//! One request per line, one response per line — served by the
//! `vadasa_server` binary over a unix socket or stdin/stdout. Every
//! response carries `"ok"`; failures add `"error"` and never kill the
//! server (a malformed line is a client bug, not a supervisor fault).
//!
//! ```text
//! → {"cmd":"submit","id":"j1","name":"survey","csv":"id,area,w\n1,North,9\n","measure":"k-anonymity","k":2}
//! ← {"ok":true,"id":"j1"}
//! → {"cmd":"wait","id":"j1","timeout_ms":60000}
//! ← {"ok":true,"job":{"id":"j1","state":"done",...}}
//! → {"cmd":"shutdown","mode":"drain"}
//! ← {"ok":true,"shutdown":"drain"}
//! ```

use std::time::Duration;

use vadasa_core::obs::json::{self, Json};

use crate::server::{JobReport, JobServer, ShutdownMode};
use crate::spec::{JobSpec, MeasureSpec};

/// What the transport loop should do after answering a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Keep serving.
    Continue,
    /// Shut the server down with this mode, then stop serving.
    Shutdown(ShutdownMode),
}

fn ok(mut extra: Vec<(String, Json)>) -> String {
    let mut members = vec![("ok".to_string(), Json::Bool(true))];
    members.append(&mut extra);
    Json::Obj(members).to_string()
}

fn fail(message: impl Into<String>) -> String {
    Json::Obj(vec![
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::Str(message.into())),
    ])
    .to_string()
}

/// Render a job report as a JSON object.
pub fn report_json(r: &JobReport) -> Json {
    let mut members: Vec<(String, Json)> = vec![
        ("id".into(), Json::Str(r.id.clone())),
        ("state".into(), Json::Str(r.state.name().into())),
        ("attempts".into(), Json::Num(f64::from(r.attempts))),
        ("rows".into(), Json::Num(r.rows as f64)),
        ("storage".into(), Json::Str(r.storage.as_str().into())),
    ];
    if let Some(e) = &r.error {
        members.push(("error".into(), Json::Str(e.clone())));
    }
    if let Some(s) = &r.summary {
        members.push((
            "summary".into(),
            Json::Obj(vec![
                ("converged".into(), Json::Bool(s.converged)),
                ("iterations".into(), Json::Num(s.iterations as f64)),
                ("nulls_injected".into(), Json::Num(s.nulls_injected as f64)),
                ("recodings".into(), Json::Num(s.recodings as f64)),
                ("final_risky".into(), Json::Num(s.final_risky as f64)),
                ("information_loss".into(), Json::Num(s.information_loss)),
            ]),
        ));
    }
    if let Some(i) = r.iteration {
        members.push(("iteration".into(), Json::Num(i)));
    }
    if let Some(n) = r.rows_at_risk {
        members.push(("rows_at_risk".into(), Json::Num(n)));
    }
    if let Some(c) = r.eta_confidence {
        members.push(("eta_confidence".into(), Json::Num(c)));
    }
    Json::Obj(members)
}

fn parse_measure(v: &Json) -> Result<MeasureSpec, String> {
    match v.get("measure").and_then(Json::as_str) {
        None | Some("k-anonymity") => {
            let k = v.get("k").and_then(Json::as_f64).unwrap_or(2.0);
            Ok(MeasureSpec::KAnonymity(k as usize))
        }
        Some("re-identification") => Ok(MeasureSpec::ReIdentification),
        Some("suda") => {
            let t = v.get("msu").and_then(Json::as_f64).unwrap_or(2.0);
            Ok(MeasureSpec::Suda(t as usize))
        }
        Some(other) => Err(format!("unknown measure {other:?}")),
    }
}

fn parse_submit(v: &Json) -> Result<(String, JobSpec), String> {
    let id = v
        .get("id")
        .and_then(Json::as_str)
        .ok_or("submit requires \"id\"")?
        .to_string();
    let name = v.get("name").and_then(Json::as_str).unwrap_or("microdata");
    let csv = v
        .get("csv")
        .and_then(Json::as_str)
        .ok_or("submit requires \"csv\"")?;
    let measure = parse_measure(v)?;
    let mut spec = match v.get("categories") {
        Some(Json::Obj(members)) => {
            // Explicit dictionary: build it attribute by attribute.
            let db = vadasa_core::io::read_csv(name, csv).map_err(|e| format!("csv: {e}"))?;
            let mut dict = vadasa_core::dictionary::MetadataDictionary::new();
            for attr in db.attributes() {
                dict.register_attr(&db.name, attr, "");
            }
            for (attr, cat) in members {
                let cat_name = cat.as_str().ok_or("category values must be strings")?;
                let cat = vadasa_core::dictionary::Category::from_name(cat_name)
                    .ok_or_else(|| format!("unknown category {cat_name:?}"))?;
                dict.set_category(&db.name, attr, cat)
                    .map_err(|e| format!("category: {e}"))?;
            }
            JobSpec::new(&db, &dict, measure).map_err(|e| e.to_string())?
        }
        _ => JobSpec::from_csv(name, csv, measure).map_err(|e| e.to_string())?,
    };
    if let Some(t) = v.get("threshold").and_then(Json::as_f64) {
        spec.threshold = t;
    }
    if let Some(m) = v.get("max_iterations").and_then(Json::as_f64) {
        spec.max_iterations = m as usize;
    }
    if let Some(ms) = v.get("deadline_ms").and_then(Json::as_f64) {
        spec.deadline = Some(Duration::from_millis(ms as u64));
    }
    if let Some(g) = v.get("granularity").and_then(Json::as_str) {
        spec.granularity = match g {
            "one-tuple" => vadasa_core::cycle::StepGranularity::OneTuplePerIteration,
            "all-risky" => vadasa_core::cycle::StepGranularity::AllRiskyPerIteration,
            other => return Err(format!("unknown granularity {other:?}")),
        };
    }
    if let Some(b) = v.get("batch").and_then(Json::as_str) {
        spec.batch = Some(match b {
            "one-tuple" => vadasa_core::cycle::BatchStrategy::OneTuple,
            "per-class" => vadasa_core::cycle::BatchStrategy::PerClass,
            other => match other
                .strip_prefix("top-")
                .and_then(|n| n.parse::<usize>().ok())
            {
                Some(n) if n > 0 => vadasa_core::cycle::BatchStrategy::TopN(n),
                _ => return Err(format!("unknown batch strategy {other:?}")),
            },
        });
    }
    if let Some(n) = v.get("risk_threads").and_then(Json::as_f64) {
        spec.risk_threads = (n as usize).max(1);
    }
    if let Some(n) = v.get("snapshot_every").and_then(Json::as_f64) {
        spec.snapshot_every = Some(n as u32);
    }
    if let Some(s) = v.get("storage").and_then(Json::as_str) {
        spec.storage = vadalog::StorageEngine::parse(s)
            .ok_or_else(|| format!("unknown storage engine {s:?}"))?;
    }
    Ok((id, spec))
}

/// Handle one request line against the server. Always returns a
/// one-line JSON response; never panics, never kills the supervisor.
pub fn handle_line(server: &JobServer, line: &str) -> (String, Disposition) {
    let line = line.trim();
    if line.is_empty() {
        return (fail("empty request"), Disposition::Continue);
    }
    let v = match json::parse(line) {
        Ok(v) => v,
        Err(e) => return (fail(format!("bad json: {e}")), Disposition::Continue),
    };
    let Some(cmd) = v.get("cmd").and_then(Json::as_str) else {
        return (fail("missing \"cmd\""), Disposition::Continue);
    };
    match cmd {
        "ping" => (
            ok(vec![("pong".into(), Json::Bool(true))]),
            Disposition::Continue,
        ),
        "submit" => match parse_submit(&v) {
            Ok((id, spec)) => match server.submit(&id, spec) {
                Ok(id) => (
                    ok(vec![("id".into(), Json::Str(id))]),
                    Disposition::Continue,
                ),
                Err(e) => (fail(e.to_string()), Disposition::Continue),
            },
            Err(e) => (fail(e), Disposition::Continue),
        },
        "status" => match v.get("id").and_then(Json::as_str) {
            Some(id) => match server.status(id) {
                Some(r) => (
                    ok(vec![("job".into(), report_json(&r))]),
                    Disposition::Continue,
                ),
                None => (fail(format!("unknown job {id:?}")), Disposition::Continue),
            },
            None => (fail("status requires \"id\""), Disposition::Continue),
        },
        "list" => {
            let jobs: Vec<Json> = server.list().iter().map(report_json).collect();
            (
                ok(vec![("jobs".into(), Json::Arr(jobs))]),
                Disposition::Continue,
            )
        }
        "cancel" => match v.get("id").and_then(Json::as_str) {
            Some(id) => (
                ok(vec![("cancelled".into(), Json::Bool(server.cancel(id)))]),
                Disposition::Continue,
            ),
            None => (fail("cancel requires \"id\""), Disposition::Continue),
        },
        "wait" => match v.get("id").and_then(Json::as_str) {
            Some(id) => {
                let timeout = v
                    .get("timeout_ms")
                    .and_then(Json::as_f64)
                    .map_or(Duration::from_secs(60), |ms| {
                        Duration::from_millis(ms as u64)
                    });
                match server.wait(id, timeout) {
                    Some(r) => (
                        ok(vec![("job".into(), report_json(&r))]),
                        Disposition::Continue,
                    ),
                    None => (fail(format!("unknown job {id:?}")), Disposition::Continue),
                }
            }
            None => (fail("wait requires \"id\""), Disposition::Continue),
        },
        "result" => match v.get("id").and_then(Json::as_str) {
            Some(id) => match server.result_csv(id) {
                Some(csv) => (
                    ok(vec![("csv".into(), Json::Str(csv))]),
                    Disposition::Continue,
                ),
                None => (
                    fail(format!("job {id:?} has no released result")),
                    Disposition::Continue,
                ),
            },
            None => (fail("result requires \"id\""), Disposition::Continue),
        },
        "metrics" => match json::parse(&server.metrics().snapshot_json()) {
            Ok(snapshot) => (
                ok(vec![("metrics".into(), snapshot)]),
                Disposition::Continue,
            ),
            Err(e) => (fail(format!("metrics: {e}")), Disposition::Continue),
        },
        "shutdown" => {
            let mode = match v.get("mode").and_then(Json::as_str) {
                Some("stop") => ShutdownMode::Stop,
                _ => ShutdownMode::Drain,
            };
            let label = match mode {
                ShutdownMode::Drain => "drain",
                ShutdownMode::Stop => "stop",
            };
            (
                ok(vec![("shutdown".into(), Json::Str(label.into()))]),
                Disposition::Shutdown(mode),
            )
        }
        other => (
            fail(format!("unknown cmd {other:?}")),
            Disposition::Continue,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{JobServer, ServerConfig};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    fn fresh_root() -> PathBuf {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("vadasa-protocol-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn field<'a>(resp: &'a Json, key: &str) -> &'a Json {
        resp.get(key).expect(key)
    }

    #[test]
    fn full_session_over_the_protocol() {
        let root = fresh_root();
        let server = JobServer::start(ServerConfig::new(&root)).expect("start");
        let (resp, d) = handle_line(&server, r#"{"cmd":"ping"}"#);
        assert_eq!(d, Disposition::Continue);
        assert!(resp.contains("\"pong\""));
        let submit = r#"{"cmd":"submit","id":"p1","name":"survey","csv":"id,area,weight\n1,North,9\n2,North,2\n3,South,5\n4,South,1\n","measure":"k-anonymity","k":2}"#;
        let (resp, _) = handle_line(&server, submit);
        assert!(resp.contains("\"ok\":true"), "{resp}");
        let (resp, _) = handle_line(&server, r#"{"cmd":"wait","id":"p1","timeout_ms":60000}"#);
        let v = json::parse(&resp).expect("json");
        assert_eq!(
            field(field(&v, "job"), "state").as_str(),
            Some("done"),
            "{resp}"
        );
        let (resp, _) = handle_line(&server, r#"{"cmd":"result","id":"p1"}"#);
        let v = json::parse(&resp).expect("json");
        assert!(field(&v, "csv")
            .as_str()
            .is_some_and(|c| c.starts_with("id,area,weight")));
        let (resp, _) = handle_line(&server, r#"{"cmd":"list"}"#);
        assert!(resp.contains("\"p1\""));
        let (resp, _) = handle_line(&server, r#"{"cmd":"metrics"}"#);
        assert!(resp.contains("server.done"), "{resp}");
        // malformed lines never kill the loop
        let (resp, d) = handle_line(&server, "not json at all");
        assert!(resp.contains("\"ok\":false"));
        assert_eq!(d, Disposition::Continue);
        let (resp, d) = handle_line(&server, r#"{"cmd":"shutdown","mode":"drain"}"#);
        assert!(resp.contains("\"shutdown\":\"drain\""));
        assert_eq!(d, Disposition::Shutdown(ShutdownMode::Drain));
        server.shutdown(ShutdownMode::Drain);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn submit_with_explicit_categories_and_bad_input() {
        let root = fresh_root();
        let server = JobServer::start(ServerConfig::new(&root)).expect("start");
        let submit = r#"{"cmd":"submit","id":"c1","name":"t","csv":"a,b,w\n1,x,2\n2,y,3\n","measure":"re-identification","categories":{"a":"identifier","b":"quasi-identifier","w":"weight"}}"#;
        let (resp, _) = handle_line(&server, submit);
        assert!(resp.contains("\"ok\":true"), "{resp}");
        let (resp, _) = handle_line(
            &server,
            r#"{"cmd":"submit","id":"c2","csv":"a\n1\n","categories":{"a":"nonsense"}}"#,
        );
        assert!(resp.contains("unknown category"), "{resp}");
        let (resp, _) = handle_line(&server, r#"{"cmd":"status","id":"ghost"}"#);
        assert!(resp.contains("unknown job"), "{resp}");
        server.wait("c1", Duration::from_secs(60));
        server.shutdown(ShutdownMode::Drain);
        std::fs::remove_dir_all(&root).ok();
    }
}
