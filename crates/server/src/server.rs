//! The supervisor: a bounded worker pool running many journaled
//! anonymization cycles, with admission control, retry/backoff, panic
//! isolation, graceful shutdown and whole-fleet crash recovery.
//!
//! ## Supervision tree
//!
//! ```text
//! JobServer
//! ├── shared state (Mutex) ── job table + run queue + lifecycle flags
//! ├── worker 0 ─┐
//! ├── worker 1  ├── claim job → run cycle (catch_unwind) → transition
//! └── worker N ─┘
//! ```
//!
//! Every job owns a directory under the jobs root holding its manifest
//! (`job.json`), its write-ahead journal (`journal.wal` + snapshots),
//! and — once it reaches a state recovery must respect — a durable
//! marker (`state.json`) and the released table (`released.csv`).
//! Workers never share journal state: panic isolation is per worker
//! ([`std::panic::catch_unwind`]), and a panicking job is marked
//! `Failed` with the rendered payload while the supervisor keeps
//! scheduling.
//!
//! ## At-most-once effects
//!
//! A job's observable effect is the released table. It is produced only
//! by the `Done` transition, which writes `released.csv` atomically and
//! then the `done` marker atomically — so a crash between the two
//! leaves a journal that recovery simply resumes (replaying the
//! *already-committed* actions deterministically), and re-running a
//! recovered job can only converge to the byte-identical table it would
//! have released the first time. Retried attempts reuse the same
//! journal the same way: a failed attempt's torn tail is truncated at
//! the last commit horizon, and committed work is never redone.

use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use vadalog::{Budget, CancelToken, StorageEngine};
use vadasa_core::cycle::{AnonymizationCycle, CycleError, CycleOutcome, CycleTermination};
use vadasa_core::faults::{faulty_io_factory, FaultyRisk, JournalFault};
use vadasa_core::io::write_csv;
use vadasa_core::journal::{IoFactory, JournalConfig};
use vadasa_core::obs::metrics::MetricsRegistry;
use vadasa_core::prelude::{LocalSuppression, RiskMeasure};

use crate::backoff::{classify, jitter_seed, FaultClass, RetryPolicy};
use crate::spec::{
    has_journal, write_file_durable, JobSpec, Marker, MarkerSummary, SpecError, MANIFEST_FILE,
    RELEASED_FILE,
};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Root directory; each job lives in `<jobs_root>/<job-id>/`.
    pub jobs_root: PathBuf,
    /// Worker threads (≥ 1).
    pub workers: usize,
    /// Admission cap on jobs in flight (queued + running + retrying).
    pub queue_capacity: usize,
    /// Governor budget: `max_facts` bounds the *total rows* across all
    /// in-flight jobs (backpressure), `deadline` is the default per-job
    /// deadline for specs that don't set one.
    pub budget: Budget,
    /// Retry policy for transient faults.
    pub retry: RetryPolicy,
}

impl ServerConfig {
    /// Defaults: 2 workers, 32-job queue, unlimited budget.
    pub fn new(jobs_root: impl Into<PathBuf>) -> Self {
        ServerConfig {
            jobs_root: jobs_root.into(),
            workers: 2,
            queue_capacity: 32,
            budget: Budget::unlimited(),
            retry: RetryPolicy::default(),
        }
    }
}

/// Job lifecycle states.
///
/// ```text
/// Queued ──► Running ──► Done
///    ▲          │  ├───► Failed
///    │          │  ├───► Cancelled
///    │          │  └───► Interrupted   (checkpoint-and-stop shutdown)
///    └─Retrying ◄┘       (transient fault, capped backoff)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is executing the cycle.
    Running,
    /// Hit a transient fault; re-queued behind a backoff gate.
    Retrying,
    /// Converged (or degraded safely); `released.csv` is on disk.
    Done,
    /// Terminal failure; see the structured error.
    Failed,
    /// Cancelled by the client.
    Cancelled,
    /// Stopped by a checkpoint-and-stop shutdown; the journal is
    /// resumable and fleet recovery re-queues the job on restart.
    Interrupted,
}

impl JobState {
    /// Stable lowercase name (marker / wire format).
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Retrying => "retrying",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
            JobState::Interrupted => "interrupted",
        }
    }

    /// No worker will touch this job again (in this process).
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled | JobState::Interrupted
        )
    }

    fn in_flight(&self) -> bool {
        !self.is_terminal()
    }
}

/// Why a submission was rejected. Admission checks run in exactly this
/// order; tests pin it.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// The server is shutting down and accepts no new work.
    ShuttingDown,
    /// A job with this id already exists (any state).
    DuplicateId(String),
    /// The in-flight job cap is reached; retry after jobs finish.
    Saturated {
        /// The configured cap.
        capacity: usize,
    },
    /// Admitting the job would exceed the row budget.
    BudgetExceeded {
        /// Rows currently in flight.
        in_flight_rows: usize,
        /// Rows this job would add.
        job_rows: usize,
        /// The configured cap ([`Budget::max_facts`]).
        max_rows: usize,
    },
    /// The job id or spec is invalid.
    Invalid(String),
    /// Creating the job directory or manifest failed.
    Io(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
            SubmitError::DuplicateId(id) => write!(f, "job {id:?} already exists"),
            SubmitError::Saturated { capacity } => {
                write!(f, "queue saturated ({capacity} jobs in flight)")
            }
            SubmitError::BudgetExceeded {
                in_flight_rows,
                job_rows,
                max_rows,
            } => write!(
                f,
                "row budget exceeded: {in_flight_rows} in flight + {job_rows} new > {max_rows}"
            ),
            SubmitError::Invalid(m) => write!(f, "invalid submission: {m}"),
            SubmitError::Io(m) => write!(f, "job admission i/o: {m}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Graceful shutdown modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShutdownMode {
    /// Stop accepting, finish every queued and retrying job, join.
    Drain,
    /// Stop accepting, checkpoint-and-stop: running jobs are cancelled
    /// at the next iteration boundary and marked `Interrupted`
    /// (journals resumable); queued jobs are marked `Interrupted`
    /// without running. Fleet recovery resumes them all on restart.
    Stop,
}

/// A point-in-time view of one job, safe to hand across threads.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// Job id (= directory name under the jobs root).
    pub id: String,
    /// Lifecycle state.
    pub state: JobState,
    /// Full attempts so far (1 = first run).
    pub attempts: u32,
    /// Rows in the job's table.
    pub rows: usize,
    /// Structured error for failed jobs.
    pub error: Option<String>,
    /// Outcome summary for done jobs.
    pub summary: Option<MarkerSummary>,
    /// Live `cycle.iteration` gauge while running.
    pub iteration: Option<f64>,
    /// Live `cycle.rows_at_risk` gauge while running.
    pub rows_at_risk: Option<f64>,
    /// Live ETA confidence (`cycle.eta_confidence`) while running.
    pub eta_confidence: Option<f64>,
    /// Storage engine the job's spec declares for persisted warm
    /// artifacts (`mem` when the spec is unreadable).
    pub storage: StorageEngine,
}

/// What actually went wrong in one attempt (pre-classification).
#[derive(Debug)]
enum JobFailure {
    Spec(SpecError),
    Cycle(CycleError),
    Persist(std::io::Error),
    Panic(String),
}

impl JobFailure {
    fn class(&self) -> FaultClass {
        match self {
            // A released-table write can heal on retry: resume replays
            // the finished journal deterministically and re-persists.
            JobFailure::Persist(_) => FaultClass::Transient,
            JobFailure::Cycle(e) => classify(e),
            JobFailure::Spec(_) | JobFailure::Panic(_) => FaultClass::Permanent,
        }
    }

    fn render(&self) -> String {
        match self {
            JobFailure::Spec(e) => format!("spec: {e}"),
            JobFailure::Cycle(e) => format!("cycle: {e}"),
            JobFailure::Persist(e) => format!("persisting result: {e}"),
            JobFailure::Panic(m) => format!("worker panicked: {m}"),
        }
    }
}

struct JobEntry {
    spec: Option<Arc<JobSpec>>,
    rows: usize,
    state: JobState,
    attempts: u32,
    cancel: CancelToken,
    cancel_requested: bool,
    metrics: Arc<MetricsRegistry>,
    io_factory: Option<IoFactory>,
    not_before: Option<Instant>,
    error: Option<String>,
    summary: Option<MarkerSummary>,
}

impl JobEntry {
    fn report(&self, id: &str) -> JobReport {
        let live = self.state == JobState::Running;
        JobReport {
            id: id.to_string(),
            state: self.state,
            attempts: self.attempts,
            rows: self.rows,
            error: self.error.clone(),
            summary: self.summary,
            iteration: live
                .then(|| self.metrics.gauge("cycle.iteration"))
                .flatten(),
            rows_at_risk: live
                .then(|| self.metrics.gauge("cycle.rows_at_risk"))
                .flatten(),
            eta_confidence: live
                .then(|| self.metrics.gauge("cycle.eta_confidence"))
                .flatten(),
            storage: self
                .spec
                .as_ref()
                .map(|s| s.storage)
                .unwrap_or(StorageEngine::Mem),
        }
    }
}

struct State {
    jobs: BTreeMap<String, JobEntry>,
    queue: VecDeque<String>,
    accepting: bool,
    stopping: bool,
    active: usize,
}

struct Shared {
    state: Mutex<State>,
    /// Workers park here; signalled on enqueue and shutdown.
    work: Condvar,
    /// Waiters (`wait`, `wait_idle`) park here; signalled on any
    /// job transition.
    done: Condvar,
    cfg: ServerConfig,
    metrics: Arc<MetricsRegistry>,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, State> {
        // A worker that panicked while holding the lock has already been
        // contained by catch_unwind; the state itself is a plain table.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn refresh_gauges(&self, st: &State) {
        self.metrics
            .set_gauge("server.queued", st.queue.len() as f64);
        self.metrics.set_gauge("server.running", st.active as f64);
    }

    fn job_dir(&self, id: &str) -> PathBuf {
        self.cfg.jobs_root.join(id)
    }
}

/// The supervised multi-job anonymization service.
///
/// See the [module docs](self) for the supervision model. Dropping the
/// server performs a [`ShutdownMode::Stop`] shutdown.
pub struct JobServer {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl JobServer {
    /// Start a server over `config.jobs_root`: create the root if
    /// missing, **recover the whole fleet** (every job directory with a
    /// manifest is re-registered; interrupted jobs are re-queued and
    /// resume from their journals), then spawn the worker pool.
    pub fn start(config: ServerConfig) -> std::io::Result<JobServer> {
        std::fs::create_dir_all(&config.jobs_root)?;
        let metrics = Arc::new(MetricsRegistry::new());
        let mut state = State {
            jobs: BTreeMap::new(),
            queue: VecDeque::new(),
            accepting: true,
            stopping: false,
            active: 0,
        };
        recover_fleet(&config.jobs_root, &mut state, &metrics)?;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(state),
            work: Condvar::new(),
            done: Condvar::new(),
            cfg: config,
            metrics,
        });
        shared.refresh_gauges(&shared.lock());
        let handles = (0..workers)
            .map(|i| {
                let sh = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("vadasa-worker-{i}"))
                    .spawn(move || worker_loop(sh))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(JobServer {
            shared,
            workers: handles,
        })
    }

    /// The server-level metrics registry (`server.*` counters/gauges).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.shared.metrics
    }

    /// The jobs root this server supervises.
    pub fn jobs_root(&self) -> &Path {
        &self.shared.cfg.jobs_root
    }

    /// Submit a job. Admission checks run in a pinned order —
    /// shutting-down, duplicate id, queue saturation, row budget — and
    /// the job is only visible to workers after its manifest is durably
    /// on disk (so a crash can never leave an accepted-but-unrecoverable
    /// job).
    pub fn submit(&self, id: &str, spec: JobSpec) -> Result<String, SubmitError> {
        if id.is_empty()
            || !id
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
            || id.starts_with('.')
        {
            return Err(SubmitError::Invalid(format!(
                "job id {id:?} must be non-empty [A-Za-z0-9._-] and not start with '.'"
            )));
        }
        let rows = spec.row_count();
        let io_factory = spec
            .fault
            .transient_appends
            .map(|n| faulty_io_factory(JournalFault::TransientAppends { failing: n }));
        {
            let mut st = self.shared.lock();
            if !st.accepting {
                self.shared.metrics.inc_counter("server.rejected", 1);
                return Err(SubmitError::ShuttingDown);
            }
            if st.jobs.contains_key(id) || self.shared.job_dir(id).join(MANIFEST_FILE).exists() {
                self.shared.metrics.inc_counter("server.rejected", 1);
                return Err(SubmitError::DuplicateId(id.to_string()));
            }
            let in_flight = st.jobs.values().filter(|j| j.state.in_flight()).count();
            if in_flight >= self.shared.cfg.queue_capacity {
                self.shared.metrics.inc_counter("server.rejected", 1);
                return Err(SubmitError::Saturated {
                    capacity: self.shared.cfg.queue_capacity,
                });
            }
            if let Some(max_rows) = self.shared.cfg.budget.max_facts {
                let in_flight_rows: usize = st
                    .jobs
                    .values()
                    .filter(|j| j.state.in_flight())
                    .map(|j| j.rows)
                    .sum();
                if in_flight_rows + rows > max_rows {
                    self.shared.metrics.inc_counter("server.rejected", 1);
                    return Err(SubmitError::BudgetExceeded {
                        in_flight_rows,
                        job_rows: rows,
                        max_rows,
                    });
                }
            }
            // Reserve the id (state Queued, but *not* yet in the run
            // queue) so concurrent submits can't double-admit while we
            // do I/O below.
            st.jobs.insert(
                id.to_string(),
                JobEntry {
                    spec: Some(Arc::new(spec.clone())),
                    rows,
                    state: JobState::Queued,
                    attempts: 0,
                    cancel: CancelToken::new(),
                    cancel_requested: false,
                    metrics: Arc::new(MetricsRegistry::new()),
                    io_factory,
                    not_before: None,
                    error: None,
                    summary: None,
                },
            );
        }
        // Durable admission: directory + manifest before the job becomes
        // runnable.
        let dir = self.shared.job_dir(id);
        let persisted = std::fs::create_dir_all(&dir)
            .and_then(|()| write_file_durable(&dir, MANIFEST_FILE, &spec.to_manifest_json()));
        let mut st = self.shared.lock();
        if let Err(e) = persisted {
            st.jobs.remove(id);
            self.shared.metrics.inc_counter("server.rejected", 1);
            return Err(SubmitError::Io(e.to_string()));
        }
        st.queue.push_back(id.to_string());
        self.shared.metrics.inc_counter("server.submitted", 1);
        self.shared.refresh_gauges(&st);
        drop(st);
        self.shared.work.notify_one();
        Ok(id.to_string())
    }

    /// Report one job, or `None` for an unknown id.
    pub fn status(&self, id: &str) -> Option<JobReport> {
        let st = self.shared.lock();
        st.jobs.get(id).map(|e| e.report(id))
    }

    /// Report every job, sorted by id.
    pub fn list(&self) -> Vec<JobReport> {
        let st = self.shared.lock();
        st.jobs.iter().map(|(id, e)| e.report(id)).collect()
    }

    /// Per-job live metrics registry (the cycle's `cycle.*` gauges).
    pub fn job_metrics(&self, id: &str) -> Option<Arc<MetricsRegistry>> {
        let st = self.shared.lock();
        st.jobs.get(id).map(|e| Arc::clone(&e.metrics))
    }

    /// Cancel a job. Queued/retrying jobs cancel immediately; a running
    /// job is cancelled cooperatively at its next iteration boundary.
    /// Returns `false` for unknown or already-terminal jobs.
    pub fn cancel(&self, id: &str) -> bool {
        let mut st = self.shared.lock();
        let dir = self.shared.job_dir(id);
        let Some(entry) = st.jobs.get_mut(id) else {
            return false;
        };
        match entry.state {
            JobState::Queued | JobState::Retrying => {
                entry.cancel_requested = true;
                entry.state = JobState::Cancelled;
                entry.not_before = None;
                let marker = Marker {
                    state: JobState::Cancelled.name().to_string(),
                    attempts: u64::from(entry.attempts),
                    error: None,
                    summary: None,
                };
                if let Err(e) = marker.write(&dir) {
                    entry.error = Some(format!("writing cancel marker: {e}"));
                }
                st.queue.retain(|q| q != id);
                self.shared.metrics.inc_counter("server.cancelled", 1);
                self.shared.refresh_gauges(&st);
                drop(st);
                self.shared.done.notify_all();
                true
            }
            JobState::Running => {
                entry.cancel_requested = true;
                entry.cancel.cancel();
                true
            }
            _ => false,
        }
    }

    /// Block until the job reaches a terminal state (or `timeout`
    /// expires) and return its report; `None` for unknown ids.
    pub fn wait(&self, id: &str, timeout: Duration) -> Option<JobReport> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.lock();
        loop {
            let report = st.jobs.get(id)?.report(id);
            if report.state.is_terminal() {
                return Some(report);
            }
            let now = Instant::now();
            if now >= deadline {
                return Some(report);
            }
            let (g, _) = self
                .shared
                .done
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            st = g;
        }
    }

    /// Block until no job is queued, gated or running (or `timeout`
    /// expires). Returns `true` when idle.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.lock();
        loop {
            if st.queue.is_empty() && st.active == 0 {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (g, _) = self
                .shared
                .done
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            st = g;
        }
    }

    /// Read a done job's released table (the canonical CSV written at
    /// the `Done` transition).
    pub fn result_csv(&self, id: &str) -> Option<String> {
        let done = {
            let st = self.shared.lock();
            st.jobs.get(id).map(|e| e.state) == Some(JobState::Done)
        };
        if !done {
            return None;
        }
        std::fs::read_to_string(self.shared.job_dir(id).join(RELEASED_FILE)).ok()
    }

    /// Shut the server down and join every worker. See [`ShutdownMode`].
    pub fn shutdown(mut self, mode: ShutdownMode) {
        self.shutdown_impl(mode);
    }

    fn shutdown_impl(&mut self, mode: ShutdownMode) {
        {
            let mut st = self.shared.lock();
            st.accepting = false;
            if mode == ShutdownMode::Stop {
                st.stopping = true;
                let queued: Vec<String> = st.queue.drain(..).collect();
                for id in queued {
                    let dir = self.shared.job_dir(&id);
                    if let Some(entry) = st.jobs.get_mut(&id) {
                        entry.state = JobState::Interrupted;
                        entry.not_before = None;
                        let marker = Marker {
                            state: JobState::Interrupted.name().to_string(),
                            attempts: u64::from(entry.attempts),
                            error: None,
                            summary: None,
                        };
                        if let Err(e) = marker.write(&dir) {
                            entry.error = Some(format!("writing interrupt marker: {e}"));
                        }
                    }
                }
                for entry in st.jobs.values_mut() {
                    if entry.state == JobState::Running {
                        entry.cancel.cancel();
                    }
                }
            }
            self.shared.refresh_gauges(&st);
        }
        self.shared.work.notify_all();
        self.shared.done.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for JobServer {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.shutdown_impl(ShutdownMode::Stop);
        }
    }
}

// --- fleet recovery --------------------------------------------------------

/// Sorted names of persisted storage artifacts (`*.vart`) in a job dir.
fn persisted_artifacts(dir: &Path) -> Vec<String> {
    std::fs::read_dir(dir)
        .map(|entries| {
            let mut v: Vec<String> = entries
                .flatten()
                .map(|e| e.file_name().to_string_lossy().to_string())
                .filter(|n| n.ends_with(".vart"))
                .collect();
            v.sort();
            v
        })
        .unwrap_or_default()
}

/// A manifest that declares the in-memory backend must not preside over
/// persisted storage artifacts: that means the manifest was rewritten or
/// the directory belongs to a different configuration, and silently
/// resuming would ignore (or later clobber) warm state the operator
/// believed durable. Returns the structured refusal, if any.
fn backend_mismatch(spec: &JobSpec, dir: &Path) -> Option<String> {
    if spec.storage != StorageEngine::Mem {
        // File-backed manifests tolerate absent or stale artifacts: the
        // artifact is a cache, refused structurally at load time.
        return None;
    }
    let arts = persisted_artifacts(dir);
    if arts.is_empty() {
        None
    } else {
        Some(format!(
            "storage backend mismatch: manifest declares \"mem\" but the job \
             directory holds persisted artifacts [{}]",
            arts.join(", ")
        ))
    }
}

/// Scan the jobs root and re-register every job directory. Terminal
/// markers are honoured verbatim; everything else (interrupted marker,
/// or no marker at all — i.e. the previous process died mid-flight) is
/// re-queued and will resume from its journal.
fn recover_fleet(
    root: &Path,
    state: &mut State,
    metrics: &Arc<MetricsRegistry>,
) -> std::io::Result<()> {
    let mut dirs: Vec<PathBuf> = std::fs::read_dir(root)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir() && p.join(MANIFEST_FILE).is_file())
        .collect();
    dirs.sort();
    for dir in dirs {
        let Some(id) = dir.file_name().and_then(|n| n.to_str()).map(String::from) else {
            continue;
        };
        let manifest = std::fs::read_to_string(dir.join(MANIFEST_FILE))
            .map_err(|e| e.to_string())
            .and_then(|text| JobSpec::from_manifest_json(&text).map_err(|e| e.to_string()));
        let marker = Marker::read(&dir);
        let mut entry = JobEntry {
            spec: None,
            rows: 0,
            state: JobState::Failed,
            attempts: 0,
            cancel: CancelToken::new(),
            cancel_requested: false,
            metrics: Arc::new(MetricsRegistry::new()),
            io_factory: None,
            not_before: None,
            error: None,
            summary: None,
        };
        let mut mismatch = None;
        match &manifest {
            Ok(spec) => {
                entry.rows = spec.row_count();
                entry.spec = Some(Arc::new(spec.clone()));
                mismatch = backend_mismatch(spec, &dir);
            }
            Err(e) => {
                entry.error = Some(format!("unreadable manifest: {e}"));
            }
        }
        let mut enqueue = false;
        match marker {
            Ok(Some(m)) if m.state != JobState::Interrupted.name() => {
                // done / failed / cancelled — honour verbatim.
                entry.state = match m.state.as_str() {
                    "done" => JobState::Done,
                    "cancelled" => JobState::Cancelled,
                    _ => JobState::Failed,
                };
                entry.attempts = m.attempts as u32;
                entry.error = m.error.or(entry.error);
                entry.summary = m.summary;
            }
            Ok(_) => {
                // Interrupted marker or none at all.
                if entry.spec.is_some() && mismatch.is_none() {
                    entry.state = JobState::Queued;
                    enqueue = true;
                } else {
                    // Manifest unreadable, or its declared storage
                    // backend contradicts the on-disk artifacts:
                    // structured terminal failure, never a resume.
                    if let Some(m) = mismatch {
                        entry.error = Some(m);
                    }
                    let marker = Marker {
                        state: JobState::Failed.name().to_string(),
                        attempts: 0,
                        error: entry.error.clone(),
                        summary: None,
                    };
                    let _ = marker.write(&dir);
                }
            }
            Err(e) => {
                entry.state = JobState::Failed;
                entry.error = Some(format!("unreadable marker: {e}"));
            }
        }
        if enqueue {
            state.queue.push_back(id.clone());
            metrics.inc_counter("server.recovered", 1);
        }
        state.jobs.insert(id, entry);
    }
    Ok(())
}

// --- the worker loop -------------------------------------------------------

enum Next {
    Run(String),
    Exit,
}

fn claim<'a>(shared: &'a Shared, mut st: MutexGuard<'a, State>) -> (Next, MutexGuard<'a, State>) {
    loop {
        if st.stopping && st.queue.is_empty() {
            return (Next::Exit, st);
        }
        let now = Instant::now();
        let runnable = st.queue.iter().position(|id| {
            st.jobs
                .get(id)
                .is_none_or(|j| j.not_before.is_none_or(|t| t <= now))
        });
        if let Some(pos) = runnable {
            if let Some(id) = st.queue.remove(pos) {
                st.active += 1;
                shared.refresh_gauges(&st);
                return (Next::Run(id), st);
            }
            continue;
        }
        if st.queue.is_empty() && !st.accepting && st.active == 0 {
            // Drain complete: nothing queued, nothing running that could
            // re-queue itself.
            return (Next::Exit, st);
        }
        // Park until new work, a shutdown signal, or the earliest
        // backoff gate opens.
        let earliest = st
            .queue
            .iter()
            .filter_map(|id| st.jobs.get(id).and_then(|j| j.not_before))
            .min();
        st = match earliest {
            Some(t) => {
                let wait = t
                    .saturating_duration_since(now)
                    .max(Duration::from_millis(1));
                shared
                    .work
                    .wait_timeout(st, wait)
                    .unwrap_or_else(|p| p.into_inner())
                    .0
            }
            None => shared.work.wait(st).unwrap_or_else(|p| p.into_inner()),
        };
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let next = {
            let st = shared.lock();
            let (next, st) = claim(&shared, st);
            drop(st);
            next
        };
        match next {
            Next::Exit => {
                // Wake siblings so they re-check the exit condition.
                shared.work.notify_all();
                shared.done.notify_all();
                return;
            }
            Next::Run(id) => run_one(&shared, &id),
        }
    }
}

/// Execute one attempt of one job end-to-end and apply the resulting
/// state transition.
fn run_one(shared: &Shared, id: &str) {
    let dir = shared.job_dir(id);
    let claimed = {
        let mut st = shared.lock();
        let claimed = match st.jobs.get_mut(id) {
            Some(entry) => {
                entry.state = JobState::Running;
                entry.attempts += 1;
                entry.not_before = None;
                Some((
                    entry.spec.clone(),
                    entry.cancel.clone(),
                    Arc::clone(&entry.metrics),
                    entry.io_factory.clone(),
                    entry.attempts,
                ))
            }
            None => None,
        };
        shared.refresh_gauges(&st);
        claimed
    };
    let Some((spec, cancel, metrics, io_factory, attempts)) = claimed else {
        let mut st = shared.lock();
        st.active = st.active.saturating_sub(1);
        shared.refresh_gauges(&st);
        drop(st);
        shared.done.notify_all();
        return;
    };
    let result: Result<CycleOutcome, JobFailure> = match spec {
        None => Err(JobFailure::Spec(SpecError {
            message: "job has no readable manifest".into(),
        })),
        Some(spec) => {
            if let Some(d) = spec.fault.delay_start {
                thread::sleep(d);
            }
            let default_deadline = shared.cfg.budget.deadline;
            let caught = catch_unwind(AssertUnwindSafe(|| {
                if spec.fault.panic_on_attempt == Some(attempts) {
                    // Contained by the surrounding catch_unwind.
                    panic!("injected worker panic (attempt {attempts})"); // gate-allow: injected fault
                }
                execute(
                    &spec,
                    &dir,
                    &cancel,
                    &metrics,
                    &io_factory,
                    default_deadline,
                )
            }));
            match caught {
                Ok(r) => r,
                Err(payload) => {
                    shared.metrics.inc_counter("server.panics", 1);
                    Err(JobFailure::Panic(render_panic(payload.as_ref())))
                }
            }
        }
    };
    transition(shared, id, &dir, result);
}

fn render_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// One attempt: rebuild the table/dictionary from the manifest, attach
/// the journal, run or resume the cycle.
fn execute(
    spec: &JobSpec,
    dir: &Path,
    cancel: &CancelToken,
    metrics: &Arc<MetricsRegistry>,
    io_factory: &Option<IoFactory>,
    default_deadline: Option<Duration>,
) -> Result<CycleOutcome, JobFailure> {
    let db = spec.table().map_err(JobFailure::Spec)?;
    let dict = spec.dictionary().map_err(JobFailure::Spec)?;
    let measure = spec.measure.build();
    let anonymizer = LocalSuppression::default();
    let mut config = spec.cycle_config();
    if config.deadline.is_none() {
        config.deadline = default_deadline;
    }
    let mut jcfg = JournalConfig::new(dir);
    jcfg.sync = spec.sync;
    jcfg.snapshot_every = spec.snapshot_every;
    jcfg.io_factory = io_factory.clone();
    config.journal = Some(jcfg);
    let resume = has_journal(dir);
    let run = |risk: &dyn RiskMeasure| {
        let cycle = AnonymizationCycle::new(risk, &anonymizer, config.clone())
            .with_cancel(cancel.clone())
            .with_metrics(Arc::clone(metrics));
        if resume {
            cycle.resume(&db, &dict)
        } else {
            cycle.run(&db, &dict)
        }
    };
    let outcome = match spec.fault.risk_panic_at_eval {
        Some(n) => {
            let faulty = FaultyRisk::new(measure.as_ref()).panic_at(n);
            run(&faulty)
        }
        None => run(measure.as_ref()),
    };
    outcome.map_err(JobFailure::Cycle)
}

/// Apply the post-attempt transition: Done / Failed / Cancelled /
/// Interrupted / Retrying, with durable markers for every state fleet
/// recovery must respect.
fn transition(shared: &Shared, id: &str, dir: &Path, result: Result<CycleOutcome, JobFailure>) {
    // Decide first (flags under lock), persist outside the lock, then
    // finalize.
    let (cancel_requested, stopping, attempts) = {
        let st = shared.lock();
        match st.jobs.get(id) {
            Some(e) => (e.cancel_requested, st.stopping, e.attempts),
            None => (false, st.stopping, 1),
        }
    };
    let result = match result {
        Ok(outcome) if !cancel_requested && !stopping => {
            let summary = MarkerSummary {
                converged: matches!(outcome.termination, CycleTermination::Converged),
                iterations: outcome.iterations as u64,
                nulls_injected: outcome.nulls_injected as u64,
                recodings: outcome.recodings as u64,
                final_risky: outcome.final_risky as u64,
                information_loss: outcome.information_loss,
            };
            let marker = Marker {
                state: JobState::Done.name().to_string(),
                attempts: u64::from(attempts),
                error: None,
                summary: Some(summary),
            };
            // released.csv first, marker second: a crash in between
            // resumes the journal and re-releases identically.
            match write_file_durable(dir, RELEASED_FILE, &write_csv(&outcome.db))
                .and_then(|()| marker.write(dir))
            {
                Ok(()) => Ok((JobState::Done, None, Some(summary))),
                Err(e) => Err(JobFailure::Persist(e)),
            }
        }
        Ok(_) if cancel_requested => {
            let marker = Marker {
                state: JobState::Cancelled.name().to_string(),
                attempts: u64::from(attempts),
                error: None,
                summary: None,
            };
            if let Err(e) = marker.write(dir) {
                Ok((
                    JobState::Cancelled,
                    Some(format!("writing cancel marker: {e}")),
                    None,
                ))
            } else {
                Ok((JobState::Cancelled, None, None))
            }
        }
        Ok(_) => {
            // Checkpoint-and-stop shutdown caught this job mid-flight:
            // the journal stays resumable.
            let marker = Marker {
                state: JobState::Interrupted.name().to_string(),
                attempts: u64::from(attempts),
                error: None,
                summary: None,
            };
            if let Err(e) = marker.write(dir) {
                Ok((
                    JobState::Interrupted,
                    Some(format!("writing interrupt marker: {e}")),
                    None,
                ))
            } else {
                Ok((JobState::Interrupted, None, None))
            }
        }
        Err(f) => Err(f),
    };
    match result {
        Ok((state, error, summary)) => {
            let mut st = shared.lock();
            if let Some(entry) = st.jobs.get_mut(id) {
                entry.state = state;
                entry.error = error.or(entry.error.take());
                entry.summary = summary.or(entry.summary);
            }
            st.active = st.active.saturating_sub(1);
            let counter = match state {
                JobState::Done => "server.done",
                JobState::Cancelled => "server.cancelled",
                _ => "server.interrupted",
            };
            shared.metrics.inc_counter(counter, 1);
            shared.refresh_gauges(&st);
            drop(st);
            shared.done.notify_all();
            shared.work.notify_all();
        }
        Err(failure) => {
            let transient = failure.class() == FaultClass::Transient;
            let retry_allowed =
                transient && !cancel_requested && !stopping && shared.cfg.retry.allows(attempts);
            if retry_allowed {
                let delay = shared.cfg.retry.delay(attempts, jitter_seed(id));
                let mut st = shared.lock();
                if let Some(entry) = st.jobs.get_mut(id) {
                    entry.state = JobState::Retrying;
                    entry.not_before = Some(Instant::now() + delay);
                    entry.error = Some(failure.render());
                }
                st.queue.push_back(id.to_string());
                st.active = st.active.saturating_sub(1);
                shared.metrics.inc_counter("server.retried", 1);
                shared.refresh_gauges(&st);
                drop(st);
                shared.done.notify_all();
                shared.work.notify_all();
            } else {
                let target = if cancel_requested {
                    JobState::Cancelled
                } else {
                    JobState::Failed
                };
                let marker = Marker {
                    state: target.name().to_string(),
                    attempts: u64::from(attempts),
                    error: Some(failure.render()),
                    summary: None,
                };
                let marker_err = marker.write(dir).err();
                let mut st = shared.lock();
                if let Some(entry) = st.jobs.get_mut(id) {
                    entry.state = target;
                    entry.error = Some(match marker_err {
                        Some(e) => format!("{} (and writing marker failed: {e})", failure.render()),
                        None => failure.render(),
                    });
                }
                st.active = st.active.saturating_sub(1);
                shared.metrics.inc_counter(
                    if target == JobState::Cancelled {
                        "server.cancelled"
                    } else {
                        "server.failed"
                    },
                    1,
                );
                shared.refresh_gauges(&st);
                drop(st);
                shared.done.notify_all();
                shared.work.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MeasureSpec;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use vadasa_core::faults::ServerFault;

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    fn fresh_root(tag: &str) -> PathBuf {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("vadasa-server-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_spec() -> JobSpec {
        JobSpec::from_csv(
            "survey",
            "id,area,weight\n1,North,9\n2,North,2\n3,South,5\n4,South,1\n",
            MeasureSpec::KAnonymity(2),
        )
        .expect("tiny spec")
    }

    #[test]
    fn runs_one_job_to_done_and_releases_csv() {
        let root = fresh_root("one");
        let server = JobServer::start(ServerConfig::new(&root)).expect("start");
        server.submit("j1", tiny_spec()).expect("submit");
        let report = server.wait("j1", Duration::from_secs(30)).expect("known");
        assert_eq!(report.state, JobState::Done, "error: {:?}", report.error);
        let summary = report.summary.expect("summary");
        assert!(summary.converged);
        let csv = server.result_csv("j1").expect("released csv");
        assert!(csv.starts_with("id,area,weight"));
        assert!(root.join("j1").join("state.json").is_file());
        assert_eq!(server.metrics().counter("server.done"), 1);
        server.shutdown(ShutdownMode::Drain);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn admission_rejections_follow_the_pinned_order() {
        let root = fresh_root("admission");
        let mut cfg = ServerConfig::new(&root);
        cfg.workers = 1;
        cfg.queue_capacity = 2;
        cfg.budget.max_facts = Some(8);
        // Freeze the worker so in-flight state is predictable.
        let server = JobServer::start(cfg).expect("start");
        let mut slow = tiny_spec();
        slow.fault = ServerFault::none().delay_start(Duration::from_millis(300));
        server.submit("a", slow.clone()).expect("a admitted");
        server.submit("b", tiny_spec()).expect("b admitted");
        // duplicate beats saturation: "a" again while full.
        assert!(matches!(
            server.submit("a", tiny_spec()),
            Err(SubmitError::DuplicateId(_))
        ));
        assert!(matches!(
            server.submit("c", tiny_spec()),
            Err(SubmitError::Saturated { capacity: 2 })
        ));
        // Drain, then budget: 4 rows in flight would exceed nothing, but
        // capacity 2 is freed first.
        assert!(server.wait_idle(Duration::from_secs(30)));
        let mut big = tiny_spec();
        big.csv
            .push_str("5,West,3\n6,West,4\n7,East,2\n8,East,1\n9,East,6\n");
        assert!(matches!(
            server.submit("d", big),
            Err(SubmitError::BudgetExceeded {
                job_rows: 9,
                max_rows: 8,
                ..
            })
        ));
        assert!(matches!(
            server.submit("bad/id", tiny_spec()),
            Err(SubmitError::Invalid(_))
        ));
        assert_eq!(server.metrics().counter("server.rejected"), 3);
        server.shutdown(ShutdownMode::Drain);
        // After shutdown a new server on the root still refuses dup ids
        // because the manifest is on disk.
        let server2 = JobServer::start(ServerConfig::new(&root)).expect("restart");
        assert!(matches!(
            server2.submit("a", tiny_spec()),
            Err(SubmitError::DuplicateId(_))
        ));
        server2.shutdown(ShutdownMode::Drain);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn worker_panic_is_isolated_and_marked_failed() {
        let root = fresh_root("panic");
        let server = JobServer::start(ServerConfig::new(&root)).expect("start");
        let mut spec = tiny_spec();
        spec.fault = ServerFault::none().panic_on_attempt(1);
        server.submit("boom", spec).expect("submit");
        server.submit("ok", tiny_spec()).expect("submit ok");
        let boom = server.wait("boom", Duration::from_secs(30)).expect("boom");
        assert_eq!(boom.state, JobState::Failed);
        assert!(boom.error.as_deref().is_some_and(|e| e.contains("panic")));
        // The supervisor survived and finished the healthy job.
        let ok = server.wait("ok", Duration::from_secs(30)).expect("ok");
        assert_eq!(ok.state, JobState::Done);
        assert_eq!(server.metrics().counter("server.panics"), 1);
        server.shutdown(ShutdownMode::Drain);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn transient_journal_fault_retries_and_converges() {
        let root = fresh_root("retry");
        let mut cfg = ServerConfig::new(&root);
        cfg.retry.base = Duration::from_millis(5);
        cfg.retry.jitter = 0.0;
        let server = JobServer::start(cfg).expect("start");
        let mut spec = tiny_spec();
        // The first two appends fail — one per attempt, because the
        // fault state is shared across attempts' reopened sinks — so the
        // job needs exactly two retries before the journal heals.
        spec.fault = ServerFault::none().transient_appends(2);
        server.submit("flaky", spec).expect("submit");
        let report = server
            .wait("flaky", Duration::from_secs(30))
            .expect("flaky");
        assert_eq!(report.state, JobState::Done, "error: {:?}", report.error);
        assert_eq!(report.attempts, 3, "exactly two retries");
        assert_eq!(server.metrics().counter("server.retried"), 2);
        server.shutdown(ShutdownMode::Drain);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn permanent_faults_fail_fast_without_retry() {
        let root = fresh_root("permanent");
        let server = JobServer::start(ServerConfig::new(&root)).expect("start");
        // Corrupt journal header under a valid manifest → Mismatch/Corrupt
        // on resume, which must not retry.
        let dir = root.join("rotten");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let spec = tiny_spec();
        std::fs::write(dir.join(MANIFEST_FILE), spec.to_manifest_json()).expect("manifest");
        std::fs::write(dir.join("journal.wal"), b"NOTAJOURNAL_____").expect("bad journal");
        drop(server);
        let server = JobServer::start(ServerConfig::new(&root)).expect("restart");
        let report = server
            .wait("rotten", Duration::from_secs(30))
            .expect("known");
        assert_eq!(report.state, JobState::Failed);
        assert_eq!(report.attempts, 1, "permanent fault must not retry");
        server.shutdown(ShutdownMode::Drain);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn recovery_refuses_backend_mismatched_manifests() {
        let root = fresh_root("mismatch");
        // A job dir whose manifest pins the in-memory backend but which
        // holds persisted storage artifacts: recovery must refuse it
        // with a structured error, never enqueue it.
        let dir = root.join("twisted");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let spec = tiny_spec();
        assert_eq!(spec.storage, StorageEngine::Mem);
        std::fs::write(dir.join(MANIFEST_FILE), spec.to_manifest_json()).expect("manifest");
        std::fs::write(dir.join("cycle.warmstats.vart"), b"whatever").expect("artifact");
        let server = JobServer::start(ServerConfig::new(&root)).expect("start");
        let report = server
            .wait("twisted", Duration::from_secs(30))
            .expect("known");
        assert_eq!(report.state, JobState::Failed);
        assert_eq!(report.attempts, 0, "never attempted");
        let err = report.error.expect("structured error");
        assert!(
            err.contains("storage backend mismatch") && err.contains("cycle.warmstats.vart"),
            "error: {err}"
        );
        assert_eq!(server.metrics().counter("server.recovered"), 0);
        server.shutdown(ShutdownMode::Drain);
        // The refusal is durable: a second restart honours the marker.
        let server = JobServer::start(ServerConfig::new(&root)).expect("restart");
        let report = server
            .wait("twisted", Duration::from_secs(30))
            .expect("known");
        assert_eq!(report.state, JobState::Failed);
        // A file-backed manifest over the same artifacts is legitimate:
        // the artifact is a cache, vetted structurally at load time.
        let dir2 = root.join("filed");
        std::fs::create_dir_all(&dir2).expect("mkdir");
        let mut spec2 = tiny_spec();
        spec2.storage = StorageEngine::File;
        std::fs::write(dir2.join(MANIFEST_FILE), spec2.to_manifest_json()).expect("manifest");
        std::fs::write(dir2.join("cycle.warmstats.vart"), b"whatever").expect("artifact");
        server.shutdown(ShutdownMode::Drain);
        let server = JobServer::start(ServerConfig::new(&root)).expect("restart 2");
        let report = server
            .wait("filed", Duration::from_secs(30))
            .expect("known");
        assert_eq!(report.state, JobState::Done, "error: {:?}", report.error);
        assert_eq!(report.storage, StorageEngine::File);
        server.shutdown(ShutdownMode::Drain);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn stop_shutdown_interrupts_and_restart_resumes() {
        let root = fresh_root("stop");
        let mut cfg = ServerConfig::new(&root);
        cfg.workers = 1;
        let server = JobServer::start(cfg).expect("start");
        let mut slow = tiny_spec();
        slow.fault = ServerFault::none().delay_start(Duration::from_millis(200));
        server.submit("running", slow).expect("submit running");
        server.submit("queued", tiny_spec()).expect("submit queued");
        // Give the worker time to claim "running".
        thread::sleep(Duration::from_millis(50));
        server.shutdown(ShutdownMode::Stop);
        let server = JobServer::start(ServerConfig::new(&root)).expect("restart");
        assert!(server.metrics().counter("server.recovered") >= 1);
        for id in ["running", "queued"] {
            let report = server.wait(id, Duration::from_secs(30)).expect("known");
            assert_eq!(report.state, JobState::Done, "{id}: {:?}", report.error);
        }
        server.shutdown(ShutdownMode::Drain);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn cancel_queued_and_running_jobs() {
        let root = fresh_root("cancel");
        let mut cfg = ServerConfig::new(&root);
        cfg.workers = 1;
        let server = JobServer::start(cfg).expect("start");
        let mut slow = tiny_spec();
        slow.fault = ServerFault::none().delay_start(Duration::from_millis(150));
        server.submit("r", slow).expect("submit r");
        server.submit("q", tiny_spec()).expect("submit q");
        thread::sleep(Duration::from_millis(50));
        assert!(server.cancel("q"), "queued job cancels immediately");
        assert!(server.cancel("r"), "running job cancels cooperatively");
        assert!(!server.cancel("nope"), "unknown id");
        let q = server.wait("q", Duration::from_secs(10)).expect("q");
        assert_eq!(q.state, JobState::Cancelled);
        let r = server.wait("r", Duration::from_secs(30)).expect("r");
        assert_eq!(r.state, JobState::Cancelled);
        assert!(!server.cancel("q"), "terminal jobs don't re-cancel");
        server.shutdown(ShutdownMode::Drain);
        std::fs::remove_dir_all(&root).ok();
    }
}
