//! What a job *is*: the [`JobSpec`] a client submits, its durable
//! manifest form (`job.json`), and the terminal-state marker
//! (`state.json`) the supervisor drops into a job directory when the job
//! reaches a state recovery must not resume past.
//!
//! The manifest is the unit of whole-fleet recovery: everything needed
//! to re-run the job bit-identically lives in it — the table as
//! canonical CSV (the importer/exporter round-trip is bit-exact,
//! including labelled nulls), the dictionary as attribute→category
//! pairs, the measure choice and every result-affecting cycle knob. The
//! journal fingerprint is a function of exactly these inputs, so a
//! recovered job resumes its own journal and nobody else's.
//!
//! [`ServerFault`]s deliberately do **not** serialize: a restarted
//! server re-runs recovered jobs clean, which is what a healed
//! transient fault looks like.

use std::path::Path;
use std::time::Duration;
use vadalog::StorageEngine;
use vadasa_core::categorize::{Categorizer, ExperienceBase};
use vadasa_core::cycle::{BatchStrategy, CycleConfig, StepGranularity, StorageOptions, TupleOrder};
use vadasa_core::dictionary::{Category, MetadataDictionary};
use vadasa_core::faults::ServerFault;
use vadasa_core::io::{read_csv, write_csv};
use vadasa_core::journal::io::fsync_dir;
use vadasa_core::journal::{SyncPolicy, JOURNAL_FILE};
use vadasa_core::maybe_match::NullSemantics;
use vadasa_core::model::MicrodataDb;
use vadasa_core::obs::json::{self, Json};
use vadasa_core::prelude::{KAnonymity, ReIdentification, RiskMeasure, Suda};

/// File name of the job manifest inside a job directory.
pub const MANIFEST_FILE: &str = "job.json";
/// File name of the terminal-state marker inside a job directory.
pub const MARKER_FILE: &str = "state.json";
/// File name of the released table written next to a `done` marker.
pub const RELEASED_FILE: &str = "released.csv";

/// Spec/manifest errors — all structured, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// What went wrong, human-readable.
    pub message: String,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job spec: {}", self.message)
    }
}

impl std::error::Error for SpecError {}

fn err(message: impl Into<String>) -> SpecError {
    SpecError {
        message: message.into(),
    }
}

/// Which risk measure the job screens with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeasureSpec {
    /// k-anonymity with the given `k`.
    KAnonymity(usize),
    /// Re-identification risk.
    ReIdentification,
    /// SUDA with the given MSU threshold.
    Suda(usize),
}

impl MeasureSpec {
    /// Instantiate the measure.
    pub fn build(&self) -> Box<dyn RiskMeasure> {
        match self {
            MeasureSpec::KAnonymity(k) => Box::new(KAnonymity::new(*k)),
            MeasureSpec::ReIdentification => Box::new(ReIdentification),
            MeasureSpec::Suda(t) => Box::new(Suda::new(*t)),
        }
    }

    fn to_json(self) -> Vec<(String, Json)> {
        match self {
            MeasureSpec::KAnonymity(k) => vec![
                ("measure".into(), Json::Str("k-anonymity".into())),
                ("k".into(), Json::Num(k as f64)),
            ],
            MeasureSpec::ReIdentification => {
                vec![("measure".into(), Json::Str("re-identification".into()))]
            }
            MeasureSpec::Suda(t) => vec![
                ("measure".into(), Json::Str("suda".into())),
                ("msu".into(), Json::Num(t as f64)),
            ],
        }
    }

    fn from_json(v: &Json) -> Result<Self, SpecError> {
        let name = v
            .get("measure")
            .and_then(Json::as_str)
            .ok_or_else(|| err("missing \"measure\""))?;
        match name {
            "k-anonymity" => {
                let k = v.get("k").and_then(Json::as_f64).unwrap_or(2.0);
                Ok(MeasureSpec::KAnonymity(k as usize))
            }
            "re-identification" => Ok(MeasureSpec::ReIdentification),
            "suda" => {
                let t = v.get("msu").and_then(Json::as_f64).unwrap_or(2.0);
                Ok(MeasureSpec::Suda(t as usize))
            }
            other => Err(err(format!("unknown measure {other:?}"))),
        }
    }
}

/// A complete, self-contained job submission.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Table name (`MicrodataDb::name`).
    pub name: String,
    /// The table as canonical CSV (see [`vadasa_core::io::write_csv`]).
    pub csv: String,
    /// `(attribute, category-name)` pairs, in attribute order.
    pub categories: Vec<(String, String)>,
    /// Risk measure to screen with.
    pub measure: MeasureSpec,
    /// Risk threshold `T`.
    pub threshold: f64,
    /// Tuple prioritization heuristic.
    pub tuple_order: TupleOrder,
    /// Iteration granularity.
    pub granularity: StepGranularity,
    /// Batched iteration heuristic (`None` = classic per-granularity
    /// stepping). Part of the journal fingerprint: recovery resumes a
    /// job under the exact strategy that wrote its journal.
    pub batch: Option<BatchStrategy>,
    /// Risk-evaluation shard count (bit-identical at any value, so it is
    /// *not* part of the fingerprint and may differ across restarts).
    pub risk_threads: usize,
    /// Null semantics for risk-group formation.
    pub semantics: NullSemantics,
    /// Iteration cap for the cycle.
    pub max_iterations: usize,
    /// Per-job wall-clock deadline, enforced between cycle iterations.
    pub deadline: Option<Duration>,
    /// Journal durability policy.
    pub sync: SyncPolicy,
    /// Snapshot cadence (completed iterations per snapshot).
    pub snapshot_every: Option<u32>,
    /// Storage engine for persisted warm artifacts (`mem` keeps legacy
    /// in-memory behaviour; `file` persists warm group statistics beside
    /// the journal). Not part of the journal fingerprint — the backend
    /// decides where caches live, never what the cycle computes — but
    /// recovery refuses a manifest whose declared backend contradicts
    /// the artifacts actually on disk.
    pub storage: StorageEngine,
    /// Injected faults — testing only, never persisted.
    pub fault: ServerFault,
}

impl JobSpec {
    /// A spec over an explicit table + dictionary. Fails when the
    /// dictionary has no categories for the table (the cycle could not
    /// run) rather than at execution time.
    pub fn new(
        db: &MicrodataDb,
        dict: &MetadataDictionary,
        measure: MeasureSpec,
    ) -> Result<Self, SpecError> {
        let attrs = dict
            .attrs(&db.name)
            .map_err(|e| err(format!("dictionary has no table {:?}: {e}", db.name)))?;
        let mut categories = Vec::with_capacity(attrs.len());
        for (attr, meta) in attrs {
            let cat = meta
                .category
                .ok_or_else(|| err(format!("attribute {attr:?} is uncategorized")))?;
            categories.push((attr.clone(), cat.name().to_string()));
        }
        Ok(JobSpec {
            name: db.name.clone(),
            csv: write_csv(db),
            categories,
            measure,
            threshold: 0.5,
            tuple_order: TupleOrder::default(),
            granularity: StepGranularity::default(),
            batch: None,
            risk_threads: 1,
            semantics: NullSemantics::default(),
            max_iterations: 10_000,
            deadline: None,
            sync: SyncPolicy::EveryRecord,
            snapshot_every: Some(16),
            storage: StorageEngine::Mem,
            fault: ServerFault::default(),
        })
    }

    /// A spec from raw CSV, categorizing attributes automatically with
    /// the financial experience base (the same path the [`Vadasa`]
    /// facade takes). Categorization gaps are a structured error — a
    /// config fault that must fail at admission, not at execution.
    ///
    /// [`Vadasa`]: vadasa_core::pipeline::Vadasa
    pub fn from_csv(name: &str, csv: &str, measure: MeasureSpec) -> Result<Self, SpecError> {
        let db = read_csv(name, csv).map_err(|e| err(format!("parsing csv: {e}")))?;
        let mut dict = MetadataDictionary::new();
        for attr in db.attributes() {
            dict.register_attr(&db.name, attr, "");
        }
        let mut categorizer = Categorizer::new(ExperienceBase::financial_defaults());
        categorizer
            .categorize(&mut dict, &db.name)
            .map_err(|e| err(format!("categorizing: {e}")))?;
        let attrs = dict
            .attrs(&db.name)
            .map_err(|e| err(format!("dictionary: {e}")))?;
        let missing: Vec<&String> = attrs
            .iter()
            .filter(|(_, m)| m.category.is_none())
            .map(|(a, _)| a)
            .collect();
        if !missing.is_empty() {
            return Err(err(format!(
                "attributes could not be categorized automatically: {missing:?}"
            )));
        }
        let mut spec = JobSpec::new(&db, &dict, measure)?;
        spec.csv = csv.to_string();
        Ok(spec)
    }

    /// Rebuild the table. (The CSV round-trip is bit-exact, so the
    /// journal fingerprint of the rebuilt table matches the original.)
    pub fn table(&self) -> Result<MicrodataDb, SpecError> {
        read_csv(&self.name, &self.csv).map_err(|e| err(format!("parsing manifest csv: {e}")))
    }

    /// Rebuild the dictionary from the category pairs.
    pub fn dictionary(&self) -> Result<MetadataDictionary, SpecError> {
        let mut dict = MetadataDictionary::new();
        for (attr, cat_name) in &self.categories {
            dict.register_attr(&self.name, attr, "");
            let cat = Category::from_name(cat_name)
                .ok_or_else(|| err(format!("unknown category {cat_name:?} for {attr:?}")))?;
            dict.set_category(&self.name, attr, cat)
                .map_err(|e| err(format!("setting category: {e}")))?;
        }
        Ok(dict)
    }

    /// The cycle configuration this spec pins (journal attached by the
    /// server per job directory).
    pub fn cycle_config(&self) -> CycleConfig {
        CycleConfig {
            threshold: self.threshold,
            tuple_order: self.tuple_order,
            granularity: self.granularity,
            batch: self.batch,
            risk_threads: self.risk_threads,
            semantics: self.semantics,
            max_iterations: self.max_iterations,
            deadline: self.deadline,
            storage: StorageOptions {
                engine: self.storage,
                artifact_io: None,
            },
            ..CycleConfig::default()
        }
    }

    /// Rows in the table without a full parse (CSV data lines).
    pub fn row_count(&self) -> usize {
        self.csv.lines().count().saturating_sub(1)
    }

    /// Serialize to the manifest JSON object (faults excluded).
    pub fn to_manifest_json(&self) -> String {
        let mut members: Vec<(String, Json)> = vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("csv".into(), Json::Str(self.csv.clone())),
            (
                "categories".into(),
                Json::Obj(
                    self.categories
                        .iter()
                        .map(|(a, c)| (a.clone(), Json::Str(c.clone())))
                        .collect(),
                ),
            ),
        ];
        members.extend(self.measure.to_json());
        members.push(("threshold".into(), Json::Num(self.threshold)));
        members.push((
            "tuple_order".into(),
            Json::Str(
                match self.tuple_order {
                    TupleOrder::LessSignificantFirst => "less-significant-first",
                    TupleOrder::MostRiskyFirst => "most-risky-first",
                    TupleOrder::Fifo => "fifo",
                }
                .into(),
            ),
        ));
        members.push((
            "granularity".into(),
            Json::Str(
                match self.granularity {
                    StepGranularity::AllRiskyPerIteration => "all-risky",
                    StepGranularity::OneTuplePerIteration => "one-tuple",
                }
                .into(),
            ),
        ));
        members.push((
            "batch".into(),
            match self.batch {
                None => Json::Null,
                Some(BatchStrategy::OneTuple) => Json::Str("one-tuple".into()),
                Some(BatchStrategy::PerClass) => Json::Str("per-class".into()),
                Some(BatchStrategy::TopN(n)) => Json::Str(format!("top-{n}")),
            },
        ));
        members.push(("risk_threads".into(), Json::Num(self.risk_threads as f64)));
        members.push((
            "semantics".into(),
            Json::Str(
                match self.semantics {
                    NullSemantics::MaybeMatch => "maybe-match",
                    NullSemantics::Standard => "standard",
                }
                .into(),
            ),
        ));
        members.push((
            "max_iterations".into(),
            Json::Num(self.max_iterations as f64),
        ));
        members.push((
            "deadline_ms".into(),
            match self.deadline {
                Some(d) => Json::Num(d.as_millis() as f64),
                None => Json::Null,
            },
        ));
        let (sync_kind, sync_n) = match self.sync {
            SyncPolicy::EveryRecord => ("every-record", None),
            SyncPolicy::EveryN(n) => ("every-n", Some(n)),
            SyncPolicy::OnSnapshot => ("on-snapshot", None),
        };
        members.push(("sync".into(), Json::Str(sync_kind.into())));
        if let Some(n) = sync_n {
            members.push(("sync_n".into(), Json::Num(n as f64)));
        }
        members.push((
            "snapshot_every".into(),
            match self.snapshot_every {
                Some(n) => Json::Num(n as f64),
                None => Json::Null,
            },
        ));
        members.push(("storage".into(), Json::Str(self.storage.as_str().into())));
        Json::Obj(members).to_string()
    }

    /// Parse a manifest back into a spec.
    pub fn from_manifest_json(text: &str) -> Result<Self, SpecError> {
        let v = json::parse(text).map_err(|e| err(format!("manifest json: {e}")))?;
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| err("missing \"name\""))?
            .to_string();
        let csv = v
            .get("csv")
            .and_then(Json::as_str)
            .ok_or_else(|| err("missing \"csv\""))?
            .to_string();
        let categories = match v.get("categories") {
            Some(Json::Obj(members)) => members
                .iter()
                .map(|(a, c)| {
                    c.as_str()
                        .map(|s| (a.clone(), s.to_string()))
                        .ok_or_else(|| err(format!("category of {a:?} is not a string")))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err(err("missing \"categories\" object")),
        };
        let measure = MeasureSpec::from_json(&v)?;
        let threshold = v.get("threshold").and_then(Json::as_f64).unwrap_or(0.5);
        let tuple_order = match v.get("tuple_order").and_then(Json::as_str) {
            Some("most-risky-first") => TupleOrder::MostRiskyFirst,
            Some("fifo") => TupleOrder::Fifo,
            _ => TupleOrder::LessSignificantFirst,
        };
        let granularity = match v.get("granularity").and_then(Json::as_str) {
            Some("one-tuple") => StepGranularity::OneTuplePerIteration,
            _ => StepGranularity::AllRiskyPerIteration,
        };
        let batch = match v.get("batch").and_then(Json::as_str) {
            None => None,
            Some("one-tuple") => Some(BatchStrategy::OneTuple),
            Some("per-class") => Some(BatchStrategy::PerClass),
            Some(s) => match s.strip_prefix("top-").and_then(|n| n.parse::<usize>().ok()) {
                Some(n) => Some(BatchStrategy::TopN(n)),
                None => return Err(err(format!("unknown batch strategy {s:?}"))),
            },
        };
        let risk_threads = v
            .get("risk_threads")
            .and_then(Json::as_f64)
            .map(|n| (n as usize).max(1))
            .unwrap_or(1);
        let semantics = match v.get("semantics").and_then(Json::as_str) {
            Some("standard") => NullSemantics::Standard,
            _ => NullSemantics::MaybeMatch,
        };
        let max_iterations = v
            .get("max_iterations")
            .and_then(Json::as_f64)
            .unwrap_or(10_000.0) as usize;
        let deadline = v
            .get("deadline_ms")
            .and_then(Json::as_f64)
            .map(|ms| Duration::from_millis(ms as u64));
        let sync = match v.get("sync").and_then(Json::as_str) {
            Some("on-snapshot") => SyncPolicy::OnSnapshot,
            Some("every-n") => {
                let n = v.get("sync_n").and_then(Json::as_f64).unwrap_or(8.0);
                SyncPolicy::EveryN(n as u32)
            }
            _ => SyncPolicy::EveryRecord,
        };
        let snapshot_every = v
            .get("snapshot_every")
            .and_then(Json::as_f64)
            .map(|n| n as u32);
        // Older manifests predate the storage field: absent means the
        // historical in-memory engine. An unknown name is an alien
        // manifest and must be refused, not guessed at.
        let storage = match v.get("storage").and_then(Json::as_str) {
            None => StorageEngine::Mem,
            Some(s) => StorageEngine::parse(s)
                .ok_or_else(|| err(format!("unknown storage engine {s:?}")))?,
        };
        Ok(JobSpec {
            name,
            csv,
            categories,
            measure,
            threshold,
            tuple_order,
            granularity,
            batch,
            risk_threads,
            semantics,
            max_iterations,
            deadline,
            sync,
            snapshot_every,
            storage,
            fault: ServerFault::default(),
        })
    }
}

// --- durable per-job files -------------------------------------------------

/// Write `contents` into `dir/name` atomically (temp + rename) and fsync
/// the directory, so a crash leaves either the old file or the new one —
/// never a torn hybrid, never a missing dirent.
pub fn write_file_durable(dir: &Path, name: &str, contents: &str) -> std::io::Result<()> {
    let tmp = dir.join(format!("{name}.tmp"));
    std::fs::write(&tmp, contents)?;
    let f = std::fs::File::open(&tmp)?;
    f.sync_all()?;
    std::fs::rename(&tmp, dir.join(name))?;
    fsync_dir(dir)
}

/// Summary persisted in a `done` marker — the numbers a client polls
/// for after the fact, without re-reading the journal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarkerSummary {
    /// Did the cycle converge (vs degrade)?
    pub converged: bool,
    /// Iterations performed.
    pub iterations: u64,
    /// Labelled nulls injected.
    pub nulls_injected: u64,
    /// Global recodings applied.
    pub recodings: u64,
    /// Tuples still above the threshold.
    pub final_risky: u64,
    /// Information loss of the released table.
    pub information_loss: f64,
}

/// The durable terminal-state marker: written atomically once a job
/// reaches a state fleet recovery must respect. `done`, `failed` and
/// `cancelled` are terminal; `interrupted` (checkpoint-and-stop
/// shutdown) marks a job recovery should resume.
#[derive(Debug, Clone, PartialEq)]
pub struct Marker {
    /// `done` / `failed` / `cancelled` / `interrupted`.
    pub state: String,
    /// Attempts consumed when the marker was written.
    pub attempts: u64,
    /// Structured error for `failed` markers.
    pub error: Option<String>,
    /// Outcome summary for `done` markers.
    pub summary: Option<MarkerSummary>,
}

impl Marker {
    /// Serialize to the `state.json` object.
    pub fn to_json(&self) -> String {
        let mut members: Vec<(String, Json)> = vec![
            ("state".into(), Json::Str(self.state.clone())),
            ("attempts".into(), Json::Num(self.attempts as f64)),
            (
                "error".into(),
                match &self.error {
                    Some(e) => Json::Str(e.clone()),
                    None => Json::Null,
                },
            ),
        ];
        members.push((
            "summary".into(),
            match &self.summary {
                Some(s) => Json::Obj(vec![
                    ("converged".into(), Json::Bool(s.converged)),
                    ("iterations".into(), Json::Num(s.iterations as f64)),
                    ("nulls_injected".into(), Json::Num(s.nulls_injected as f64)),
                    ("recodings".into(), Json::Num(s.recodings as f64)),
                    ("final_risky".into(), Json::Num(s.final_risky as f64)),
                    ("information_loss".into(), Json::Num(s.information_loss)),
                ]),
                None => Json::Null,
            },
        ));
        Json::Obj(members).to_string()
    }

    /// Parse a `state.json` object.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        let v = json::parse(text).map_err(|e| err(format!("marker json: {e}")))?;
        let state = v
            .get("state")
            .and_then(Json::as_str)
            .ok_or_else(|| err("marker missing \"state\""))?
            .to_string();
        let attempts = v.get("attempts").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        let error = v.get("error").and_then(Json::as_str).map(|s| s.to_string());
        let summary = v.get("summary").and_then(|s| match s {
            Json::Obj(_) => Some(MarkerSummary {
                converged: matches!(s.get("converged"), Some(Json::Bool(true))),
                iterations: s.get("iterations").and_then(Json::as_f64).unwrap_or(0.0) as u64,
                nulls_injected: s
                    .get("nulls_injected")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0) as u64,
                recodings: s.get("recodings").and_then(Json::as_f64).unwrap_or(0.0) as u64,
                final_risky: s.get("final_risky").and_then(Json::as_f64).unwrap_or(0.0) as u64,
                information_loss: s
                    .get("information_loss")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0),
            }),
            _ => None,
        });
        Ok(Marker {
            state,
            attempts,
            error,
            summary,
        })
    }

    /// Write this marker durably into `dir`.
    pub fn write(&self, dir: &Path) -> std::io::Result<()> {
        write_file_durable(dir, MARKER_FILE, &self.to_json())
    }

    /// Read the marker from `dir`, `Ok(None)` when absent.
    pub fn read(dir: &Path) -> Result<Option<Marker>, SpecError> {
        match std::fs::read_to_string(dir.join(MARKER_FILE)) {
            Ok(text) => Marker::from_json(&text).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(err(format!("reading marker: {e}"))),
        }
    }
}

/// Does a journal file exist in this job directory?
pub fn has_journal(dir: &Path) -> bool {
    dir.join(JOURNAL_FILE).is_file()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vadalog::Value;

    fn spec() -> JobSpec {
        let mut db = MicrodataDb::new("survey", ["Id", "Area", "Weight"]).unwrap();
        db.push_row(vec![Value::Int(1), Value::str("North"), Value::Int(9)])
            .unwrap();
        db.push_row(vec![Value::Int(2), Value::str("South"), Value::Int(2)])
            .unwrap();
        let mut dict = MetadataDictionary::new();
        for a in ["Id", "Area", "Weight"] {
            dict.register_attr("survey", a, "");
        }
        dict.set_category("survey", "Id", Category::Identifier)
            .unwrap();
        dict.set_category("survey", "Area", Category::QuasiIdentifier)
            .unwrap();
        dict.set_category("survey", "Weight", Category::Weight)
            .unwrap();
        JobSpec::new(&db, &dict, MeasureSpec::KAnonymity(2)).unwrap()
    }

    #[test]
    fn manifest_round_trips() {
        let mut s = spec();
        s.threshold = 0.25;
        s.tuple_order = TupleOrder::MostRiskyFirst;
        s.granularity = StepGranularity::OneTuplePerIteration;
        s.batch = Some(BatchStrategy::TopN(64));
        s.risk_threads = 4;
        s.semantics = NullSemantics::Standard;
        s.max_iterations = 77;
        s.deadline = Some(Duration::from_millis(1500));
        s.sync = SyncPolicy::EveryN(8);
        s.snapshot_every = None;
        s.storage = StorageEngine::File;
        s.fault = ServerFault::none().transient_appends(1);
        let text = s.to_manifest_json();
        let back = JobSpec::from_manifest_json(&text).unwrap();
        assert_eq!(back.name, s.name);
        assert_eq!(back.csv, s.csv);
        assert_eq!(back.categories, s.categories);
        assert_eq!(back.measure, s.measure);
        assert_eq!(back.threshold, s.threshold);
        assert_eq!(back.tuple_order, s.tuple_order);
        assert_eq!(back.granularity, s.granularity);
        assert_eq!(back.batch, s.batch);
        assert_eq!(back.risk_threads, s.risk_threads);
        assert_eq!(back.semantics, s.semantics);
        assert_eq!(back.max_iterations, s.max_iterations);
        assert_eq!(back.deadline, s.deadline);
        assert_eq!(back.sync, s.sync);
        assert_eq!(back.snapshot_every, s.snapshot_every);
        assert_eq!(back.storage, StorageEngine::File);
        // faults never persist
        assert!(!back.fault.is_armed());
    }

    #[test]
    fn storage_engine_defaults_and_refusals() {
        // a pre-storage manifest defaults to the in-memory engine
        let text = spec()
            .to_manifest_json()
            .replace(",\"storage\":\"mem\"", "");
        assert!(!text.contains("storage"));
        let back = JobSpec::from_manifest_json(&text).unwrap();
        assert_eq!(back.storage, StorageEngine::Mem);
        // an alien engine name is a structured refusal, not a guess
        let alien = spec()
            .to_manifest_json()
            .replace("\"storage\":\"mem\"", "\"storage\":\"cloudz\"");
        let e = JobSpec::from_manifest_json(&alien).unwrap_err();
        assert!(e.message.contains("unknown storage engine"), "{e}");
        // the cycle config carries the engine through
        let mut s = spec();
        s.storage = StorageEngine::File;
        assert_eq!(s.cycle_config().storage.engine, StorageEngine::File);
    }

    #[test]
    fn spec_rebuilds_table_and_dictionary() {
        let s = spec();
        let db = s.table().unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(s.row_count(), 2);
        let dict = s.dictionary().unwrap();
        assert_eq!(
            dict.quasi_identifiers("survey").unwrap(),
            vec!["Area".to_string()]
        );
        assert_eq!(dict.weight_attr("survey").unwrap(), "Weight");
    }

    #[test]
    fn from_csv_categorizes_automatically() {
        let s = JobSpec::from_csv(
            "survey",
            "id,area,weight\n1,North,9\n2,South,2\n",
            MeasureSpec::ReIdentification,
        )
        .unwrap();
        assert!(s
            .categories
            .iter()
            .any(|(a, c)| a == "id" && c == "identifier"));
        // un-categorizable attributes fail at admission time
        assert!(JobSpec::from_csv("weird", "zzxyqf\n?\n", MeasureSpec::ReIdentification).is_err());
    }

    #[test]
    fn marker_round_trips_and_reads_back() {
        let dir = std::env::temp_dir().join(format!("vadasa-marker-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(Marker::read(&dir).unwrap(), None);
        let m = Marker {
            state: "done".into(),
            attempts: 2,
            error: None,
            summary: Some(MarkerSummary {
                converged: true,
                iterations: 5,
                nulls_injected: 3,
                recodings: 0,
                final_risky: 0,
                information_loss: 0.25,
            }),
        };
        m.write(&dir).unwrap();
        assert_eq!(Marker::read(&dir).unwrap(), Some(m));
        let failed = Marker {
            state: "failed".into(),
            attempts: 4,
            error: Some("journal i/o failed".into()),
            summary: None,
        };
        failed.write(&dir).unwrap();
        assert_eq!(Marker::read(&dir).unwrap().unwrap().state, "failed");
        std::fs::remove_dir_all(&dir).ok();
    }
}
