//! Chaos suite for the supervised job server (ISSUE PR 7, satellite 3).
//!
//! The invariant under test: **whatever happens to the server — worker
//! panics, transient journal I/O faults, cooperative stops, or a
//! SIGKILL of the whole process at an arbitrary record boundary — every
//! job either converges to the byte-identical table an uninterrupted
//! run would have released, or carries a structured terminal error.**
//!
//! Three attack surfaces:
//! 1. a mixed batch with injected faults on a live in-process server,
//! 2. a deterministic truncation sweep over every journal frame
//!    boundary (the union of all possible crash points),
//! 3. a real `SIGKILL` of the `vadasa_server` binary mid-flight,
//!    followed by a restart that recovers the fleet.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use vadasa_core::cycle::{AnonymizationCycle, StepGranularity};
use vadasa_core::faults::ServerFault;
use vadasa_core::io::write_csv;
use vadasa_core::journal::record::frame_boundaries;
use vadasa_core::journal::JOURNAL_FILE;
use vadasa_core::prelude::LocalSuppression;
use vadasa_datagen::households::generate_households;
use vadasa_server::spec::{MANIFEST_FILE, RELEASED_FILE};
use vadasa_server::{
    JobServer, JobSpec, JobState, MeasureSpec, RetryPolicy, ServerConfig, ShutdownMode,
};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn fresh_root(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("vadasa-chaos-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn household_spec(households: usize, seed: u64, measure: MeasureSpec) -> JobSpec {
    let survey = generate_households(households, seed);
    JobSpec::new(&survey.db, &survey.dict, measure).expect("household spec")
}

/// The uninterrupted reference: run the same spec without a journal and
/// render the released table.
fn reference_csv(spec: &JobSpec) -> String {
    let db = spec.table().expect("table");
    let dict = spec.dictionary().expect("dict");
    let measure = spec.measure.build();
    let anonymizer = LocalSuppression::default();
    let cycle = AnonymizationCycle::new(measure.as_ref(), &anonymizer, spec.cycle_config());
    let outcome = cycle.run(&db, &dict).expect("reference run");
    write_csv(&outcome.db)
}

fn released_bytes(root: &Path, id: &str) -> String {
    std::fs::read_to_string(root.join(id).join(RELEASED_FILE)).expect("released.csv")
}

#[test]
fn mixed_batch_with_faults_converges_or_fails_structured() {
    let root = fresh_root("mixed");
    let mut cfg = ServerConfig::new(&root);
    cfg.workers = 3;
    cfg.retry = RetryPolicy {
        base: Duration::from_millis(5),
        jitter: 0.0,
        ..RetryPolicy::default()
    };
    let server = JobServer::start(cfg).expect("start");

    let healthy = [
        (
            "plain-k",
            household_spec(12, 11, MeasureSpec::KAnonymity(2)),
        ),
        (
            "plain-reid",
            household_spec(10, 22, MeasureSpec::ReIdentification),
        ),
        ("plain-suda", household_spec(8, 33, MeasureSpec::Suda(2))),
    ];
    let mut flaky = household_spec(10, 44, MeasureSpec::KAnonymity(3));
    flaky.fault = ServerFault::none().transient_appends(1);
    let mut boom = household_spec(6, 55, MeasureSpec::KAnonymity(2));
    boom.fault = ServerFault::none().panic_on_attempt(1);

    for (id, spec) in &healthy {
        server.submit(id, spec.clone()).expect("submit healthy");
    }
    server.submit("flaky", flaky.clone()).expect("submit flaky");
    server.submit("boom", boom).expect("submit boom");

    // The panicking job fails with a structured error; the supervisor
    // survives it.
    let report = server.wait("boom", Duration::from_secs(60)).expect("boom");
    assert_eq!(report.state, JobState::Failed);
    assert!(
        report.error.as_deref().is_some_and(|e| e.contains("panic")),
        "structured panic error, got {:?}",
        report.error
    );

    // Everything else converges bit-identically to its uninterrupted
    // reference — including the job that needed a retry.
    for (id, spec) in healthy.iter().chain([("flaky", flaky)].iter()) {
        let report = server.wait(id, Duration::from_secs(60)).expect("report");
        assert_eq!(
            report.state,
            JobState::Done,
            "{id}: error {:?}",
            report.error
        );
        assert_eq!(
            released_bytes(&root, id),
            reference_csv(spec),
            "{id}: released table differs from the uninterrupted reference"
        );
    }
    assert!(server.metrics().counter("server.retried") >= 1);
    assert_eq!(server.metrics().counter("server.failed"), 1);
    server.shutdown(ShutdownMode::Drain);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn truncation_sweep_every_frame_boundary_recovers_bit_identically() {
    // Produce a finished journaled run, then restart a server on a copy
    // truncated at *every* frame boundary — the union of all crash
    // points — and demand byte-identical convergence each time.
    let root = fresh_root("sweep-ref");
    let mut spec = household_spec(8, 66, MeasureSpec::KAnonymity(3));
    spec.granularity = StepGranularity::OneTuplePerIteration;
    spec.snapshot_every = Some(3);
    let server = JobServer::start(ServerConfig::new(&root)).expect("start");
    server.submit("sweep", spec.clone()).expect("submit");
    let report = server
        .wait("sweep", Duration::from_secs(60))
        .expect("sweep");
    assert_eq!(report.state, JobState::Done, "error: {:?}", report.error);
    let reference = released_bytes(&root, "sweep");
    assert_eq!(reference, reference_csv(&spec), "reference sanity");
    let journal = std::fs::read(root.join("sweep").join(JOURNAL_FILE)).expect("journal bytes");
    let manifest = spec.to_manifest_json();
    server.shutdown(ShutdownMode::Drain);

    let boundaries = frame_boundaries(&journal);
    assert!(
        boundaries.len() >= 6,
        "sweep needs a multi-record journal, got {} boundaries",
        boundaries.len()
    );
    // Also sweep a torn mid-frame point after each boundary, and the
    // full journal (restart after completion, before the marker).
    let mut cut_points: Vec<usize> = boundaries.clone();
    cut_points.extend(
        boundaries
            .iter()
            .map(|b| b + 7)
            .filter(|c| *c < journal.len()),
    );
    cut_points.push(journal.len());
    cut_points.sort_unstable();
    cut_points.dedup();
    for cut in cut_points {
        let crash_root = fresh_root("sweep-cut");
        let dir = crash_root.join("sweep");
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join(MANIFEST_FILE), &manifest).expect("manifest");
        std::fs::write(dir.join(JOURNAL_FILE), &journal[..cut]).expect("truncated journal");
        let server = JobServer::start(ServerConfig::new(&crash_root)).expect("restart");
        assert_eq!(server.metrics().counter("server.recovered"), 1);
        let report = server
            .wait("sweep", Duration::from_secs(60))
            .expect("sweep");
        assert_eq!(
            report.state,
            JobState::Done,
            "cut at {cut}: error {:?}",
            report.error
        );
        assert_eq!(
            released_bytes(&crash_root, "sweep"),
            reference,
            "cut at {cut}: resumed run is not bit-identical"
        );
        server.shutdown(ShutdownMode::Drain);
        std::fs::remove_dir_all(&crash_root).ok();
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn sigkill_of_the_whole_server_process_recovers_every_job() {
    use std::io::{BufRead, BufReader, Write};
    use std::process::{Command, Stdio};

    let root = fresh_root("kill");
    let mut child = Command::new(env!("CARGO_BIN_EXE_vadasa_server"))
        .args([
            "--jobs-root",
            root.to_str().expect("utf8 root"),
            "--workers",
            "1",
            "--stdin",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn vadasa_server");
    let mut stdin = child.stdin.take().expect("stdin");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout"));

    // Slow one-tuple jobs on one worker: at kill time at least the later
    // jobs are queued or mid-journal.
    let specs: Vec<(String, JobSpec)> = (0..3)
        .map(|i| {
            let mut spec = household_spec(14, 100 + i, MeasureSpec::KAnonymity(4));
            spec.granularity = StepGranularity::OneTuplePerIteration;
            spec.snapshot_every = Some(4);
            (format!("kill-{i}"), spec)
        })
        .collect();
    for (id, spec) in &specs {
        use vadasa_core::obs::json::Json;
        let line = Json::Obj(vec![
            ("cmd".into(), Json::Str("submit".into())),
            ("id".into(), Json::Str(id.clone())),
            ("name".into(), Json::Str(spec.name.clone())),
            ("csv".into(), Json::Str(spec.csv.clone())),
            (
                "categories".into(),
                Json::Obj(
                    spec.categories
                        .iter()
                        .map(|(a, c)| (a.clone(), Json::Str(c.clone())))
                        .collect(),
                ),
            ),
            ("measure".into(), Json::Str("k-anonymity".into())),
            ("k".into(), Json::Num(4.0)),
            ("granularity".into(), Json::Str("one-tuple".into())),
            ("snapshot_every".into(), Json::Num(4.0)),
        ])
        .to_string();
        writeln!(stdin, "{line}").expect("write submit");
        stdin.flush().expect("flush");
        let mut response = String::new();
        stdout.read_line(&mut response).expect("read response");
        assert!(
            response.contains("\"ok\":true"),
            "submit {id} rejected: {response}"
        );
    }
    // Manifests are durable once submit acked. Let the worker get into
    // the first journal, then kill the whole process without ceremony.
    std::thread::sleep(Duration::from_millis(120));
    child.kill().expect("SIGKILL");
    let _ = child.wait();

    // Restart in-process over the same root: the fleet recovers and
    // every job converges to the table an uninterrupted run releases.
    let server = JobServer::start(ServerConfig::new(&root)).expect("restart");
    for (id, spec) in &specs {
        let report = server.wait(id, Duration::from_secs(120)).expect("report");
        assert_eq!(
            report.state,
            JobState::Done,
            "{id}: error {:?}",
            report.error
        );
        // Reference recomputed from the *on-disk manifest*, exactly what
        // a fresh operator would see.
        let manifest = std::fs::read_to_string(root.join(id).join(MANIFEST_FILE))
            .expect("manifest survives the kill");
        let from_disk = JobSpec::from_manifest_json(&manifest).expect("parse manifest");
        assert_eq!(from_disk.csv, spec.csv, "{id}: manifest csv round-trip");
        assert_eq!(
            released_bytes(&root, id),
            reference_csv(&from_disk),
            "{id}: post-kill result differs from the uninterrupted reference"
        );
    }
    server.shutdown(ShutdownMode::Drain);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn stop_shutdown_journals_survive_a_second_stop_and_still_converge() {
    // Repeatedly checkpoint-and-stop a slow job; each restart resumes
    // the same journal. The final table must still match the
    // uninterrupted reference.
    let root = fresh_root("stopstop");
    let mut spec = household_spec(10, 77, MeasureSpec::KAnonymity(3));
    spec.granularity = StepGranularity::OneTuplePerIteration;
    spec.snapshot_every = Some(2);
    let reference = reference_csv(&spec);

    let mut cfg = ServerConfig::new(&root);
    cfg.workers = 1;
    let server = JobServer::start(cfg).expect("start");
    let mut slow = spec.clone();
    slow.fault = ServerFault::none().delay_start(Duration::from_millis(80));
    server.submit("phoenix", slow).expect("submit");
    std::thread::sleep(Duration::from_millis(30));
    server.shutdown(ShutdownMode::Stop);

    for _ in 0..2 {
        let mut cfg = ServerConfig::new(&root);
        cfg.workers = 1;
        let server = JobServer::start(cfg).expect("restart");
        std::thread::sleep(Duration::from_millis(20));
        server.shutdown(ShutdownMode::Stop);
    }

    let server = JobServer::start(ServerConfig::new(&root)).expect("final restart");
    let report = server
        .wait("phoenix", Duration::from_secs(60))
        .expect("phoenix");
    assert_eq!(report.state, JobState::Done, "error: {:?}", report.error);
    assert_eq!(released_bytes(&root, "phoenix"), reference);
    server.shutdown(ShutdownMode::Drain);
    std::fs::remove_dir_all(&root).ok();
}
