//! Abstract syntax for Vadalog-style programs.
//!
//! The fragment implemented here is the one the Vada-SA paper's nine
//! algorithm listings need: Datalog with existential quantification in rule
//! heads (Datalog±), stratified negation, monotonic aggregation with
//! explicit contributors, equality-generating dependencies (EGDs), and an
//! expression language (arithmetic, comparisons, `case … then … else`, set
//! indexing and membership).

use crate::value::Value;
use std::collections::BTreeSet;
use std::fmt;

/// A term in an atom: either a ground constant or a variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// Ground constant.
    Const(Value),
    /// Named variable (conventionally capitalized).
    Var(String),
}

impl Term {
    /// Variable name, if this term is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(v) => write!(f, "{v}"),
            Term::Var(v) => write!(f, "{v}"),
        }
    }
}

/// A predicate applied to terms, e.g. `cat(M, A, C)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Predicate name.
    pub pred: String,
    /// Argument terms.
    pub args: Vec<Term>,
}

impl Atom {
    /// Build an atom from a predicate name and terms.
    pub fn new(pred: impl Into<String>, args: Vec<Term>) -> Self {
        Atom {
            pred: pred.into(),
            args,
        }
    }

    /// All variable names occurring in the atom.
    pub fn vars(&self) -> impl Iterator<Item = &str> {
        self.args.iter().filter_map(|t| t.as_var())
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// Binary operators of the expression language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // arithmetic / comparison operators are self-describing
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    /// Set / tuple membership: `X in S`.
    In,
    /// Strict subset test between set values: `A subset B`.
    Subset,
    /// Set union of two set values.
    Union,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Boolean negation.
    Not,
}

/// Expressions evaluated against a variable binding.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A ground constant.
    Const(Value),
    /// A variable reference.
    Var(String),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// `case COND then A else B` — three-way conditional.
    Case {
        /// Condition expression (must evaluate to a boolean).
        cond: Box<Expr>,
        /// Value when the condition holds.
        then: Box<Expr>,
        /// Value otherwise.
        otherwise: Box<Expr>,
    },
    /// Indexing into a set of pairs: `VSet[K]` retrieves the value paired
    /// with key `K`; with a set-valued key it retrieves the set of pairs
    /// whose keys belong to the key set (the paper's `VSet[AnonSet]`).
    Index(Box<Expr>, Box<Expr>),
    /// Built-in function call, e.g. `size(S)`, `pair(A, B)`, `first(P)`.
    Call(String, Vec<Expr>),
}

impl Expr {
    /// Convenience: constant expression.
    pub fn val(v: impl Into<Value>) -> Self {
        Expr::Const(v.into())
    }

    /// Convenience: variable expression.
    pub fn var(name: impl Into<String>) -> Self {
        Expr::Var(name.into())
    }

    /// Collect variable names referenced by this expression.
    pub fn collect_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(v) => {
                out.insert(v.clone());
            }
            Expr::Binary(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Unary(_, a) => a.collect_vars(out),
            Expr::Case {
                cond,
                then,
                otherwise,
            } => {
                cond.collect_vars(out);
                then.collect_vars(out);
                otherwise.collect_vars(out);
            }
            Expr::Index(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
        }
    }
}

/// Monotonic aggregation functions (paper §3, §4.3).
///
/// Per the monotonic-aggregation semantics of Vadalog, multiple
/// contributions from the *same contributor* within a group collapse to the
/// extremal one, so replacing a tuple with a "more anonymous version" (same
/// contributor id) updates the aggregate instead of double counting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Monotonic sum.
    MSum,
    /// Monotonic count of distinct contributors.
    MCount,
    /// Monotonic product.
    MProd,
    /// Monotonic minimum.
    MMin,
    /// Monotonic maximum.
    MMax,
    /// Monotonic union: collects values into a set.
    MUnion,
}

impl AggFunc {
    /// Parse an aggregate name.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "msum" => AggFunc::MSum,
            "mcount" => AggFunc::MCount,
            "mprod" => AggFunc::MProd,
            "mmin" => AggFunc::MMin,
            "mmax" => AggFunc::MMax,
            "munion" => AggFunc::MUnion,
            _ => return None,
        })
    }

    /// Canonical textual name.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::MSum => "msum",
            AggFunc::MCount => "mcount",
            AggFunc::MProd => "mprod",
            AggFunc::MMin => "mmin",
            AggFunc::MMax => "mmax",
            AggFunc::MUnion => "munion",
        }
    }
}

/// A single body literal.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Positive atom to be joined.
    Pos(Atom),
    /// Negated atom (`not p(X)`); stratified semantics.
    Neg(Atom),
    /// Boolean condition over bound variables, e.g. `R > T`.
    Cond(Expr),
    /// Assignment `X = expr` binding a fresh variable.
    Let {
        /// Variable being bound.
        var: String,
        /// Expression computed from previously bound variables.
        expr: Expr,
    },
    /// Monotonic aggregation `X = f(expr, <contributors>)`.
    Agg {
        /// Variable receiving the aggregate result.
        var: String,
        /// Aggregation function.
        func: AggFunc,
        /// Contribution expression.
        arg: Expr,
        /// Contributor expressions (`⟨I⟩` in the paper).
        contributors: Vec<Expr>,
    },
}

impl Literal {
    /// Variables *required* to be bound before this literal can evaluate
    /// (for safety checking).
    pub fn required_vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        match self {
            Literal::Pos(_) => {}
            Literal::Neg(a) => {
                for v in a.vars() {
                    out.insert(v.to_string());
                }
            }
            Literal::Cond(e) => e.collect_vars(&mut out),
            Literal::Let { expr, .. } => expr.collect_vars(&mut out),
            Literal::Agg {
                arg, contributors, ..
            } => {
                arg.collect_vars(&mut out);
                for c in contributors {
                    c.collect_vars(&mut out);
                }
            }
        }
        out
    }

    /// Variables newly bound by this literal.
    pub fn bound_vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        match self {
            Literal::Pos(a) => {
                for v in a.vars() {
                    out.insert(v.to_string());
                }
            }
            Literal::Neg(_) | Literal::Cond(_) => {}
            Literal::Let { var, .. } | Literal::Agg { var, .. } => {
                out.insert(var.clone());
            }
        }
        out
    }
}

/// Rule head: ordinary atoms (TGD) or a term equation (EGD).
#[derive(Debug, Clone, PartialEq)]
pub enum Head {
    /// One or more head atoms derived together.
    Atoms(Vec<Atom>),
    /// Equality-generating dependency `t1 = t2`.
    Equality(Term, Term),
}

/// A rule: `head :- body.`
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Head of the rule.
    pub head: Head,
    /// Ordered body literals.
    pub body: Vec<Literal>,
    /// Optional label for diagnostics / provenance.
    pub label: Option<String>,
}

impl Rule {
    /// Head variables that never occur bound in the body: these are the
    /// existentially quantified variables (`∃Z` in the paper listings).
    pub fn existential_vars(&self) -> BTreeSet<String> {
        let mut body_vars: BTreeSet<String> = BTreeSet::new();
        for lit in &self.body {
            body_vars.extend(lit.bound_vars());
        }
        let mut out = BTreeSet::new();
        if let Head::Atoms(atoms) = &self.head {
            for a in atoms {
                for v in a.vars() {
                    if !body_vars.contains(v) {
                        out.insert(v.to_string());
                    }
                }
            }
        }
        out
    }

    /// Head predicates (empty for EGDs).
    pub fn head_preds(&self) -> Vec<&str> {
        match &self.head {
            Head::Atoms(atoms) => atoms.iter().map(|a| a.pred.as_str()).collect(),
            Head::Equality(_, _) => vec![],
        }
    }

    /// Body predicates with the polarity of their occurrence.
    /// The boolean is `true` for positive occurrences.
    pub fn body_preds(&self) -> Vec<(&str, bool)> {
        self.body
            .iter()
            .filter_map(|l| match l {
                Literal::Pos(a) => Some((a.pred.as_str(), true)),
                Literal::Neg(a) => Some((a.pred.as_str(), false)),
                _ => None,
            })
            .collect()
    }

    /// Does this rule contain an aggregation literal?
    pub fn has_aggregate(&self) -> bool {
        self.body.iter().any(|l| matches!(l, Literal::Agg { .. }))
    }
}

/// A fact: predicate plus ground values.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fact {
    /// Predicate name.
    pub pred: String,
    /// Ground argument values.
    pub args: Vec<Value>,
}

impl Fact {
    /// Build a fact.
    pub fn new(pred: impl Into<String>, args: Vec<Value>) -> Self {
        Fact {
            pred: pred.into(),
            args,
        }
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// A parsed program: rules plus inline facts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// All rules (TGDs and EGDs) in source order.
    pub rules: Vec<Rule>,
    /// Ground facts stated inline in the program text.
    pub facts: Vec<Fact>,
}

impl Program {
    /// Create an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merge another program into this one.
    pub fn extend(&mut self, other: Program) {
        self.rules.extend(other.rules);
        self.facts.extend(other.facts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(p: &str, vars: &[&str]) -> Atom {
        Atom::new(p, vars.iter().map(|v| Term::Var(v.to_string())).collect())
    }

    #[test]
    fn existential_detection() {
        // comb(Z, I) :- tuple(M, I, V).   — Z is existential
        let rule = Rule {
            head: Head::Atoms(vec![atom("comb", &["Z", "I"])]),
            body: vec![Literal::Pos(atom("tuple", &["M", "I", "V"]))],
            label: None,
        };
        let ex = rule.existential_vars();
        assert!(ex.contains("Z"));
        assert!(!ex.contains("I"));
    }

    #[test]
    fn let_binds_head_var_so_not_existential() {
        let rule = Rule {
            head: Head::Atoms(vec![atom("out", &["R"])]),
            body: vec![
                Literal::Pos(atom("t", &["X"])),
                Literal::Let {
                    var: "R".into(),
                    expr: Expr::var("X"),
                },
            ],
            label: None,
        };
        assert!(rule.existential_vars().is_empty());
    }

    #[test]
    fn body_preds_polarity() {
        let rule = Rule {
            head: Head::Atoms(vec![atom("h", &["X"])]),
            body: vec![
                Literal::Pos(atom("p", &["X"])),
                Literal::Neg(atom("q", &["X"])),
            ],
            label: None,
        };
        assert_eq!(rule.body_preds(), vec![("p", true), ("q", false)]);
    }

    #[test]
    fn aggregate_literal_reports_vars() {
        let lit = Literal::Agg {
            var: "R".into(),
            func: AggFunc::MSum,
            arg: Expr::var("W"),
            contributors: vec![Expr::var("I")],
        };
        assert!(lit.required_vars().contains("W"));
        assert!(lit.required_vars().contains("I"));
        assert!(lit.bound_vars().contains("R"));
    }

    #[test]
    fn agg_func_roundtrip() {
        for f in [
            AggFunc::MSum,
            AggFunc::MCount,
            AggFunc::MProd,
            AggFunc::MMin,
            AggFunc::MMax,
            AggFunc::MUnion,
        ] {
            assert_eq!(AggFunc::from_name(f.name()), Some(f));
        }
        assert_eq!(AggFunc::from_name("sum"), None);
    }
}
