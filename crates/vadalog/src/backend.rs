//! Pluggable storage backends for durable engine state.
//!
//! Everything the engine keeps in RAM — EDB relations, saturated
//! databases, interned strings, prebuilt hash indexes — can be frozen
//! into named *artifacts* and reopened later through one trait,
//! [`StorageBackend`]. The interface shape follows cozo's engine switch
//! (`open_db(engine, path)`): one [`open`] entry point, several engines,
//! zero behavioral drift between them. Two backends ship:
//!
//! - [`MemBackend`] — the default. Artifacts live in a process-local
//!   map; nothing survives the process. This is the existing in-memory
//!   behaviour, made explicit.
//! - [`FileBackend`] — one file per artifact under a directory, written
//!   atomically (`<name>.vart.tmp` → fsync → rename → directory fsync),
//!   so a crash mid-write leaves either the old artifact or none, never
//!   a torn one.
//!
//! ## Artifact framing (corruption is an error, never a panic)
//!
//! Every artifact is framed like the action journal and the `VADASAS2`
//! snapshots:
//!
//! ```text
//! [magic "VADASAW1"] [format version: u32 LE] [fingerprint: u64 LE]
//! [payload length: u32 LE] [CRC-32 (IEEE) of payload: u32 LE] [payload]
//! ```
//!
//! [`decode_artifact`] is **total**: truncation, bit flips, alien magic,
//! future versions and fingerprint mismatches all decode to a structured
//! [`StorageError`], never a panic. Persisted artifacts are strictly
//! *caches* — every consumer has a documented cold path that rebuilds
//! the same state from primary inputs, so any load failure degrades to
//! a cold start with identical results (the fallback-soundness argument
//! of DESIGN.md §15).
//!
//! File I/O goes through the [`ArtifactIo`] trait so the fault harness
//! (`vadasa-core`'s `faults::StorageFault`) can inject torn writes, full
//! disks, corrupt pages and reopen denials without touching a real
//! disk's error paths.

use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// File magic identifying a Vada-SA storage artifact, framing version 1.
pub const ARTIFACT_MAGIC: &[u8; 8] = b"VADASAW1";

/// Extension of artifact files inside a [`FileBackend`] directory.
pub const ARTIFACT_EXT: &str = "vart";

/// Which storage engine backs an artifact store. The interface shape is
/// cozo's `open_db(engine, path)`: callers pick an engine by name and
/// get the same [`StorageBackend`] contract regardless.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageEngine {
    /// Process-local, non-durable (the historical behaviour).
    #[default]
    Mem,
    /// File-per-artifact under a directory, atomically replaced.
    File,
}

impl StorageEngine {
    /// Canonical lower-case name (`"mem"` / `"file"`), used by manifests
    /// and the NDJSON protocol.
    pub fn as_str(&self) -> &'static str {
        match self {
            StorageEngine::Mem => "mem",
            StorageEngine::File => "file",
        }
    }

    /// Parse a canonical engine name. Unknown names return `None` so
    /// callers can refuse alien manifests with a structured error.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "mem" => Some(StorageEngine::Mem),
            "file" => Some(StorageEngine::File),
            _ => None,
        }
    }
}

impl fmt::Display for StorageEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Why a storage operation failed. Every variant is a *structured*
/// outcome: the storage layer never panics on hostile bytes, and every
/// error maps to a documented cold fallback at the call site.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying I/O operation failed (write, sync, rename, read).
    Io {
        /// What the backend was doing.
        context: String,
        /// The OS error.
        source: io::Error,
    },
    /// The artifact does not start with [`ARTIFACT_MAGIC`] — an alien or
    /// empty file.
    BadMagic {
        /// Artifact name.
        artifact: String,
    },
    /// The artifact was written by a newer format than this build reads.
    FutureVersion {
        /// Artifact name.
        artifact: String,
        /// Version found in the header.
        found: u32,
        /// Highest version this build supports.
        supported: u32,
    },
    /// Framing or payload decoding failed (truncation, checksum
    /// mismatch, bad tag, …).
    Corrupt {
        /// Artifact name.
        artifact: String,
        /// Human-readable reason.
        reason: String,
    },
    /// The artifact belongs to different inputs than the caller's
    /// (program / table / config fingerprint mismatch).
    Fingerprint {
        /// Artifact name.
        artifact: String,
        /// Fingerprint the caller expected.
        expected: u64,
        /// Fingerprint found in the header.
        found: u64,
    },
    /// The artifact does not exist in the backend.
    Missing {
        /// Artifact name.
        artifact: String,
    },
    /// The state cannot be persisted (e.g. a session that has not
    /// reached a fixpoint is not a sound warm seed).
    NotPersistable {
        /// Why.
        reason: String,
    },
    /// Backend-level misuse or mismatch (invalid artifact name, engine /
    /// on-disk mismatch, unstratifiable restored program, …).
    Backend {
        /// Why.
        reason: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { context, source } => write!(f, "storage i/o: {context}: {source}"),
            StorageError::BadMagic { artifact } => {
                write!(f, "artifact '{artifact}': not a Vada-SA storage artifact")
            }
            StorageError::FutureVersion {
                artifact,
                found,
                supported,
            } => write!(
                f,
                "artifact '{artifact}': format version {found} is newer than supported {supported}"
            ),
            StorageError::Corrupt { artifact, reason } => {
                write!(f, "artifact '{artifact}' is corrupt: {reason}")
            }
            StorageError::Fingerprint {
                artifact,
                expected,
                found,
            } => write!(
                f,
                "artifact '{artifact}' belongs to different inputs (fingerprint {found:#018x}, expected {expected:#018x})"
            ),
            StorageError::Missing { artifact } => write!(f, "artifact '{artifact}' not found"),
            StorageError::NotPersistable { reason } => write!(f, "state not persistable: {reason}"),
            StorageError::Backend { reason } => write!(f, "storage backend: {reason}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl StorageError {
    /// Convenience constructor for [`StorageError::Io`].
    pub fn io(context: impl Into<String>, source: io::Error) -> Self {
        StorageError::Io {
            context: context.into(),
            source,
        }
    }
}

/// The byte-level file operations a [`FileBackend`] performs, abstracted
/// so fault plans can fail them deterministically. `write` must create
/// (truncating) the file, write all bytes and fsync; a *torn* write is
/// modelled by persisting a prefix and then erroring — exactly what a
/// crashing kernel produces.
pub trait ArtifactIo: Send + Sync {
    /// Write `bytes` to `path` durably (create + write_all + fsync).
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Read the whole file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
}

/// The production [`ArtifactIo`]: plain `std::fs` with an fsync.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealArtifactIo;

impl ArtifactIo for RealArtifactIo {
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut f = File::open(path)?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        Ok(buf)
    }
}

/// A named-artifact store: the one contract every engine implements.
///
/// `put` is atomic per artifact — concurrent readers (and crashes) see
/// either the previous artifact or the new one, never a mix. Artifact
/// names are flat identifiers (`[A-Za-z0-9._-]`, no path separators);
/// backends refuse anything else with [`StorageError::Backend`].
pub trait StorageBackend: Send {
    /// Which engine this backend is.
    fn engine(&self) -> StorageEngine;
    /// Directory backing the store, when there is one.
    fn location(&self) -> Option<&Path>;
    /// Atomically store `bytes` under `name`, replacing any previous
    /// artifact of that name.
    fn put(&mut self, name: &str, bytes: &[u8]) -> Result<(), StorageError>;
    /// Fetch the artifact `name`, `None` if absent.
    fn get(&self, name: &str) -> Result<Option<Vec<u8>>, StorageError>;
    /// Remove the artifact `name`; `true` if it existed.
    fn delete(&mut self, name: &str) -> Result<bool, StorageError>;
    /// All artifact names, sorted.
    fn list(&self) -> Result<Vec<String>, StorageError>;
}

/// Open a backend the cozo way: pick an engine, point it at a path.
/// [`StorageEngine::Mem`] ignores `path`; [`StorageEngine::File`]
/// requires one (the directory is created if missing).
pub fn open(
    engine: StorageEngine,
    path: Option<&Path>,
) -> Result<Box<dyn StorageBackend>, StorageError> {
    match engine {
        StorageEngine::Mem => Ok(Box::new(MemBackend::new())),
        StorageEngine::File => {
            let dir = path.ok_or_else(|| StorageError::Backend {
                reason: "the file engine requires a directory path".into(),
            })?;
            Ok(Box::new(FileBackend::create(dir)?))
        }
    }
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
        && !name.starts_with('.')
}

fn check_name(name: &str) -> Result<(), StorageError> {
    if valid_name(name) {
        Ok(())
    } else {
        Err(StorageError::Backend {
            reason: format!("invalid artifact name '{name}'"),
        })
    }
}

/// The in-memory engine: a sorted map of artifacts. Non-durable by
/// design — it exists so callers can program against [`StorageBackend`]
/// unconditionally and switch engines without code changes.
#[derive(Debug, Default)]
pub struct MemBackend {
    blobs: BTreeMap<String, Vec<u8>>,
}

impl MemBackend {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StorageBackend for MemBackend {
    fn engine(&self) -> StorageEngine {
        StorageEngine::Mem
    }

    fn location(&self) -> Option<&Path> {
        None
    }

    fn put(&mut self, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
        check_name(name)?;
        self.blobs.insert(name.to_string(), bytes.to_vec());
        Ok(())
    }

    fn get(&self, name: &str) -> Result<Option<Vec<u8>>, StorageError> {
        check_name(name)?;
        Ok(self.blobs.get(name).cloned())
    }

    fn delete(&mut self, name: &str) -> Result<bool, StorageError> {
        check_name(name)?;
        Ok(self.blobs.remove(name).is_some())
    }

    fn list(&self) -> Result<Vec<String>, StorageError> {
        Ok(self.blobs.keys().cloned().collect())
    }
}

/// The file engine: `<dir>/<name>.vart`, atomically replaced via
/// `<name>.vart.tmp` + rename + directory fsync.
pub struct FileBackend {
    dir: PathBuf,
    io: Arc<dyn ArtifactIo>,
}

impl fmt::Debug for FileBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FileBackend")
            .field("dir", &self.dir)
            .finish_non_exhaustive()
    }
}

impl FileBackend {
    /// Open (creating if missing) the artifact directory with real I/O.
    pub fn create(dir: impl Into<PathBuf>) -> Result<Self, StorageError> {
        Self::with_io(dir, Arc::new(RealArtifactIo))
    }

    /// Open with an injected [`ArtifactIo`] (the fault harness).
    pub fn with_io(dir: impl Into<PathBuf>, io: Arc<dyn ArtifactIo>) -> Result<Self, StorageError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| StorageError::io(format!("create dir {}", dir.display()), e))?;
        Ok(FileBackend { dir, io })
    }

    fn path_of(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.{ARTIFACT_EXT}"))
    }

    fn fsync_dir(&self) -> io::Result<()> {
        File::open(&self.dir)?.sync_all()
    }
}

impl StorageBackend for FileBackend {
    fn engine(&self) -> StorageEngine {
        StorageEngine::File
    }

    fn location(&self) -> Option<&Path> {
        Some(&self.dir)
    }

    fn put(&mut self, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
        check_name(name)?;
        let tmp = self.dir.join(format!("{name}.{ARTIFACT_EXT}.tmp"));
        let path = self.path_of(name);
        if let Err(e) = self.io.write(&tmp, bytes) {
            // best effort: don't leave a torn temp file behind
            std::fs::remove_file(&tmp).ok();
            return Err(StorageError::io(format!("write {}", tmp.display()), e));
        }
        std::fs::rename(&tmp, &path).map_err(|e| {
            std::fs::remove_file(&tmp).ok();
            StorageError::io(format!("rename into {}", path.display()), e)
        })?;
        // Make the rename durable: file-content fsyncs alone do not
        // guarantee the dirent survives a crash.
        self.fsync_dir()
            .map_err(|e| StorageError::io(format!("fsync dir {}", self.dir.display()), e))?;
        Ok(())
    }

    fn get(&self, name: &str) -> Result<Option<Vec<u8>>, StorageError> {
        check_name(name)?;
        let path = self.path_of(name);
        match self.io.read(&path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(StorageError::io(format!("read {}", path.display()), e)),
        }
    }

    fn delete(&mut self, name: &str) -> Result<bool, StorageError> {
        check_name(name)?;
        match std::fs::remove_file(self.path_of(name)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(StorageError::io(format!("delete artifact '{name}'"), e)),
        }
    }

    fn list(&self) -> Result<Vec<String>, StorageError> {
        let mut out = Vec::new();
        let entries = std::fs::read_dir(&self.dir)
            .map_err(|e| StorageError::io(format!("list {}", self.dir.display()), e))?;
        for entry in entries {
            let entry = entry.map_err(|e| StorageError::io("read dir entry", e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(stem) = name.strip_suffix(&format!(".{ARTIFACT_EXT}")) {
                if valid_name(stem) {
                    out.push(stem.to_string());
                }
            }
        }
        out.sort();
        Ok(out)
    }
}

// --- CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) ---

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes`, as used by the artifact frame headers.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// FNV-1a over `bytes` — the fingerprint hash tying artifacts to the
/// inputs they were derived from.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Frame `payload` as one artifact: magic, version, fingerprint, length,
/// CRC, payload.
pub fn encode_artifact(version: u32, fingerprint: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 28);
    out.extend_from_slice(ARTIFACT_MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validate and unframe one artifact. Total: every malformation —
/// truncation, alien magic, future version, checksum mismatch, trailing
/// garbage, fingerprint mismatch — returns a structured
/// [`StorageError`], never a panic.
///
/// `expected_fingerprint = None` skips the fingerprint check (callers
/// that want to *inspect* an artifact, e.g. status tooling). The header
/// fingerprint is returned alongside the version and payload either way.
pub fn decode_artifact(
    artifact: &str,
    supported_version: u32,
    expected_fingerprint: Option<u64>,
    bytes: &[u8],
) -> Result<(u32, u64, Vec<u8>), StorageError> {
    let corrupt = |reason: &str| StorageError::Corrupt {
        artifact: artifact.to_string(),
        reason: reason.to_string(),
    };
    if bytes.len() < ARTIFACT_MAGIC.len() || &bytes[..ARTIFACT_MAGIC.len()] != ARTIFACT_MAGIC {
        return Err(StorageError::BadMagic {
            artifact: artifact.to_string(),
        });
    }
    let rest = &bytes[ARTIFACT_MAGIC.len()..];
    if rest.len() < 20 {
        return Err(corrupt("header truncated"));
    }
    let version = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
    if version > supported_version {
        return Err(StorageError::FutureVersion {
            artifact: artifact.to_string(),
            found: version,
            supported: supported_version,
        });
    }
    let fingerprint = u64::from_le_bytes([
        rest[4], rest[5], rest[6], rest[7], rest[8], rest[9], rest[10], rest[11],
    ]);
    let len = u32::from_le_bytes([rest[12], rest[13], rest[14], rest[15]]) as usize;
    let crc = u32::from_le_bytes([rest[16], rest[17], rest[18], rest[19]]);
    let payload = &rest[20..];
    if payload.len() < len {
        return Err(corrupt("payload truncated"));
    }
    if payload.len() > len {
        return Err(corrupt("trailing bytes after payload"));
    }
    if crc32(payload) != crc {
        return Err(corrupt("checksum mismatch"));
    }
    if let Some(expected) = expected_fingerprint {
        if expected != fingerprint {
            return Err(StorageError::Fingerprint {
                artifact: artifact.to_string(),
                expected,
                found: fingerprint,
            });
        }
    }
    Ok((version, fingerprint, payload.to_vec()))
}

/// Bounds-checked binary wire codec shared by every artifact payload:
/// little-endian integers, length-prefixed strings, tagged [`Value`]s
/// (the journal's value encoding). Reading is total — out-of-range
/// lengths and unknown tags come back as `Err(String)` for the caller
/// to wrap into [`StorageError::Corrupt`].
pub mod wire {
    use super::Value;
    use std::sync::Arc;

    /// Append a `u32` (little-endian).
    pub fn put_u32(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64` (little-endian).
    pub fn put_u64(out: &mut Vec<u8>, v: u64) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(out: &mut Vec<u8>, s: &str) {
        put_u32(out, s.len() as u32);
        out.extend_from_slice(s.as_bytes());
    }

    /// Append one tagged [`Value`].
    pub fn put_value(out: &mut Vec<u8>, v: &Value) {
        match v {
            Value::Bool(b) => {
                out.push(0);
                out.push(u8::from(*b));
            }
            Value::Int(i) => {
                out.push(1);
                put_u64(out, *i as u64);
            }
            Value::Float(f) => {
                out.push(2);
                put_u64(out, f.to_bits());
            }
            Value::Str(s) => {
                out.push(3);
                put_str(out, s);
            }
            Value::Null(n) => {
                out.push(4);
                put_u64(out, *n);
            }
            Value::Set(items) => {
                out.push(5);
                put_u32(out, items.len() as u32);
                for item in items.iter() {
                    put_value(out, item);
                }
            }
            Value::Tuple(items) => {
                out.push(6);
                put_u32(out, items.len() as u32);
                for item in items.iter() {
                    put_value(out, item);
                }
            }
        }
    }

    /// A bounds-checked cursor over a payload.
    pub struct Reader<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        /// Start reading at the front of `bytes`.
        pub fn new(bytes: &'a [u8]) -> Self {
            Reader { bytes, pos: 0 }
        }

        /// Take `n` raw bytes.
        pub fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
            let end = self.pos.checked_add(n).ok_or("length overflow")?;
            if end > self.bytes.len() {
                return Err(format!("truncated: wanted {n} bytes at {}", self.pos));
            }
            let s = &self.bytes[self.pos..end];
            self.pos = end;
            Ok(s)
        }

        /// One byte.
        pub fn u8(&mut self) -> Result<u8, String> {
            Ok(self.take(1)?[0])
        }

        /// Little-endian `u32`.
        pub fn u32(&mut self) -> Result<u32, String> {
            let b = self.take(4)?;
            Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        }

        /// Little-endian `u64`.
        pub fn u64(&mut self) -> Result<u64, String> {
            let b = self.take(8)?;
            Ok(u64::from_le_bytes([
                b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
            ]))
        }

        /// Length-prefixed UTF-8 string.
        pub fn string(&mut self) -> Result<String, String> {
            let len = self.u32()? as usize;
            let bytes = self.take(len)?;
            String::from_utf8(bytes.to_vec()).map_err(|_| "string is not UTF-8".to_string())
        }

        /// One tagged [`Value`]. Strings are routed through the interner
        /// (`Value::str`), so decoding an artifact repopulates the
        /// process-global intern table as a side effect.
        pub fn value(&mut self) -> Result<Value, String> {
            match self.u8()? {
                0 => Ok(Value::Bool(self.u8()? != 0)),
                1 => Ok(Value::Int(self.u64()? as i64)),
                2 => Ok(Value::Float(f64::from_bits(self.u64()?))),
                3 => Ok(Value::str(self.string()?)),
                4 => Ok(Value::Null(self.u64()?)),
                5 => {
                    let n = self.u32()? as usize;
                    if n > self.remaining() {
                        return Err("set length exceeds payload".into());
                    }
                    let mut items = Vec::with_capacity(n);
                    for _ in 0..n {
                        items.push(self.value()?);
                    }
                    Ok(Value::set(items))
                }
                6 => {
                    let n = self.u32()? as usize;
                    if n > self.remaining() {
                        return Err("tuple length exceeds payload".into());
                    }
                    let mut items = Vec::with_capacity(n);
                    for _ in 0..n {
                        items.push(self.value()?);
                    }
                    Ok(Value::Tuple(Arc::new(items)))
                }
                t => Err(format!("unknown value tag {t:#04x}")),
            }
        }

        /// Bytes left to read.
        pub fn remaining(&self) -> usize {
            self.bytes.len() - self.pos
        }

        /// Has everything been consumed?
        pub fn done(&self) -> bool {
            self.pos == self.bytes.len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vadasa-backend-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn engine_names_roundtrip() {
        for e in [StorageEngine::Mem, StorageEngine::File] {
            assert_eq!(StorageEngine::parse(e.as_str()), Some(e));
        }
        assert_eq!(StorageEngine::parse("rocksdb"), None);
        assert_eq!(StorageEngine::parse(""), None);
    }

    #[test]
    fn mem_and_file_backends_obey_the_same_contract() {
        let dir = tmp_dir("contract");
        let mut backends: Vec<Box<dyn StorageBackend>> = vec![
            Box::new(MemBackend::new()),
            Box::new(FileBackend::create(&dir).unwrap()),
        ];
        for b in backends.iter_mut() {
            assert_eq!(b.get("absent").unwrap(), None);
            b.put("alpha", b"one").unwrap();
            b.put("beta.2", b"two").unwrap();
            b.put("alpha", b"replaced").unwrap();
            assert_eq!(b.get("alpha").unwrap().as_deref(), Some(&b"replaced"[..]));
            assert_eq!(b.list().unwrap(), vec!["alpha", "beta.2"]);
            assert!(b.delete("beta.2").unwrap());
            assert!(!b.delete("beta.2").unwrap());
            assert_eq!(b.list().unwrap(), vec!["alpha"]);
            // invalid names are refused, not panicked on
            for bad in ["", "a/b", "../up", ".hidden", "nul\0"] {
                assert!(matches!(
                    b.put(bad, b"x"),
                    Err(StorageError::Backend { .. })
                ));
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_follows_the_cozo_shape() {
        let dir = tmp_dir("open");
        let mem = open(StorageEngine::Mem, None).unwrap();
        assert_eq!(mem.engine(), StorageEngine::Mem);
        assert!(mem.location().is_none());
        let file = open(StorageEngine::File, Some(&dir)).unwrap();
        assert_eq!(file.engine(), StorageEngine::File);
        assert_eq!(file.location(), Some(dir.as_path()));
        assert!(matches!(
            open(StorageEngine::File, None),
            Err(StorageError::Backend { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_backend_survives_reopen() {
        let dir = tmp_dir("reopen");
        {
            let mut b = FileBackend::create(&dir).unwrap();
            b.put("state", b"persisted bytes").unwrap();
        }
        let b = FileBackend::create(&dir).unwrap();
        assert_eq!(
            b.get("state").unwrap().as_deref(),
            Some(&b"persisted bytes"[..])
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn artifact_roundtrip_and_fingerprint_check() {
        let framed = encode_artifact(3, 0xDEAD_F00D, b"payload!");
        let (v, fp, payload) = decode_artifact("t", 3, Some(0xDEAD_F00D), &framed).unwrap();
        assert_eq!((v, fp), (3, 0xDEAD_F00D));
        assert_eq!(payload, b"payload!");
        // wrong fingerprint is structured
        assert!(matches!(
            decode_artifact("t", 3, Some(1), &framed),
            Err(StorageError::Fingerprint { expected: 1, .. })
        ));
        // future version is structured
        assert!(matches!(
            decode_artifact("t", 2, None, &framed),
            Err(StorageError::FutureVersion {
                found: 3,
                supported: 2,
                ..
            })
        ));
    }

    #[test]
    fn hostile_artifact_bytes_never_panic() {
        let framed = encode_artifact(1, 7, b"some payload bytes");
        // every prefix truncation fails cleanly
        for k in 0..framed.len() {
            assert!(
                decode_artifact("t", 1, Some(7), &framed[..k]).is_err(),
                "prefix {k}"
            );
        }
        // every single-byte flip is caught
        for k in 0..framed.len() {
            let mut bad = framed.clone();
            bad[k] ^= 0xFF;
            assert!(decode_artifact("t", 1, Some(7), &bad).is_err(), "flip {k}");
        }
        // byte soup
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for len in 0..256usize {
            let soup: Vec<u8> = (0..len)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x as u8
                })
                .collect();
            let _ = decode_artifact("t", 1, None, &soup);
        }
    }

    #[test]
    fn wire_values_roundtrip() {
        let values = vec![
            Value::Bool(true),
            Value::Int(-42),
            Value::Float(2.5),
            Value::Float(f64::NAN),
            Value::str("héllo ⊥ artifact"),
            Value::Null(9),
            Value::set([Value::Int(1), Value::str("x")]),
            Value::pair(Value::Int(1), Value::Null(2)),
        ];
        let mut buf = Vec::new();
        for v in &values {
            wire::put_value(&mut buf, v);
        }
        let mut r = wire::Reader::new(&buf);
        for v in &values {
            let back = r.value().unwrap();
            assert_eq!(back.cmp(v), std::cmp::Ordering::Equal);
        }
        assert!(r.done());
    }

    #[test]
    fn crc_matches_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
