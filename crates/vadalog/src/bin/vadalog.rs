//! A small command-line front end for the vadalog engine.
//!
//! ```text
//! vadalog PROGRAM.vada [FACTS.vada ...] [options]
//!
//!   --output PRED        print only this predicate (repeatable; default:
//!                        all predicates derived by rule heads)
//!   --trace              print provenance for every derived fact
//!   --warded             run the wardedness analysis and report violations
//!   --stats              print evaluation statistics
//!   --profile            print the execution profile: per-stratum spans,
//!                        fixpoint-round deltas, per-rule firing /
//!                        derived-fact / join-candidate counts
//!   --profile-json PATH  stream telemetry events to PATH as JSON lines
//!                        (one event object per line; see vadasa-obs docs)
//!   --trace-out PATH     write the run's span timeline as Chrome
//!                        trace_event JSON (open in chrome://tracing or
//!                        Perfetto)
//!   --collapsed-out PATH write the run's span timeline as collapsed
//!                        stacks (pipe into a flamegraph renderer)
//!   --deadline-ms N      soft wall-clock budget: stop at the next check
//!                        point after N ms and print the partial result
//!   --max-facts N        soft derived-fact budget: stop once N facts have
//!                        been derived and print the partial result
//!   --threads N          evaluate each round's rules on up to N threads
//!                        (default 1; results are identical either way)
//!   --reference-join     use the reference nested-loop evaluator instead
//!                        of planned, hash-indexed joins (for debugging
//!                        and baseline timing)
//!   --goal ATOM          goal-directed evaluation (repeatable): rewrite
//!                        the program with magic sets so only facts
//!                        relevant to the goal are derived; constants are
//!                        bound positions, `?` marks a free one, e.g.
//!                        --goal 'path(1, ?)'. Output is restricted to
//!                        the goal predicates, filtered to the goal slice
//!                        — identical to the full run's answers
//!   --no-magic           with --goal: answer the goals from a full
//!                        (unrewritten) run — the correctness baseline
//! ```
//!
//! Budgets degrade gracefully: the run still exits 0 and prints whatever
//! was derived, with a `% termination: …` comment explaining which budget
//! tripped and where.
//!
//! Programs and fact files share one syntax (see the crate docs); fact
//! files typically contain only ground atoms. Example:
//!
//! ```text
//! $ cat tc.vada
//! edge(1, 2). edge(2, 3).
//! path(X, Y) :- edge(X, Y).
//! path(X, Y) :- edge(X, Z), path(Z, Y).
//! $ vadalog tc.vada --output path
//! path(1, 2)
//! path(1, 3)
//! path(2, 3)
//! ```

use std::collections::BTreeSet;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;
use vadalog::obs::trace::TraceBuilder;
use vadalog::obs::{Fanout, JsonLinesWriter, Recorder};
use vadalog::{
    parse_program, print_rule, warded_analyze, Budget, Database, Engine, EngineConfig, EngineError,
    Fact, Head, JoinMode, Termination,
};

fn usage() -> ! {
    eprintln!(
        "usage: vadalog PROGRAM.vada [FACTS.vada ...] [--output PRED]... [--trace] [--warded] [--stats] [--profile] [--profile-json PATH] [--trace-out PATH] [--collapsed-out PATH] [--deadline-ms N] [--max-facts N] [--threads N] [--reference-join] [--goal ATOM]... [--no-magic]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut files: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut trace = false;
    let mut warded = false;
    let mut stats = false;
    let mut profile = false;
    let mut profile_json: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut collapsed_out: Option<String> = None;
    let mut budget = Budget::unlimited();
    let mut threads = 1usize;
    let mut join_mode = JoinMode::Indexed;
    let mut goal_specs: Vec<String> = Vec::new();
    let mut no_magic = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--output" => match args.next() {
                Some(p) => outputs.push(p),
                None => usage(),
            },
            "--trace" => trace = true,
            "--warded" => warded = true,
            "--stats" => stats = true,
            "--profile" => profile = true,
            "--profile-json" => match args.next() {
                Some(p) => profile_json = Some(p),
                None => usage(),
            },
            "--trace-out" => match args.next() {
                Some(p) => trace_out = Some(p),
                None => usage(),
            },
            "--collapsed-out" => match args.next() {
                Some(p) => collapsed_out = Some(p),
                None => usage(),
            },
            "--deadline-ms" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) => budget = budget.with_deadline(Duration::from_millis(ms)),
                None => usage(),
            },
            "--max-facts" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => budget = budget.with_max_facts(n),
                None => usage(),
            },
            "--threads" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => threads = n,
                _ => usage(),
            },
            "--reference-join" => join_mode = JoinMode::Reference,
            "--goal" => match args.next() {
                Some(g) => goal_specs.push(g),
                None => usage(),
            },
            "--no-magic" => no_magic = true,
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => {
                eprintln!("unknown option {other}");
                usage();
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        usage();
    }

    // first file is the program; the rest contribute facts (and may also
    // contain rules — they are merged)
    let mut program = vadalog::Program::new();
    for (i, path) in files.iter().enumerate() {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match parse_program(&text) {
            Ok(p) => program.extend(p),
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        if i == 0 && program.rules.is_empty() {
            eprintln!("warning: {path} contains no rules");
        }
    }

    if warded {
        let report = warded_analyze(&program);
        if report.is_warded() {
            println!("% program is warded");
        } else {
            for (rule, why) in &report.violations {
                println!("% wardedness violation in rule {rule}: {why}");
            }
        }
    }

    let sink: Option<Arc<JsonLinesWriter<_>>> = match &profile_json {
        Some(path) => match JsonLinesWriter::create(path) {
            Ok(w) => Some(Arc::new(w)),
            Err(e) => {
                eprintln!("cannot create {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    // Trace exports need the events replayed into a recorder; fan out
    // when the JSON-lines sink is also requested.
    let recorder: Option<Arc<Recorder>> = if trace_out.is_some() || collapsed_out.is_some() {
        Some(Arc::new(Recorder::new()))
    } else {
        None
    };
    let mut collectors: Vec<Arc<dyn vadalog::obs::Collector>> = Vec::new();
    if let Some(s) = &sink {
        collectors.push(s.clone());
    }
    if let Some(r) = &recorder {
        collectors.push(r.clone());
    }
    let collector: Option<Arc<dyn vadalog::obs::Collector>> = match collectors.len() {
        0 => None,
        1 => collectors.pop(),
        _ => Some(Arc::new(Fanout::new(collectors))),
    };
    let engine = Engine::with_config(EngineConfig {
        trace,
        collector,
        budget,
        threads,
        join_mode,
        ..Default::default()
    });
    let mut goals: Vec<vadalog::Atom> = Vec::new();
    for spec in &goal_specs {
        match vadalog::parse_goal(spec) {
            Ok(g) => goals.push(g),
            Err(e) => {
                eprintln!("invalid --goal '{spec}': {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut magic_report: Option<vadalog::MagicReport> = None;
    let run_outcome = if goals.is_empty() || no_magic {
        engine.run(&program, Database::new())
    } else {
        engine
            .run_with_goals(
                &program,
                Database::new(),
                &goals,
                vadalog::MagicOptions::default(),
            )
            .map(|gr| {
                magic_report = Some(gr.magic);
                gr.result
            })
    };
    let result = match run_outcome {
        Ok(r) => r,
        Err(e) => {
            eprintln!("evaluation failed: {e}");
            // show the offending rule's source when a hard limit names one
            if let EngineError::ResourceLimit {
                rule: Some(idx), ..
            } = &e
            {
                if let Some(rule) = program.rules.get(*idx) {
                    eprintln!("offending rule: {}", print_rule(rule));
                }
            }
            return ExitCode::FAILURE;
        }
    };
    match &result.termination {
        Termination::Fixpoint => {}
        t @ Termination::BudgetExceeded { rule, .. } => {
            println!("% termination: {t} — result below is partial");
            if let Some(label) = rule {
                if let Some(r) = program
                    .rules
                    .iter()
                    .enumerate()
                    .find(|(i, r)| {
                        r.label.as_deref() == Some(label.as_str()) || format!("rule#{i}") == *label
                    })
                    .map(|(_, r)| r)
                {
                    println!("% last active rule: {}", print_rule(r));
                }
            }
        }
        t @ Termination::Cancelled => {
            println!("% termination: {t} — result below is partial");
        }
    }
    if let Some(sink) = &sink {
        if let Err(e) = sink.flush() {
            eprintln!("cannot write telemetry: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(rec) = &recorder {
        let tree = TraceBuilder::from_recorder(rec);
        if let Some(path) = &trace_out {
            if let Err(e) = std::fs::write(path, tree.chrome_trace_json()) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        if let Some(path) = &collapsed_out {
            if let Err(e) = std::fs::write(path, tree.collapsed_stacks()) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(report) = &magic_report {
        if report.applied {
            println!(
                "% magic: applied — {} goal seed(s), {} guarded rule(s), {} seed rule(s), {} rule(s) pruned",
                report.stats.goal_seeds,
                report.stats.guarded_rules,
                report.stats.seed_rules,
                report.stats.pruned_rules
            );
        } else if report.degenerate {
            println!("% magic: degenerate goal (no bound argument) — full evaluation");
        } else if let Some(reason) = &report.fallback {
            println!("% magic: fell back to full evaluation — {reason}");
        }
    }

    if !goals.is_empty() {
        // Goal-directed output: the goal slices, identically whether the
        // rewrite ran (--goal) or not (--goal --no-magic). An explicit
        // --output list narrows which goal predicates are shown.
        let show: BTreeSet<String> = if outputs.is_empty() {
            goals.iter().map(|g| g.pred.clone()).collect()
        } else {
            outputs.into_iter().collect()
        };
        let mut rows_by_pred: std::collections::BTreeMap<String, BTreeSet<Vec<vadalog::Value>>> =
            Default::default();
        for goal in &goals {
            if !show.contains(&goal.pred) {
                continue;
            }
            rows_by_pred
                .entry(goal.pred.clone())
                .or_default()
                .extend(vadalog::goal_slice(&result.db, goal));
        }
        for (pred, rows) in &rows_by_pred {
            for row in rows {
                println!("{}", Fact::new(pred.clone(), row.clone()));
            }
        }
    } else {
        // default outputs: all head predicates
        let outputs: BTreeSet<String> = if outputs.is_empty() {
            program
                .rules
                .iter()
                .filter_map(|r| match &r.head {
                    Head::Atoms(atoms) => Some(atoms.iter().map(|a| a.pred.clone())),
                    Head::Equality(_, _) => None,
                })
                .flatten()
                .collect()
        } else {
            outputs.into_iter().collect()
        };

        for pred in &outputs {
            let mut rows = result.db.rows(pred);
            rows.sort();
            for row in rows {
                println!("{}", Fact::new(pred.clone(), row));
            }
        }
    }

    if trace {
        println!("% --- provenance ---");
        for t in &result.trace {
            println!("% {} ⟵ [{}]", t.fact, t.rule);
        }
    }
    for v in &result.violations {
        println!(
            "% EGD violation{}: {} ≠ {}",
            v.rule_label
                .as_ref()
                .map(|l| format!(" [{l}]"))
                .unwrap_or_default(),
            v.left,
            v.right
        );
    }
    if stats {
        println!(
            "% {} facts derived, {} iterations, {} nulls, {} unifications",
            result.stats.facts_derived,
            result.stats.iterations,
            result.stats.nulls_created,
            result.stats.unifications
        );
    }
    if profile {
        for line in result.profile.render_table().lines() {
            println!("% {line}");
        }
    }
    ExitCode::SUCCESS
}
