//! Expression evaluation against a variable binding.
//!
//! Evaluation distinguishes hard errors (type clashes, unknown functions)
//! from *undefined* results (e.g. indexing a `VSet` with an absent key):
//! the evaluator treats an undefined expression in a rule body as a failed
//! match — the candidate binding is silently discarded, mirroring SQL-style
//! three-valued filtering — while hard errors abort the reasoning task.

use crate::ast::{BinOp, Expr, UnOp};
use crate::value::Value;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

/// A variable binding: names to ground values.
pub type Binding = HashMap<String, Value>;

/// Evaluation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// The expression is undefined for this binding (e.g. missing key);
    /// the enclosing rule body simply does not match.
    Undefined(String),
    /// A genuine error: wrong types, unknown function, unbound variable.
    Type(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Undefined(m) => write!(f, "undefined: {m}"),
            EvalError::Type(m) => write!(f, "type error: {m}"),
        }
    }
}

impl std::error::Error for EvalError {}

fn num2(a: &Value, b: &Value, op: &str) -> Result<(f64, f64), EvalError> {
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => Ok((x, y)),
        _ => Err(EvalError::Type(format!(
            "'{op}' expects numbers, got {a} and {b}"
        ))),
    }
}

fn both_int(a: &Value, b: &Value) -> Option<(i64, i64)> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Some((*x, *y)),
        _ => None,
    }
}

/// Evaluate `expr` under `binding`.
pub fn eval_expr(expr: &Expr, binding: &Binding) -> Result<Value, EvalError> {
    match expr {
        Expr::Const(v) => Ok(v.clone()),
        Expr::Var(name) => binding
            .get(name)
            .cloned()
            .ok_or_else(|| EvalError::Type(format!("unbound variable {name}"))),
        Expr::Unary(op, inner) => {
            let v = eval_expr(inner, binding)?;
            match op {
                UnOp::Neg => match v {
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    other => Err(EvalError::Type(format!("cannot negate {other}"))),
                },
                UnOp::Not => match v {
                    Value::Bool(b) => Ok(Value::Bool(!b)),
                    other => Err(EvalError::Type(format!("cannot apply 'not' to {other}"))),
                },
            }
        }
        Expr::Binary(op, lhs, rhs) => {
            // short-circuit booleans
            if matches!(op, BinOp::And | BinOp::Or) {
                let l = eval_expr(lhs, binding)?;
                let lb = match l {
                    Value::Bool(b) => b,
                    other => return Err(EvalError::Type(format!("'and'/'or' on {other}"))),
                };
                if *op == BinOp::And && !lb {
                    return Ok(Value::Bool(false));
                }
                if *op == BinOp::Or && lb {
                    return Ok(Value::Bool(true));
                }
                return eval_expr(rhs, binding);
            }
            let a = eval_expr(lhs, binding)?;
            let b = eval_expr(rhs, binding)?;
            match op {
                BinOp::Add => {
                    if let Some((x, y)) = both_int(&a, &b) {
                        Ok(Value::Int(x.wrapping_add(y)))
                    } else {
                        let (x, y) = num2(&a, &b, "+")?;
                        Ok(Value::Float(x + y))
                    }
                }
                BinOp::Sub => {
                    if let Some((x, y)) = both_int(&a, &b) {
                        Ok(Value::Int(x.wrapping_sub(y)))
                    } else {
                        let (x, y) = num2(&a, &b, "-")?;
                        Ok(Value::Float(x - y))
                    }
                }
                BinOp::Mul => {
                    if let Some((x, y)) = both_int(&a, &b) {
                        Ok(Value::Int(x.wrapping_mul(y)))
                    } else {
                        let (x, y) = num2(&a, &b, "*")?;
                        Ok(Value::Float(x * y))
                    }
                }
                BinOp::Div => {
                    let (x, y) = num2(&a, &b, "/")?;
                    if y == 0.0 {
                        Err(EvalError::Undefined("division by zero".into()))
                    } else {
                        Ok(Value::Float(x / y))
                    }
                }
                BinOp::Mod => {
                    if let Some((x, y)) = both_int(&a, &b) {
                        if y == 0 {
                            Err(EvalError::Undefined("modulo by zero".into()))
                        } else {
                            Ok(Value::Int(x.rem_euclid(y)))
                        }
                    } else {
                        Err(EvalError::Type("'%' expects integers".into()))
                    }
                }
                BinOp::Eq => Ok(Value::Bool(a == b)),
                BinOp::Ne => Ok(Value::Bool(a != b)),
                BinOp::Lt => Ok(Value::Bool(a < b)),
                BinOp::Le => Ok(Value::Bool(a <= b)),
                BinOp::Gt => Ok(Value::Bool(a > b)),
                BinOp::Ge => Ok(Value::Bool(a >= b)),
                BinOp::In => match &b {
                    Value::Set(s) => Ok(Value::Bool(s.contains(&a))),
                    Value::Tuple(t) => Ok(Value::Bool(t.contains(&a))),
                    other => Err(EvalError::Type(format!("'in' expects a set, got {other}"))),
                },
                BinOp::Subset => match (&a, &b) {
                    (Value::Set(x), Value::Set(y)) => {
                        Ok(Value::Bool(x.is_subset(y) && x.len() < y.len()))
                    }
                    _ => Err(EvalError::Type("'subset' expects two sets".into())),
                },
                BinOp::Union => match (&a, &b) {
                    (Value::Set(x), Value::Set(y)) => {
                        let mut s: BTreeSet<Value> = (**x).clone();
                        s.extend(y.iter().cloned());
                        Ok(Value::Set(Arc::new(s)))
                    }
                    _ => Err(EvalError::Type("'union' expects two sets".into())),
                },
                BinOp::And | BinOp::Or => unreachable!("handled above"),
            }
        }
        Expr::Case {
            cond,
            then,
            otherwise,
        } => {
            let c = eval_expr(cond, binding)?;
            match c {
                Value::Bool(true) => eval_expr(then, binding),
                Value::Bool(false) => eval_expr(otherwise, binding),
                other => Err(EvalError::Type(format!("case condition is {other}"))),
            }
        }
        Expr::Index(base, key) => {
            let b = eval_expr(base, binding)?;
            let k = eval_expr(key, binding)?;
            index_value(&b, &k)
        }
        Expr::Call(name, args) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_expr(a, binding)?);
            }
            call_builtin(name, &vals)
        }
    }
}

/// `VSet[K]` semantics. With a set-of-pairs base:
/// - scalar key: the value paired with the key (`Undefined` if absent);
/// - set key: the *sub-collection* of pairs whose keys are in the key set
///   (the paper's `VSet[AnonSet]` filter).
///
/// With a tuple base and integer key: positional access (0-based).
fn index_value(base: &Value, key: &Value) -> Result<Value, EvalError> {
    match base {
        Value::Set(pairs) => match key {
            Value::Set(keys) => {
                let filtered: BTreeSet<Value> = pairs
                    .iter()
                    .filter(|p| match p.as_tuple() {
                        Some(t) if !t.is_empty() => keys.contains(&t[0]),
                        _ => false,
                    })
                    .cloned()
                    .collect();
                Ok(Value::Set(Arc::new(filtered)))
            }
            scalar => {
                for p in pairs.iter() {
                    if let Some(t) = p.as_tuple() {
                        if t.len() >= 2 && &t[0] == scalar {
                            return Ok(t[1].clone());
                        }
                    }
                }
                Err(EvalError::Undefined(format!(
                    "key {scalar} not present in collection"
                )))
            }
        },
        Value::Tuple(items) => match key {
            Value::Int(i) if *i >= 0 && (*i as usize) < items.len() => {
                Ok(items[*i as usize].clone())
            }
            _ => Err(EvalError::Undefined(format!(
                "tuple index {key} out of range"
            ))),
        },
        other => Err(EvalError::Type(format!("cannot index into {other}"))),
    }
}

/// Dispatch a builtin function call.
fn call_builtin(name: &str, args: &[Value]) -> Result<Value, EvalError> {
    let arity_err = |n: usize| {
        Err(EvalError::Type(format!(
            "builtin '{name}' expects {n} argument(s), got {}",
            args.len()
        )))
    };
    match name {
        "size" => match args {
            [Value::Set(s)] => Ok(Value::Int(s.len() as i64)),
            [Value::Tuple(t)] => Ok(Value::Int(t.len() as i64)),
            [Value::Str(s)] => Ok(Value::Int(s.chars().count() as i64)),
            [_] => Err(EvalError::Type("size() expects a collection".into())),
            _ => arity_err(1),
        },
        "pair" => match args {
            [a, b] => Ok(Value::pair(a.clone(), b.clone())),
            _ => arity_err(2),
        },
        "tuple" => Ok(Value::Tuple(Arc::new(args.to_vec()))),
        "set" => Ok(Value::set(args.iter().cloned())),
        "first" => match args {
            [Value::Tuple(t)] if !t.is_empty() => Ok(t[0].clone()),
            [_] => Err(EvalError::Type("first() expects a non-empty tuple".into())),
            _ => arity_err(1),
        },
        "second" => match args {
            [Value::Tuple(t)] if t.len() >= 2 => Ok(t[1].clone()),
            [_] => Err(EvalError::Type("second() expects a pair".into())),
            _ => arity_err(1),
        },
        "nth" => match args {
            [Value::Tuple(t), Value::Int(i)] if *i >= 0 && (*i as usize) < t.len() => {
                Ok(t[*i as usize].clone())
            }
            [_, _] => Err(EvalError::Undefined("nth() out of range".into())),
            _ => arity_err(2),
        },
        "setminus" => match args {
            [Value::Set(a), Value::Set(b)] => Ok(Value::set(a.difference(b).cloned())),
            [Value::Set(a), x] => Ok(Value::set(a.iter().filter(|v| *v != x).cloned())),
            _ => arity_err(2),
        },
        "contains" => match args {
            [Value::Set(s), x] => Ok(Value::Bool(s.contains(x))),
            [Value::Tuple(t), x] => Ok(Value::Bool(t.contains(x))),
            _ => arity_err(2),
        },
        "keys" => match args {
            // set of first components of a set of pairs
            [Value::Set(s)] => {
                Ok(Value::set(s.iter().filter_map(|p| {
                    p.as_tuple().and_then(|t| t.first().cloned())
                })))
            }
            _ => arity_err(1),
        },
        "values" => match args {
            [Value::Set(s)] => {
                Ok(Value::set(s.iter().filter_map(|p| {
                    p.as_tuple().and_then(|t| t.get(1).cloned())
                })))
            }
            _ => arity_err(1),
        },
        "is_null" => match args {
            [v] => Ok(Value::Bool(v.is_null())),
            _ => arity_err(1),
        },
        "min" => match args {
            [a, b] => Ok(if a <= b { a.clone() } else { b.clone() }),
            _ => arity_err(2),
        },
        "max" => match args {
            [a, b] => Ok(if a >= b { a.clone() } else { b.clone() }),
            _ => arity_err(2),
        },
        "abs" => match args {
            [Value::Int(i)] => Ok(Value::Int(i.wrapping_abs())),
            [Value::Float(f)] => Ok(Value::Float(f.abs())),
            [_] => Err(EvalError::Type("abs() expects a number".into())),
            _ => arity_err(1),
        },
        "pow" => match args {
            [a, b] => {
                let (x, y) = num2(a, b, "pow")?;
                Ok(Value::Float(x.powf(y)))
            }
            _ => arity_err(2),
        },
        "sqrt" => match args {
            [a] => {
                let x = a
                    .as_f64()
                    .ok_or_else(|| EvalError::Type("sqrt() expects a number".into()))?;
                if x < 0.0 {
                    Err(EvalError::Undefined("sqrt of negative".into()))
                } else {
                    Ok(Value::Float(x.sqrt()))
                }
            }
            _ => arity_err(1),
        },
        "ln" => match args {
            [a] => {
                let x = a
                    .as_f64()
                    .ok_or_else(|| EvalError::Type("ln() expects a number".into()))?;
                if x <= 0.0 {
                    Err(EvalError::Undefined("ln of non-positive".into()))
                } else {
                    Ok(Value::Float(x.ln()))
                }
            }
            _ => arity_err(1),
        },
        "exp" => match args {
            [a] => {
                let x = a
                    .as_f64()
                    .ok_or_else(|| EvalError::Type("exp() expects a number".into()))?;
                Ok(Value::Float(x.exp()))
            }
            _ => arity_err(1),
        },
        "upper" => match args {
            [Value::Str(s)] => Ok(Value::str(s.to_uppercase())),
            [_] => Err(EvalError::Type("upper() expects a string".into())),
            _ => arity_err(1),
        },
        "lower" => match args {
            [Value::Str(s)] => Ok(Value::str(s.to_lowercase())),
            [_] => Err(EvalError::Type("lower() expects a string".into())),
            _ => arity_err(1),
        },
        "starts_with" => match args {
            [Value::Str(s), Value::Str(p)] => Ok(Value::Bool(s.starts_with(p.as_ref()))),
            [_, _] => Err(EvalError::Type("starts_with() expects strings".into())),
            _ => arity_err(2),
        },
        "ends_with" => match args {
            [Value::Str(s), Value::Str(p)] => Ok(Value::Bool(s.ends_with(p.as_ref()))),
            [_, _] => Err(EvalError::Type("ends_with() expects strings".into())),
            _ => arity_err(2),
        },
        "contains_str" => match args {
            [Value::Str(s), Value::Str(p)] => Ok(Value::Bool(s.contains(p.as_ref()))),
            [_, _] => Err(EvalError::Type("contains_str() expects strings".into())),
            _ => arity_err(2),
        },
        "substr" => match args {
            [Value::Str(s), Value::Int(start), Value::Int(len)] => {
                let chars: Vec<char> = s.chars().collect();
                let start = (*start).max(0) as usize;
                if start > chars.len() {
                    return Err(EvalError::Undefined("substr start out of range".into()));
                }
                let len = (*len).max(0) as usize;
                let end = (start + len).min(chars.len());
                Ok(Value::str(chars[start..end].iter().collect::<String>()))
            }
            [_, _, _] => Err(EvalError::Type(
                "substr() expects (string, int, int)".into(),
            )),
            _ => arity_err(3),
        },
        "concat" => {
            let mut s = String::new();
            for a in args {
                match a {
                    Value::Str(x) => s.push_str(x),
                    other => s.push_str(&other.to_string()),
                }
            }
            Ok(Value::str(s))
        }
        "union_of" => {
            // n-ary set union
            let mut out: BTreeSet<Value> = BTreeSet::new();
            for a in args {
                match a {
                    Value::Set(s) => out.extend(s.iter().cloned()),
                    other => {
                        return Err(EvalError::Type(format!(
                            "union_of() expects sets, got {other}"
                        )))
                    }
                }
            }
            Ok(Value::Set(Arc::new(out)))
        }
        other => Err(EvalError::Type(format!("unknown builtin '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(pairs: &[(&str, Value)]) -> Binding {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn arithmetic_preserves_int_when_possible() {
        let e = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::val(2i64)),
            Box::new(Expr::val(3i64)),
        );
        assert_eq!(eval_expr(&e, &Binding::new()).unwrap(), Value::Int(5));
        let e = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::val(2i64)),
            Box::new(Expr::val(0.5f64)),
        );
        assert_eq!(eval_expr(&e, &Binding::new()).unwrap(), Value::Float(2.5));
    }

    #[test]
    fn division_by_zero_is_undefined_not_error() {
        let e = Expr::Binary(
            BinOp::Div,
            Box::new(Expr::val(1i64)),
            Box::new(Expr::val(0i64)),
        );
        assert!(matches!(
            eval_expr(&e, &Binding::new()),
            Err(EvalError::Undefined(_))
        ));
    }

    #[test]
    fn vset_index_scalar_key() {
        let vset = Value::set([
            Value::pair(Value::str("area"), Value::str("North")),
            Value::pair(Value::str("sector"), Value::str("Textiles")),
        ]);
        let e = Expr::Index(
            Box::new(Expr::var("V")),
            Box::new(Expr::Const(Value::str("sector"))),
        );
        let out = eval_expr(&e, &b(&[("V", vset)])).unwrap();
        assert_eq!(out, Value::str("Textiles"));
    }

    #[test]
    fn vset_index_missing_key_is_undefined() {
        let vset = Value::set([Value::pair(Value::str("a"), Value::Int(1))]);
        let e = Expr::Index(
            Box::new(Expr::var("V")),
            Box::new(Expr::Const(Value::str("zz"))),
        );
        assert!(matches!(
            eval_expr(&e, &b(&[("V", vset)])),
            Err(EvalError::Undefined(_))
        ));
    }

    #[test]
    fn vset_index_set_key_filters_pairs() {
        let vset = Value::set([
            Value::pair(Value::str("a"), Value::Int(1)),
            Value::pair(Value::str("b"), Value::Int(2)),
            Value::pair(Value::str("c"), Value::Int(3)),
        ]);
        let keys = Value::set([Value::str("a"), Value::str("c")]);
        let e = Expr::Index(Box::new(Expr::var("V")), Box::new(Expr::var("K")));
        let out = eval_expr(&e, &b(&[("V", vset), ("K", keys)])).unwrap();
        assert_eq!(out.as_set().unwrap().len(), 2);
    }

    #[test]
    fn subset_is_strict() {
        let a = Value::set([Value::Int(1)]);
        let bb = Value::set([Value::Int(1), Value::Int(2)]);
        let strict = Expr::Binary(
            BinOp::Subset,
            Box::new(Expr::Const(a.clone())),
            Box::new(Expr::Const(bb.clone())),
        );
        assert_eq!(
            eval_expr(&strict, &Binding::new()).unwrap(),
            Value::Bool(true)
        );
        let same = Expr::Binary(
            BinOp::Subset,
            Box::new(Expr::Const(bb.clone())),
            Box::new(Expr::Const(bb)),
        );
        assert_eq!(
            eval_expr(&same, &Binding::new()).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn case_expression() {
        let e = Expr::Case {
            cond: Box::new(Expr::Binary(
                BinOp::Lt,
                Box::new(Expr::var("N")),
                Box::new(Expr::val(3i64)),
            )),
            then: Box::new(Expr::val(1i64)),
            otherwise: Box::new(Expr::val(0i64)),
        };
        assert_eq!(
            eval_expr(&e, &b(&[("N", Value::Int(2))])).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            eval_expr(&e, &b(&[("N", Value::Int(5))])).unwrap(),
            Value::Int(0)
        );
    }

    #[test]
    fn builtin_size_and_keys() {
        let vset = Value::set([
            Value::pair(Value::str("a"), Value::Int(1)),
            Value::pair(Value::str("b"), Value::Int(2)),
        ]);
        let size = Expr::Call("size".into(), vec![Expr::var("V")]);
        assert_eq!(
            eval_expr(&size, &b(&[("V", vset.clone())])).unwrap(),
            Value::Int(2)
        );
        let keys = Expr::Call("keys".into(), vec![Expr::var("V")]);
        let out = eval_expr(&keys, &b(&[("V", vset)])).unwrap();
        assert!(out.as_set().unwrap().contains(&Value::str("a")));
    }

    #[test]
    fn is_null_detects_labelled_nulls() {
        let e = Expr::Call("is_null".into(), vec![Expr::var("X")]);
        assert_eq!(
            eval_expr(&e, &b(&[("X", Value::Null(9))])).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_expr(&e, &b(&[("X", Value::Int(9))])).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn string_builtins() {
        let e = Expr::Call("upper".into(), vec![Expr::Const(Value::str("north"))]);
        assert_eq!(eval_expr(&e, &Binding::new()).unwrap(), Value::str("NORTH"));
        let e = Expr::Call(
            "starts_with".into(),
            vec![
                Expr::Const(Value::str("Textiles·r17")),
                Expr::Const(Value::str("Textiles")),
            ],
        );
        assert_eq!(eval_expr(&e, &Binding::new()).unwrap(), Value::Bool(true));
        let e = Expr::Call(
            "substr".into(),
            vec![
                Expr::Const(Value::str("0-30")),
                Expr::val(0i64),
                Expr::val(1i64),
            ],
        );
        assert_eq!(eval_expr(&e, &Binding::new()).unwrap(), Value::str("0"));
        // out-of-range start is undefined, not a hard error
        let e = Expr::Call(
            "substr".into(),
            vec![
                Expr::Const(Value::str("ab")),
                Expr::val(9i64),
                Expr::val(1i64),
            ],
        );
        assert!(matches!(
            eval_expr(&e, &Binding::new()),
            Err(EvalError::Undefined(_))
        ));
        let e = Expr::Call(
            "contains_str".into(),
            vec![
                Expr::Const(Value::str("Public Service")),
                Expr::Const(Value::str("Serv")),
            ],
        );
        assert_eq!(eval_expr(&e, &Binding::new()).unwrap(), Value::Bool(true));
    }

    #[test]
    fn unknown_builtin_is_type_error() {
        let e = Expr::Call("frobnicate".into(), vec![]);
        assert!(matches!(
            eval_expr(&e, &Binding::new()),
            Err(EvalError::Type(_))
        ));
    }

    #[test]
    fn unbound_variable_is_type_error() {
        assert!(matches!(
            eval_expr(&Expr::var("Q"), &Binding::new()),
            Err(EvalError::Type(_))
        ));
    }

    #[test]
    fn short_circuit_and() {
        // `false and (1/0 > 0)` must not evaluate the RHS
        let e = Expr::Binary(
            BinOp::And,
            Box::new(Expr::val(false)),
            Box::new(Expr::Binary(
                BinOp::Gt,
                Box::new(Expr::Binary(
                    BinOp::Div,
                    Box::new(Expr::val(1i64)),
                    Box::new(Expr::val(0i64)),
                )),
                Box::new(Expr::val(0i64)),
            )),
        );
        assert_eq!(eval_expr(&e, &Binding::new()).unwrap(), Value::Bool(false));
    }
}
