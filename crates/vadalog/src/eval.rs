//! Stratified semi-naive evaluation with chase-style existentials,
//! monotonic aggregation and EGD enforcement.
//!
//! Evaluation proceeds stratum by stratum (see [`mod@crate::stratify`]). Within
//! a stratum:
//!
//! 1. Rules *without* aggregates run to a semi-naive fixpoint. Existential
//!    head variables are satisfied by minting fresh labelled nulls; firings
//!    are memoized on (rule, frontier binding) — a Skolem-style restricted
//!    chase — so warded programs terminate.
//! 2. Rules *with* aggregates run once per stratum pass: stratification
//!    guarantees their inputs are complete. Monotonic contributor semantics
//!    collapse multiple contributions of the same contributor to the
//!    extremal one (paper §4.3).
//! 3. EGDs are then enforced: bindings whose head terms differ either unify
//!    a labelled null with the other term (the database is rewritten) or —
//!    when both sides are distinct constants — produce a *violation* which
//!    is collected for human inspection rather than failing hard.
//!
//! Steps repeat until the stratum is stable, then evaluation moves up.

use crate::ast::{AggFunc, Atom, Expr, Fact, Head, Literal, Program, Rule, Term};
use crate::builtins::{eval_expr, Binding, EvalError};
use crate::governor::{Budget, BudgetKind, CancelToken, Governor, StopReason, Termination};
use crate::plan::{identity_plan, plan_rule, JoinPlan};
use crate::profile::{EngineProfile, RoundProfile, StratumProfile};
use crate::routing::Router;
use crate::storage::{Database, Row};
use crate::stratify::{check_safety, stratify, StratifyError};
use crate::value::Value;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;
use vadasa_obs::{Collector, Obs};

/// Rows inserted in the previous semi-naive round, keyed by predicate.
/// The rows are shared handles aliasing the stored rows, so building the
/// delta costs one `Arc` bump per fact rather than a deep copy.
pub(crate) type DeltaRows = HashMap<String, Vec<Row>>;

/// Join-execution counters accumulated while evaluating one rule.
#[derive(Debug, Default, Clone, Copy)]
struct JoinCounters {
    /// Rows examined as candidate matches across the join.
    candidates: u64,
    /// Hash-index probes issued.
    probes: u64,
    /// Full-relation linear scans (no usable index for the step).
    scans: u64,
}

/// What to do when an EGD equates two distinct constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EgdPolicy {
    /// Record the violation and keep reasoning — the paper's
    /// human-in-the-loop stance (Algorithm 1's "violations of EGD 4 …
    /// allow for manual inspection of doubtful cases").
    #[default]
    Collect,
    /// Abort the reasoning task on the first violation.
    FailFast,
}

/// Join evaluation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinMode {
    /// Planned, hash-indexed joins: positive body literals are reordered
    /// by boundness/selectivity ([`crate::plan`]) and matched by probing
    /// per-predicate hash indexes ([`crate::storage::Relation::probe`]).
    #[default]
    Indexed,
    /// Reference nested-loop evaluation: literals in source order, linear
    /// scans only, no planner and no indexes. Slow but independently
    /// simple — the oracle the indexed path is equivalence-tested against,
    /// and the "before" arm of the engine benchmark.
    Reference,
}

/// Engine configuration.
pub struct EngineConfig {
    /// Hard cap on fixpoint iterations per stratum (guards non-terminating
    /// chases outside the warded fragment).
    pub max_iterations: usize,
    /// Hard cap on total derived facts.
    pub max_facts: usize,
    /// Record provenance for every derived fact (costly; off by default).
    pub trace: bool,
    /// Optional routing strategy ordering rule bindings before application.
    pub router: Option<Box<dyn Router>>,
    /// Behaviour on EGD constant clashes.
    pub egd_policy: EgdPolicy,
    /// Optional telemetry sink. The engine accumulates its
    /// [`EngineProfile`] regardless (that is a handful of counters); a
    /// collector additionally receives the profile replayed as events
    /// after the run — see [`EngineProfile::emit`].
    pub collector: Option<Arc<dyn Collector>>,
    /// Optional live metrics registry. Where the collector sees the
    /// profile replayed *after* the run, the registry is updated at
    /// every fixpoint round — current stratum, round ordinal, delta
    /// size, facts/s — so another thread can poll a run in flight.
    pub metrics: Option<Arc<vadasa_obs::metrics::MetricsRegistry>>,
    /// Soft resource budget. Unlike the hard caps above (which abort with
    /// an error), a tripped budget ends the run *gracefully*: the engine
    /// returns the sound partial result derived so far, tagged with
    /// [`Termination::BudgetExceeded`]. Default: unlimited.
    pub budget: Budget,
    /// Optional cooperative cancellation token, polled between semi-naive
    /// rounds (and between rules by parallel workers). When it fires the
    /// engine returns its partial result tagged [`Termination::Cancelled`].
    pub cancel: Option<CancelToken>,
    /// Join evaluation strategy ([`JoinMode::Indexed`] by default).
    pub join_mode: JoinMode,
    /// Worker threads for rule evaluation within a semi-naive round.
    /// `0` or `1` means sequential. With `n > 1`, each round's rule joins
    /// fan out over `min(n, rules)` scoped threads against the frozen
    /// database; results are merged on the calling thread in rule order,
    /// so derivations (including null minting) stay deterministic.
    pub threads: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_iterations: 100_000,
            max_facts: 50_000_000,
            trace: false,
            router: None,
            egd_policy: EgdPolicy::default(),
            collector: None,
            metrics: None,
            budget: Budget::default(),
            cancel: None,
            join_mode: JoinMode::default(),
            threads: 1,
        }
    }
}

impl fmt::Debug for EngineConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineConfig")
            .field("max_iterations", &self.max_iterations)
            .field("max_facts", &self.max_facts)
            .field("trace", &self.trace)
            .field("router", &self.router.as_ref().map(|r| r.name()))
            .field("egd_policy", &self.egd_policy)
            .field("collector", &self.collector.is_some())
            .field("metrics", &self.metrics.is_some())
            .field("budget", &self.budget)
            .field("cancel", &self.cancel.is_some())
            .field("join_mode", &self.join_mode)
            .field("threads", &self.threads)
            .finish()
    }
}

/// Reasoning failure.
#[derive(Debug)]
pub enum EngineError {
    /// The program could not be stratified.
    Stratify(StratifyError),
    /// A rule is unsafe (unbound variable where a bound one is required).
    Unsafe {
        /// Index of the offending rule.
        rule: usize,
        /// Explanation.
        message: String,
    },
    /// A type error surfaced while evaluating an expression.
    Eval {
        /// Rule that was being evaluated.
        rule: usize,
        /// The underlying expression error.
        error: EvalError,
    },
    /// A *hard* resource cap was exceeded (`EngineConfig::max_iterations`
    /// or `EngineConfig::max_facts`). Soft [`Budget`] limits never produce
    /// this error — they end the run gracefully with a partial result.
    ResourceLimit {
        /// Which cap tripped.
        which: BudgetKind,
        /// Stratum being evaluated when it tripped.
        stratum: usize,
        /// Index of the rule being applied when it tripped, when
        /// attributable (facts cap only; the iteration cap trips between
        /// rules).
        rule: Option<usize>,
        /// Total facts derived when the cap tripped.
        facts_so_far: usize,
        /// Total fixpoint iterations when the cap tripped.
        iterations_so_far: usize,
        /// The configured cap value.
        limit: usize,
    },
    /// A rule's evaluation panicked (e.g. a faulty builtin). The panic is
    /// caught at the rule boundary so one bad rule cannot take the process
    /// down.
    Internal {
        /// Label (or `rule#i` form) of the rule whose evaluation panicked.
        rule: String,
        /// The panic payload, rendered.
        message: String,
    },
    /// Aggregates may only be followed by conditions/assignments.
    MalformedAggregateRule {
        /// Index of the offending rule.
        rule: usize,
        /// Explanation.
        message: String,
    },
    /// An EGD equated two distinct constants under [`EgdPolicy::FailFast`].
    EgdViolation(EgdViolation),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Stratify(e) => write!(f, "{e}"),
            EngineError::Unsafe { rule, message } => {
                write!(f, "rule {rule} is unsafe: {message}")
            }
            EngineError::Eval { rule, error } => {
                write!(f, "evaluation error in rule {rule}: {error}")
            }
            EngineError::ResourceLimit {
                which,
                stratum,
                rule,
                facts_so_far,
                iterations_so_far,
                limit,
            } => {
                write!(
                    f,
                    "hard resource limit exceeded: {which} (limit {limit}) in stratum {stratum}"
                )?;
                if let Some(r) = rule {
                    write!(f, " while applying rule {r}")?;
                }
                write!(
                    f,
                    "; {facts_so_far} facts derived, {iterations_so_far} iterations"
                )
            }
            EngineError::Internal { rule, message } => {
                write!(f, "rule {rule} panicked during evaluation: {message}")
            }
            EngineError::MalformedAggregateRule { rule, message } => {
                write!(f, "rule {rule} misuses aggregation: {message}")
            }
            EngineError::EgdViolation(v) => write!(
                f,
                "EGD violation{}: {} ≠ {}",
                v.rule_label
                    .as_ref()
                    .map(|l| format!(" [{l}]"))
                    .unwrap_or_default(),
                v.left,
                v.right
            ),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<StratifyError> for EngineError {
    fn from(e: StratifyError) -> Self {
        EngineError::Stratify(e)
    }
}

/// An EGD binding that equated two distinct constants: flagged for
/// human-in-the-loop inspection (paper §4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct EgdViolation {
    /// Label of the EGD rule, if any.
    pub rule_label: Option<String>,
    /// Left-hand value.
    pub left: Value,
    /// Right-hand value.
    pub right: Value,
}

/// Provenance record for one derived fact.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// The derived fact.
    pub fact: Fact,
    /// Label of the deriving rule (or its index as a string).
    pub rule: String,
    /// The body binding that fired the rule.
    pub binding: Vec<(String, Value)>,
}

/// Statistics of a reasoning run.
#[derive(Debug, Clone, Default)]
pub struct EvalStats {
    /// Total fixpoint iterations across strata.
    pub iterations: usize,
    /// Facts derived (insertions that were new).
    pub facts_derived: usize,
    /// Labelled nulls minted by existential rules.
    pub nulls_created: u64,
    /// Number of EGD-driven null unifications performed.
    pub unifications: usize,
}

/// Result of running a program.
#[derive(Debug)]
pub struct ReasoningResult {
    /// The saturated database (input ∪ derived).
    pub db: Database,
    /// EGD violations (distinct constants equated).
    pub violations: Vec<EgdViolation>,
    /// Run statistics.
    pub stats: EvalStats,
    /// Per-stratum / per-round / per-rule execution profile (always
    /// accumulated; the breakdown behind `stats`).
    pub profile: EngineProfile,
    /// Provenance (only populated when `trace` is enabled).
    pub trace: Vec<TraceEntry>,
    /// How the run ended: fixpoint (complete), or an early, graceful stop
    /// (budget / cancellation) leaving a sound partial result.
    pub termination: Termination,
}

/// How a goal-directed run ([`Engine::run_with_goals`]) handled its
/// goals: rewritten, degenerate, or fallen back to the full program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MagicReport {
    /// The magic-sets rewrite was applied: only goal-relevant facts were
    /// derived and the `magic#…` scaffolding was stripped afterwards.
    pub applied: bool,
    /// No goal carried a bound argument on a derived predicate, so the
    /// original program ran byte for byte.
    pub degenerate: bool,
    /// The rewrite refused (or the rewritten program failed to
    /// stratify): the soundness argument, with the full program run in
    /// its place.
    pub fallback: Option<String>,
    /// What the rewrite did, when applied.
    pub stats: crate::magic::MagicStats,
}

/// Result of [`Engine::run_with_goals`]: the reasoning result plus how
/// the magic machinery behaved.
#[derive(Debug)]
pub struct GoalRun {
    /// The reasoning result. When the rewrite applied, the goal
    /// predicates hold a *superset* of the goal slice of the full
    /// fixpoint (magic sets widen transitively); filter by the goal
    /// constants (see [`crate::query::goal_slice`]) before comparing
    /// against a full run.
    pub result: ReasoningResult,
    /// What the goal-directed machinery did.
    pub magic: MagicReport,
}

/// Result of a warm-start re-evaluation pass (see [`Engine::run_warm`]):
/// the incremental statistics/profile of the pass, not cumulative totals.
#[derive(Debug)]
pub(crate) struct WarmRun {
    /// Statistics of this pass only.
    pub stats: EvalStats,
    /// Profile of this pass only.
    pub profile: EngineProfile,
    /// Provenance of facts derived this pass (when tracing is on).
    pub trace: Vec<TraceEntry>,
    /// How the pass ended.
    pub termination: Termination,
    /// Strata skipped because no seeded/derived predicate reached them.
    pub strata_skipped: usize,
}

/// How one stratum (or one semi-naive fixpoint within it) ended: ran to
/// completion, or was stopped early by the governor.
enum StratumEnd {
    /// The stratum reached stability.
    Complete,
    /// The governor stopped it; the database holds a sound partial result.
    Stopped(Termination),
}

/// Run `f`, converting a panic into [`EngineError::Internal`] attributed
/// to the given rule. This is the isolation boundary that keeps one faulty
/// builtin or rule evaluation from taking the whole process down.
fn isolate_rule<T>(
    program: &Program,
    rule_idx: usize,
    f: impl FnOnce() -> Result<T, EngineError>,
) -> Result<T, EngineError> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => Err(EngineError::Internal {
            rule: rule_label(program, rule_idx),
            message: panic_message(payload.as_ref()),
        }),
    }
}

/// Human-readable rule name: the `@label` when present, `rule#i` otherwise.
fn rule_label(program: &Program, idx: usize) -> String {
    program
        .rules
        .get(idx)
        .and_then(|r| r.label.clone())
        .unwrap_or_else(|| format!("rule#{idx}"))
}

/// Render a panic payload (typically a `&str` or `String`).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Attribute a governor stop to a [`Termination`].
fn stop_termination(stop: StopReason, stratum: usize, rule: Option<String>) -> Termination {
    match stop {
        StopReason::Cancelled => Termination::Cancelled,
        StopReason::Budget(which) => Termination::BudgetExceeded {
            which,
            stratum,
            rule,
        },
    }
}

/// The reasoning engine.
#[derive(Debug, Default)]
pub struct Engine {
    /// Configuration knobs.
    pub config: EngineConfig,
}

impl Engine {
    /// Engine with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Engine with the given configuration.
    pub fn with_config(config: EngineConfig) -> Self {
        Engine { config }
    }

    /// Run `program` over `input`, returning the saturated database.
    pub fn run(&self, program: &Program, mut db: Database) -> Result<ReasoningResult, EngineError> {
        for (i, rule) in program.rules.iter().enumerate() {
            check_safety(rule).map_err(|m| EngineError::Unsafe {
                rule: i,
                message: m,
            })?;
            validate_aggregate_shape(rule, i)?;
        }
        let strat = stratify(program)?;

        for fact in &program.facts {
            db.insert_fact(fact.clone());
        }

        let mut stats = EvalStats::default();
        let mut violations = Vec::new();
        let mut trace = Vec::new();
        let mut profile = EngineProfile::for_program(program);
        let intern_before = crate::intern::stats();
        let nulls_before = db.nulls_minted();
        let run_start = Instant::now();
        let governor = Governor::new(self.config.budget, self.config.cancel.clone());
        let mut termination = Termination::Fixpoint;

        for (stratum_idx, stratum) in strat.strata.iter().enumerate() {
            let rules: Vec<(usize, &Rule)> =
                stratum.iter().map(|&i| (i, &program.rules[i])).collect();

            profile.strata.push(StratumProfile {
                stratum: stratum_idx,
                ..StratumProfile::default()
            });
            if let Some(m) = &self.config.metrics {
                m.set_gauge("engine.stratum", stratum_idx as f64);
            }
            let stratum_start = Instant::now();
            let facts_before = stats.facts_derived;

            let end = self.run_stratum(
                &rules,
                &mut db,
                &mut stats,
                &mut trace,
                &mut violations,
                program,
                &mut profile,
                stratum_idx,
                &governor,
                nulls_before,
            )?;

            let s = &mut profile.strata[stratum_idx];
            s.dur_ns = stratum_start.elapsed().as_nanos() as u64;
            s.facts_derived = (stats.facts_derived - facts_before) as u64;

            if let StratumEnd::Stopped(t) = end {
                termination = t;
                break;
            }
        }

        stats.nulls_created = db.nulls_minted() - nulls_before;
        profile.total_ns = run_start.elapsed().as_nanos() as u64;
        profile.facts_derived = stats.facts_derived as u64;
        profile.iterations = stats.iterations as u64;
        profile.nulls_created = stats.nulls_created;
        profile.unifications = stats.unifications as u64;
        profile.violations = violations.len() as u64;
        // The interner is process-global; the delta over this run is what
        // this run's parsing/derivation saved.
        profile.intern_hits = crate::intern::stats()
            .hits
            .saturating_sub(intern_before.hits);
        if let Some(collector) = &self.config.collector {
            profile.emit(&Obs::new(Some(collector.as_ref())));
        }
        Ok(ReasoningResult {
            db,
            violations,
            stats,
            profile,
            trace,
            termination,
        })
    }

    /// Goal-directed run: rewrite `program` with magic sets for `goals`
    /// (see [`crate::magic`]) and evaluate the restricted program, so
    /// only goal-relevant facts are ever derived.
    ///
    /// The contract mirrors the rewrite's: when the rewrite applies, the
    /// goal predicates hold a superset of the goal slice of the full
    /// fixpoint and every fact in them is a fact of the full fixpoint.
    /// When the goals are degenerate (no bound argument on a derived
    /// predicate) the original program runs byte for byte. When the
    /// rewrite refuses — or the rewritten program unexpectedly fails
    /// stratification — the engine falls back to the full program,
    /// counts a `magic_fallbacks` in the profile and records the reason
    /// in [`MagicReport::fallback`]; it never silently under-derives.
    /// The `magic#…` scaffolding relations are stripped from the result
    /// before it is returned.
    pub fn run_with_goals(
        &self,
        program: &Program,
        db: Database,
        goals: &[Atom],
        options: crate::magic::MagicOptions,
    ) -> Result<GoalRun, EngineError> {
        use crate::magic::{is_magic_pred, rewrite, MagicRewrite};

        let (rewritten, stats) = match rewrite(program, goals, options) {
            Ok(MagicRewrite::Degenerate) => {
                let result = self.run(program, db)?;
                return Ok(GoalRun {
                    result,
                    magic: MagicReport {
                        degenerate: true,
                        ..MagicReport::default()
                    },
                });
            }
            Ok(MagicRewrite::Rewritten { program, stats }) => (program, stats),
            Err(refusal) => {
                let mut result = self.run(program, db)?;
                result.profile.magic_fallbacks += 1;
                return Ok(GoalRun {
                    result,
                    magic: MagicReport {
                        fallback: Some(refusal.reason),
                        ..MagicReport::default()
                    },
                });
            }
        };
        // The rewrite preserves stratifiability on its supported
        // fragment; a failure here means a blind spot in the analysis,
        // so fall back to the (known-stratified) full program rather
        // than erroring out of a sound query.
        if let Err(e) = stratify(&rewritten) {
            let mut result = self.run(program, db)?;
            result.profile.magic_fallbacks += 1;
            return Ok(GoalRun {
                result,
                magic: MagicReport {
                    fallback: Some(format!("rewritten program does not stratify: {e}")),
                    ..MagicReport::default()
                },
            });
        }
        let mut result = self.run(&rewritten, db)?;
        let scaffolding: Vec<String> = result
            .db
            .relation_names()
            .filter(|p| is_magic_pred(p))
            .map(|p| p.to_string())
            .collect();
        for pred in scaffolding {
            result.db.remove_relation(&pred);
        }
        result.profile.magic_goal_seeds = stats.goal_seeds;
        result.profile.magic_guarded_rules = stats.guarded_rules;
        result.profile.magic_seed_rules = stats.seed_rules;
        result.profile.magic_pruned_rules = stats.pruned_rules;
        Ok(GoalRun {
            result,
            magic: MagicReport {
                applied: true,
                stats,
                ..MagicReport::default()
            },
        })
    }

    /// Warm-start re-evaluation: re-derive the consequences of `seed`
    /// (freshly inserted rows, keyed by predicate) over an already
    /// saturated database, using a pre-computed stratification.
    ///
    /// Soundness contract — the caller ([`crate::session::EngineSession`])
    /// must have verified via dependency analysis that no predicate
    /// reachable from the seed feeds a negated literal, an aggregate rule
    /// or an EGD. Under that contract only plain (non-aggregate, non-EGD)
    /// rules can derive anything new, so each stratum needs exactly one
    /// semi-naive fixpoint seeded with the accumulated delta; strata whose
    /// plain rules never read a seeded/derived predicate are skipped
    /// outright.
    pub(crate) fn run_warm(
        &self,
        program: &Program,
        strat: &crate::stratify::Stratification,
        db: &mut Database,
        seed: DeltaRows,
    ) -> Result<WarmRun, EngineError> {
        let mut stats = EvalStats::default();
        let mut trace = Vec::new();
        let mut profile = EngineProfile::for_program(program);
        let intern_before = crate::intern::stats();
        let nulls_before = db.nulls_minted();
        let run_start = Instant::now();
        let governor = Governor::new(self.config.budget, self.config.cancel.clone());
        let mut termination = Termination::Fixpoint;
        let mut strata_skipped = 0usize;

        // The accumulated delta: patch additions plus every fact derived in
        // lower strata so far.
        let mut accumulated = seed;

        for (stratum_idx, stratum) in strat.strata.iter().enumerate() {
            profile.strata.push(StratumProfile {
                stratum: stratum_idx,
                ..StratumProfile::default()
            });
            let plain: Vec<(usize, &Rule)> = stratum
                .iter()
                .map(|&i| (i, &program.rules[i]))
                .filter(|(_, r)| !r.has_aggregate() && matches!(r.head, Head::Atoms(_)))
                .collect();
            let touched = plain.iter().any(|(_, r)| {
                r.body.iter().any(|l| match l {
                    Literal::Pos(a) => accumulated
                        .get(&a.pred)
                        .is_some_and(|rows| !rows.is_empty()),
                    _ => false,
                })
            });
            if !touched {
                strata_skipped += 1;
                continue;
            }

            let stratum_start = Instant::now();
            let facts_before = stats.facts_derived;
            profile.strata[stratum_idx].passes += 1;
            let mut skolem: HashMap<(usize, Vec<Value>), HashMap<String, Value>> = HashMap::new();
            let stratum_seed = accumulated.clone();
            let mut derived: DeltaRows = HashMap::new();
            let end = self.fixpoint_plain(
                &plain,
                db,
                &mut skolem,
                &mut stats,
                &mut trace,
                program,
                &mut profile,
                stratum_idx,
                &governor,
                nulls_before,
                Some(stratum_seed),
                Some(&mut derived),
            )?;
            for (pred, rows) in derived {
                accumulated.entry(pred).or_default().extend(rows);
            }

            let s = &mut profile.strata[stratum_idx];
            s.dur_ns = stratum_start.elapsed().as_nanos() as u64;
            s.facts_derived = (stats.facts_derived - facts_before) as u64;

            if let StratumEnd::Stopped(t) = end {
                termination = t;
                break;
            }
        }

        stats.nulls_created = db.nulls_minted() - nulls_before;
        profile.total_ns = run_start.elapsed().as_nanos() as u64;
        profile.facts_derived = stats.facts_derived as u64;
        profile.iterations = stats.iterations as u64;
        profile.nulls_created = stats.nulls_created;
        profile.unifications = stats.unifications as u64;
        profile.intern_hits = crate::intern::stats()
            .hits
            .saturating_sub(intern_before.hits);
        if let Some(collector) = &self.config.collector {
            profile.emit(&Obs::new(Some(collector.as_ref())));
        }
        Ok(WarmRun {
            stats,
            profile,
            trace,
            termination,
            strata_skipped,
        })
    }

    /// Evaluate one stratum to stability (or an early governed stop):
    /// plain rules to a semi-naive fixpoint, then aggregate rules, then
    /// EGDs, repeating until a pass changes nothing.
    #[allow(clippy::too_many_arguments)]
    fn run_stratum(
        &self,
        rules: &[(usize, &Rule)],
        db: &mut Database,
        stats: &mut EvalStats,
        trace: &mut Vec<TraceEntry>,
        violations: &mut Vec<EgdViolation>,
        program: &Program,
        profile: &mut EngineProfile,
        stratum_idx: usize,
        governor: &Governor,
        nulls_base: u64,
    ) -> Result<StratumEnd, EngineError> {
        let plain: Vec<(usize, &Rule)> = rules
            .iter()
            .filter(|(_, r)| !r.has_aggregate() && matches!(r.head, Head::Atoms(_)))
            .copied()
            .collect();
        let agg: Vec<(usize, &Rule)> = rules
            .iter()
            .filter(|(_, r)| r.has_aggregate() && matches!(r.head, Head::Atoms(_)))
            .copied()
            .collect();
        let egds: Vec<(usize, &Rule)> = rules
            .iter()
            .filter(|(_, r)| matches!(r.head, Head::Equality(_, _)))
            .copied()
            .collect();

        // Chase memoization table, per stratum: (rule idx, frontier
        // binding) → invented nulls for the rule's existential vars.
        let mut skolem: HashMap<(usize, Vec<Value>), HashMap<String, Value>> = HashMap::new();

        loop {
            profile.strata[stratum_idx].passes += 1;

            // 1. plain rules to fixpoint (semi-naive)
            let end = self.fixpoint_plain(
                &plain,
                db,
                &mut skolem,
                stats,
                trace,
                program,
                profile,
                stratum_idx,
                governor,
                nulls_base,
                None,
                None,
            )?;
            if let StratumEnd::Stopped(t) = end {
                return Ok(StratumEnd::Stopped(t));
            }

            // 2. aggregate rules, one pass
            let mut changed = false;
            for &(idx, rule) in &agg {
                changed |= isolate_rule(program, idx, || {
                    self.apply_aggregate_rule(idx, rule, db, stats, trace, profile)
                })?;
            }

            // 3. EGDs. Substitutions must also rewrite the skolem memo
            // table, otherwise plain rules would re-mint the replaced
            // null on the next pass and the stratum would never settle.
            for &(idx, rule) in &egds {
                let subs = isolate_rule(program, idx, || {
                    self.apply_egd(idx, rule, db, stats, violations, profile)
                })?;
                if !subs.is_empty() {
                    changed = true;
                    for (from, to) in &subs {
                        for nulls in skolem.values_mut() {
                            for v in nulls.values_mut() {
                                if let Value::Null(n) = v {
                                    if n == from {
                                        *v = to.clone();
                                    }
                                }
                            }
                        }
                    }
                }
            }

            if !changed {
                return Ok(StratumEnd::Complete);
            }
            stats.iterations += 1;
            if stats.iterations > self.config.max_iterations {
                return Err(EngineError::ResourceLimit {
                    which: BudgetKind::Iterations,
                    stratum: stratum_idx,
                    rule: None,
                    facts_so_far: stats.facts_derived,
                    iterations_so_far: stats.iterations,
                    limit: self.config.max_iterations,
                });
            }
            // Between passes the governor gets a look too: aggregate/EGD
            // passes can loop without ever re-entering the round loop.
            if governor.active() {
                let rounds = profile.strata[stratum_idx].rounds.len();
                let nulls = db.nulls_minted().saturating_sub(nulls_base);
                if let Some(stop) = governor.stop_reason(stats.facts_derived, nulls, rounds) {
                    return Ok(StratumEnd::Stopped(stop_termination(
                        stop,
                        stratum_idx,
                        None,
                    )));
                }
            }
        }
    }

    /// Semi-naive fixpoint over plain (non-aggregate, non-EGD) rules.
    /// Returns early — with a sound partial delta already inserted — when
    /// the governor reports a budget trip or cancellation.
    ///
    /// `seed` chooses how the first round runs: `None` treats everything
    /// as delta (full evaluation — the cold path), `Some(rows)` runs
    /// delta-focused plans against just those rows (the warm-start path,
    /// see [`Engine::run_warm`]). When a `derived` sink is supplied, every
    /// newly inserted row is also appended there, so a warm driver can
    /// carry the deltas of lower strata into higher ones.
    #[allow(clippy::too_many_arguments)]
    fn fixpoint_plain(
        &self,
        rules: &[(usize, &Rule)],
        db: &mut Database,
        skolem: &mut HashMap<(usize, Vec<Value>), HashMap<String, Value>>,
        stats: &mut EvalStats,
        trace: &mut Vec<TraceEntry>,
        program: &Program,
        profile: &mut EngineProfile,
        stratum_idx: usize,
        governor: &Governor,
        nulls_base: u64,
        seed: Option<DeltaRows>,
        mut derived: Option<&mut DeltaRows>,
    ) -> Result<StratumEnd, EngineError> {
        // Delta tracking: predicate → set of rows added in the previous round.
        let mut delta: Option<DeltaRows> = seed;

        loop {
            // Governed stop check, once per round. With no budget and no
            // cancel token this is a single boolean test.
            if governor.active() {
                let rounds = profile.strata[stratum_idx].rounds.len();
                let nulls = db.nulls_minted().saturating_sub(nulls_base);
                if let Some(stop) = governor.stop_reason(stats.facts_derived, nulls, rounds) {
                    return Ok(StratumEnd::Stopped(stop_termination(
                        stop,
                        stratum_idx,
                        None,
                    )));
                }
            }

            let round_start = Instant::now();

            // Phase 1 — plan. One plan per (rule, delta-focus) pass, and
            // every hash index those plans will probe is built while we
            // still hold `&mut db`. From here until the merge the database
            // is frozen, which is what makes lock-free sharing sound.
            let plans: Vec<Vec<JoinPlan>> = rules
                .iter()
                .map(|&(_, rule)| self.round_plans(rule, db, delta.as_ref()))
                .collect();
            if self.config.join_mode == JoinMode::Indexed {
                for (plan_set, &(_, rule)) in plans.iter().zip(rules) {
                    for plan in plan_set {
                        if plan.dead {
                            // Semi-join prune: the plan reads an empty
                            // relation and cannot bind; skip its index
                            // builds here and its joins in phase 2.
                            profile.planner_prunes += 1;
                            continue;
                        }
                        if plan.reordered {
                            profile.planner_reorders += 1;
                        }
                        for (pred, bound) in plan.index_needs(rule) {
                            if db.relation(pred).is_some() {
                                db.relation_mut(pred).ensure_index(bound);
                            }
                        }
                    }
                }
            }

            // Phase 2 — evaluate every rule's joins against the frozen
            // database, fanning out across scoped threads when configured.
            if self.config.threads.min(rules.len()) > 1 {
                profile.parallel_rounds += 1;
            }
            let mut results = self.evaluate_rules(rules, &plans, db, delta.as_ref(), program);

            // Phase 3 — merge, strictly in rule order: route bindings,
            // instantiate heads (null minting stays sequential and
            // deterministic), then apply the buffered inserts. Errors
            // surface in rule order, exactly as sequential evaluation
            // would report them.
            let mut new_facts: Vec<(usize, Fact, Binding)> = Vec::new();
            for (slot, &(idx, rule)) in rules.iter().enumerate() {
                // A `None` slot means a cancelled worker skipped the rule;
                // the governor check at the next round start reports it.
                let Some(result) = results[slot].take() else {
                    continue;
                };
                let (mut bindings, counters) = result?;
                if let Some(router) = &self.config.router {
                    router.order_bindings(rule, &mut bindings);
                }
                let rp = &mut profile.rules[idx];
                rp.join_candidates += counters.candidates;
                rp.firings += bindings.len() as u64;
                profile.index_probes += counters.probes;
                profile.index_scans += counters.scans;
                isolate_rule(program, idx, || {
                    for b in &bindings {
                        self.head_facts(idx, rule, b, db, skolem, &mut new_facts)?;
                    }
                    Ok(())
                })?;
            }

            let mut next_delta: DeltaRows = HashMap::new();
            let mut inserted = 0u64;
            let mut stopped: Option<Termination> = None;
            for (idx, fact, binding) in new_facts {
                let Fact { pred, args } = fact;
                if let Some(row) = db.insert_shared(&pred, args) {
                    inserted += 1;
                    stats.facts_derived += 1;
                    profile.rules[idx].facts_derived += 1;
                    if stats.facts_derived > self.config.max_facts {
                        return Err(EngineError::ResourceLimit {
                            which: BudgetKind::Facts,
                            stratum: stratum_idx,
                            rule: Some(idx),
                            facts_so_far: stats.facts_derived,
                            iterations_so_far: stats.iterations,
                            limit: self.config.max_facts,
                        });
                    }
                    if self.config.trace {
                        trace.push(TraceEntry {
                            fact: Fact::new(pred.clone(), (*row).clone()),
                            rule: rule_label(program, idx),
                            binding: binding.into_iter().collect(),
                        });
                    }
                    if let Some(sink) = derived.as_deref_mut() {
                        sink.entry(pred.clone()).or_default().push(row.clone());
                    }
                    next_delta.entry(pred).or_default().push(row);
                    // Soft facts budget: stop inserting mid-round so the
                    // partial result stays close to the cap. The facts
                    // already inserted are sound derivations and are kept.
                    if governor.active() {
                        if let Some(cap) = governor.budget().max_facts {
                            if stats.facts_derived >= cap {
                                stopped = Some(Termination::BudgetExceeded {
                                    which: BudgetKind::Facts,
                                    stratum: stratum_idx,
                                    rule: Some(rule_label(program, idx)),
                                });
                                break;
                            }
                        }
                    }
                }
            }

            let s = &mut profile.strata[stratum_idx];
            s.rounds.push(RoundProfile {
                round: s.rounds.len(),
                delta: inserted,
                dur_ns: round_start.elapsed().as_nanos() as u64,
            });
            if let Some(m) = &self.config.metrics {
                m.set_gauge("engine.stratum", stratum_idx as f64);
                m.set_gauge("engine.round", (s.rounds.len() - 1) as f64);
                m.set_gauge("engine.delta_rows", inserted as f64);
                m.observe_rate("engine.facts_per_sec", stats.facts_derived as f64);
            }
            if let Some(t) = stopped {
                return Ok(StratumEnd::Stopped(t));
            }

            stats.iterations += 1;
            if stats.iterations > self.config.max_iterations {
                return Err(EngineError::ResourceLimit {
                    which: BudgetKind::Iterations,
                    stratum: stratum_idx,
                    rule: None,
                    facts_so_far: stats.facts_derived,
                    iterations_so_far: stats.iterations,
                    limit: self.config.max_iterations,
                });
            }
            if inserted == 0 {
                return Ok(StratumEnd::Complete);
            }
            delta = Some(next_delta);
        }
    }

    /// Plans for one rule for the current round: a single full-evaluation
    /// plan on the first round, otherwise one delta-focused plan per
    /// positive body literal whose predicate actually received new rows
    /// (an empty delta can produce no bindings, so those passes are
    /// skipped outright).
    fn round_plans(&self, rule: &Rule, db: &Database, delta: Option<&DeltaRows>) -> Vec<JoinPlan> {
        let reference = self.config.join_mode == JoinMode::Reference;
        match delta {
            None => vec![if reference {
                identity_plan(rule, None)
            } else {
                plan_rule(rule, db, None, 0)
            }],
            Some(d) => {
                let mut plans = Vec::new();
                for (i, lit) in rule.body.iter().enumerate() {
                    let Literal::Pos(atom) = lit else { continue };
                    let Some(rows) = d.get(&atom.pred) else {
                        continue;
                    };
                    if rows.is_empty() {
                        continue;
                    }
                    plans.push(if reference {
                        identity_plan(rule, Some(i))
                    } else {
                        plan_rule(rule, db, Some(i), rows.len())
                    });
                }
                plans
            }
        }
    }

    /// Evaluate every rule's joins for one round against a frozen
    /// database. Returns one slot per rule: the rule's bindings and join
    /// counters, the error it produced, or `None` when a cancellation
    /// made a worker skip it.
    ///
    /// With `threads > 1` the rules fan out round-robin over scoped
    /// worker threads. Workers only *read* the database (index building
    /// happened in the planning phase) and write into disjoint slots, so
    /// no synchronization beyond the scope join is needed — and because
    /// the caller merges slots in rule order, the derived fact sequence
    /// is identical to sequential evaluation.
    #[allow(clippy::type_complexity)]
    fn evaluate_rules(
        &self,
        rules: &[(usize, &Rule)],
        plans: &[Vec<JoinPlan>],
        db: &Database,
        delta: Option<&DeltaRows>,
        program: &Program,
    ) -> Vec<Option<Result<(Vec<Binding>, JoinCounters), EngineError>>> {
        let workers = self.config.threads.min(rules.len());
        if workers <= 1 {
            return rules
                .iter()
                .enumerate()
                .map(|(slot, &(idx, rule))| {
                    Some(self.eval_one_rule(program, idx, rule, &plans[slot], db, delta))
                })
                .collect();
        }
        let mut results: Vec<Option<Result<(Vec<Binding>, JoinCounters), EngineError>>> =
            Vec::new();
        results.resize_with(rules.len(), || None);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let cancel = self.config.cancel.clone();
                handles.push(scope.spawn(move || {
                    let mut chunk = Vec::new();
                    let mut slot = w;
                    while slot < rules.len() {
                        if cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
                            break;
                        }
                        let (idx, rule) = rules[slot];
                        chunk.push((
                            slot,
                            self.eval_one_rule(program, idx, rule, &plans[slot], db, delta),
                        ));
                        slot += workers;
                    }
                    chunk
                }));
            }
            for (w, handle) in handles.into_iter().enumerate() {
                match handle.join() {
                    Ok(chunk) => {
                        for (slot, r) in chunk {
                            results[slot] = Some(r);
                        }
                    }
                    Err(payload) => {
                        // `eval_one_rule` already catches rule panics, so a
                        // worker dying here is out-of-band; surface it as an
                        // internal error on its first unfinished rule rather
                        // than silently dropping derivations.
                        let message = panic_message(payload.as_ref());
                        if let Some(slot) = (w..rules.len())
                            .step_by(workers)
                            .find(|s| results[*s].is_none())
                        {
                            results[slot] = Some(Err(EngineError::Internal {
                                rule: rule_label(program, rules[slot].0),
                                message,
                            }));
                        }
                    }
                }
            }
        });
        results
    }

    /// All join passes of one rule for the round, isolated against panics
    /// at the rule boundary (a faulty builtin cannot take down the round —
    /// or, in parallel mode, its worker thread).
    fn eval_one_rule(
        &self,
        program: &Program,
        idx: usize,
        rule: &Rule,
        plans: &[JoinPlan],
        db: &Database,
        delta: Option<&DeltaRows>,
    ) -> Result<(Vec<Binding>, JoinCounters), EngineError> {
        isolate_rule(program, idx, || {
            let mut counters = JoinCounters::default();
            let mut bindings = Vec::new();
            for plan in plans {
                if plan.dead {
                    // Pruned in planning: an empty input relation makes
                    // this pass vacuous.
                    continue;
                }
                let mut binding = Binding::new();
                self.join_step(
                    rule,
                    plan,
                    0,
                    db,
                    delta,
                    &mut binding,
                    &mut bindings,
                    idx,
                    &mut counters,
                )?;
            }
            Ok((bindings, counters))
        })
    }

    /// Recursive join over a plan's steps. A positive literal probes the
    /// prebuilt hash index when the plan carries a bound mask (falling
    /// back to a linear scan if the index is missing or stale), scans the
    /// delta rows when it is the focused literal, and scans the relation
    /// otherwise. Negation/condition/assignment steps behave as in the
    /// classic nested-loop evaluator — the planner only ever schedules
    /// them once their variables are bound.
    #[allow(clippy::too_many_arguments)]
    fn join_step(
        &self,
        rule: &Rule,
        plan: &JoinPlan,
        step_idx: usize,
        db: &Database,
        delta: Option<&DeltaRows>,
        binding: &mut Binding,
        out: &mut Vec<Binding>,
        rule_idx: usize,
        counters: &mut JoinCounters,
    ) -> Result<(), EngineError> {
        let Some(step) = plan.steps.get(step_idx) else {
            out.push(binding.clone());
            return Ok(());
        };
        match &rule.body[step.lit] {
            Literal::Pos(atom) => {
                if plan.focus == Some(step.lit) {
                    let rows: &[Row] = delta
                        .and_then(|d| d.get(&atom.pred))
                        .map(|v| v.as_slice())
                        .unwrap_or(&[]);
                    for row in rows {
                        if row.len() != atom.args.len() {
                            continue;
                        }
                        counters.candidates += 1;
                        if let Some(undo) = try_match(atom, row, binding) {
                            self.join_step(
                                rule,
                                plan,
                                step_idx + 1,
                                db,
                                delta,
                                binding,
                                out,
                                rule_idx,
                                counters,
                            )?;
                            undo_binding(binding, undo);
                        }
                    }
                    return Ok(());
                }
                let Some(rel) = db.relation(&atom.pred) else {
                    return Ok(());
                };
                // Assemble the probe key from the plan's static mask. Every
                // masked position is bound by construction; a gap (possible
                // only for rules the safety check would reject) downgrades
                // to a scan instead of mis-probing.
                let key: Option<Vec<Value>> = if step.bound.is_empty() {
                    None
                } else {
                    step.bound
                        .iter()
                        .map(|&i| match &atom.args[i] {
                            Term::Const(v) => Some(v.clone()),
                            Term::Var(v) => binding.get(v).cloned(),
                        })
                        .collect()
                };
                let postings = match &key {
                    Some(k) => {
                        counters.probes += 1;
                        rel.probe(&step.bound, k)
                    }
                    None => None,
                };
                match postings {
                    Some(hits) => {
                        for &ri in hits {
                            let row = rel.row(ri as usize);
                            if row.len() != atom.args.len() {
                                continue;
                            }
                            counters.candidates += 1;
                            if let Some(undo) = try_match(atom, row, binding) {
                                self.join_step(
                                    rule,
                                    plan,
                                    step_idx + 1,
                                    db,
                                    delta,
                                    binding,
                                    out,
                                    rule_idx,
                                    counters,
                                )?;
                                undo_binding(binding, undo);
                            }
                        }
                    }
                    None => {
                        counters.scans += 1;
                        for row in rel.iter() {
                            if row.len() != atom.args.len() {
                                continue;
                            }
                            counters.candidates += 1;
                            if let Some(undo) = try_match(atom, row, binding) {
                                self.join_step(
                                    rule,
                                    plan,
                                    step_idx + 1,
                                    db,
                                    delta,
                                    binding,
                                    out,
                                    rule_idx,
                                    counters,
                                )?;
                                undo_binding(binding, undo);
                            }
                        }
                    }
                }
                Ok(())
            }
            Literal::Neg(atom) => {
                let mut args: Vec<Value> = Vec::with_capacity(atom.args.len());
                for t in &atom.args {
                    match t {
                        Term::Const(v) => args.push(v.clone()),
                        Term::Var(v) => match binding.get(v) {
                            Some(val) => args.push(val.clone()),
                            // The safety check guarantees negated variables
                            // are bound; should one slip through regardless,
                            // the negation is undecidable for this binding
                            // and the branch derives nothing.
                            None => return Ok(()),
                        },
                    }
                }
                let present = db
                    .relation(&atom.pred)
                    .map(|r| r.contains(&args))
                    .unwrap_or(false);
                if !present {
                    self.join_step(
                        rule,
                        plan,
                        step_idx + 1,
                        db,
                        delta,
                        binding,
                        out,
                        rule_idx,
                        counters,
                    )?;
                }
                Ok(())
            }
            Literal::Cond(expr) => {
                match eval_expr(expr, binding) {
                    Ok(v) if v.is_true() => {
                        self.join_step(
                            rule,
                            plan,
                            step_idx + 1,
                            db,
                            delta,
                            binding,
                            out,
                            rule_idx,
                            counters,
                        )?;
                    }
                    Ok(_) => {}
                    Err(EvalError::Undefined(_)) => {}
                    Err(e) => {
                        return Err(EngineError::Eval {
                            rule: rule_idx,
                            error: e,
                        })
                    }
                }
                Ok(())
            }
            Literal::Let { var, expr } => {
                match eval_expr(expr, binding) {
                    Ok(v) => {
                        if let Some(existing) = binding.get(var) {
                            // Let on a bound variable acts as equality filter.
                            if *existing == v {
                                self.join_step(
                                    rule,
                                    plan,
                                    step_idx + 1,
                                    db,
                                    delta,
                                    binding,
                                    out,
                                    rule_idx,
                                    counters,
                                )?;
                            }
                        } else {
                            binding.insert(var.clone(), v);
                            self.join_step(
                                rule,
                                plan,
                                step_idx + 1,
                                db,
                                delta,
                                binding,
                                out,
                                rule_idx,
                                counters,
                            )?;
                            binding.remove(var);
                        }
                    }
                    Err(EvalError::Undefined(_)) => {}
                    Err(e) => {
                        return Err(EngineError::Eval {
                            rule: rule_idx,
                            error: e,
                        })
                    }
                }
                Ok(())
            }
            Literal::Agg { .. } => {
                // Aggregate rules never reach this path.
                Err(EngineError::MalformedAggregateRule {
                    rule: rule_idx,
                    message: "aggregate literal in plain-rule evaluation".into(),
                })
            }
        }
    }

    /// Enumerate all body bindings of a rule against the current database
    /// (no delta focus): plan, build the indexes the plan probes, join.
    /// Used by the aggregate and EGD paths, which re-evaluate in full.
    fn rule_bindings_full(
        &self,
        rule: &Rule,
        db: &mut Database,
        rule_idx: usize,
        profile: &mut EngineProfile,
    ) -> Result<Vec<Binding>, EngineError> {
        let plan = if self.config.join_mode == JoinMode::Reference {
            identity_plan(rule, None)
        } else {
            plan_rule(rule, db, None, 0)
        };
        if plan.dead {
            // Semi-join prune: some positive literal reads an empty
            // relation, so there are no bindings to enumerate.
            profile.planner_prunes += 1;
            return Ok(Vec::new());
        }
        if plan.reordered {
            profile.planner_reorders += 1;
        }
        for (pred, bound) in plan.index_needs(rule) {
            if db.relation(pred).is_some() {
                db.relation_mut(pred).ensure_index(bound);
            }
        }
        let mut counters = JoinCounters::default();
        let mut out = Vec::new();
        let mut binding = Binding::new();
        self.join_step(
            rule,
            &plan,
            0,
            db,
            None,
            &mut binding,
            &mut out,
            rule_idx,
            &mut counters,
        )?;
        profile.rules[rule_idx].join_candidates += counters.candidates;
        profile.index_probes += counters.probes;
        profile.index_scans += counters.scans;
        Ok(out)
    }

    /// Instantiate head atoms for a binding, minting nulls for existentials.
    fn head_facts(
        &self,
        rule_idx: usize,
        rule: &Rule,
        binding: &Binding,
        db: &mut Database,
        skolem: &mut HashMap<(usize, Vec<Value>), HashMap<String, Value>>,
        out: &mut Vec<(usize, Fact, Binding)>,
    ) -> Result<(), EngineError> {
        let Head::Atoms(atoms) = &rule.head else {
            return Ok(());
        };
        let ex = rule.existential_vars();
        let mut full_binding = binding.clone();
        if !ex.is_empty() {
            // frontier = universally quantified head variables, in a stable order
            let mut frontier_vars: BTreeSet<&str> = BTreeSet::new();
            for a in atoms {
                for v in a.vars() {
                    if !ex.contains(v) {
                        frontier_vars.insert(v);
                    }
                }
            }
            let key: Vec<Value> = frontier_vars
                .iter()
                .map(|v| binding.get(*v).cloned().unwrap_or(Value::Bool(false)))
                .collect();
            use std::collections::hash_map::Entry;
            let nulls = match skolem.entry((rule_idx, key)) {
                Entry::Occupied(o) => o.into_mut(),
                Entry::Vacant(slot) => {
                    // Restricted-chase satisfaction check: if the database
                    // already contains a witness for this frontier (for
                    // single-atom heads), adopt its values instead of
                    // minting fresh nulls — this makes re-running a
                    // saturated database a no-op.
                    let witness = if atoms.len() == 1 {
                        find_existential_witness(&atoms[0], binding, &ex, db)
                    } else {
                        None
                    };
                    slot.insert(witness.unwrap_or_else(|| {
                        ex.iter()
                            .map(|v| (v.clone(), db.fresh_null()))
                            .collect::<HashMap<_, _>>()
                    }))
                }
            };
            for (v, n) in nulls {
                full_binding.insert(v.clone(), n.clone());
            }
        }
        for atom in atoms {
            let mut args: Vec<Value> = Vec::with_capacity(atom.args.len());
            for t in &atom.args {
                match t {
                    Term::Const(v) => args.push(v.clone()),
                    Term::Var(v) => match full_binding.get(v) {
                        Some(val) => args.push(val.clone()),
                        None => {
                            return Err(EngineError::Unsafe {
                                rule: rule_idx,
                                message: format!(
                                    "head variable {v} is neither bound by the body nor existential"
                                ),
                            })
                        }
                    },
                }
            }
            out.push((
                rule_idx,
                Fact::new(atom.pred.clone(), args),
                binding.clone(),
            ));
        }
        Ok(())
    }

    /// Evaluate one aggregate rule. Returns true if new facts were derived.
    #[allow(clippy::too_many_arguments)]
    fn apply_aggregate_rule(
        &self,
        rule_idx: usize,
        rule: &Rule,
        db: &mut Database,
        stats: &mut EvalStats,
        trace: &mut Vec<TraceEntry>,
        profile: &mut EngineProfile,
    ) -> Result<bool, EngineError> {
        let Some(first_agg) = rule
            .body
            .iter()
            .position(|l| matches!(l, Literal::Agg { .. }))
        else {
            // apply_aggregate_rule is only called for rules that carry an
            // aggregate; a rule without one has nothing to do here.
            return Ok(false);
        };
        let (prefix, suffix) = rule.body.split_at(first_agg);

        // All bindings of the prefix.
        let prefix_rule = Rule {
            head: rule.head.clone(),
            body: prefix.to_vec(),
            label: rule.label.clone(),
        };
        let bindings = self.rule_bindings_full(&prefix_rule, db, rule_idx, profile)?;
        profile.rules[rule_idx].firings += bindings.len() as u64;

        // Group key: prefix-bound variables appearing in the head.
        let Head::Atoms(atoms) = &rule.head else {
            return Err(EngineError::MalformedAggregateRule {
                rule: rule_idx,
                message: "aggregates are not allowed in EGDs".into(),
            });
        };
        let ex = rule.existential_vars();
        let agg_vars: HashSet<&str> = suffix
            .iter()
            .filter_map(|l| match l {
                Literal::Agg { var, .. } | Literal::Let { var, .. } => Some(var.as_str()),
                _ => None,
            })
            .collect();
        let mut group_vars: BTreeSet<String> = BTreeSet::new();
        for a in atoms {
            for v in a.vars() {
                if !ex.contains(v) && !agg_vars.contains(v) {
                    group_vars.insert(v.to_string());
                }
            }
        }

        // Aggregate states per group.
        struct AggState {
            // per aggregate literal: contributor → extremal contribution
            per_agg: Vec<HashMap<Vec<Value>, Value>>,
            rep_binding: Binding,
        }
        let aggs: Vec<(&String, &AggFunc, &Expr, &Vec<Expr>)> = suffix
            .iter()
            .filter_map(|l| match l {
                Literal::Agg {
                    var,
                    func,
                    arg,
                    contributors,
                } => Some((var, func, arg, contributors)),
                _ => None,
            })
            .collect();

        let mut groups: HashMap<Vec<Value>, AggState> = HashMap::new();
        for b in &bindings {
            let key: Vec<Value> = group_vars
                .iter()
                .map(|v| b.get(v).cloned().unwrap_or(Value::Bool(false)))
                .collect();
            let state = groups.entry(key).or_insert_with(|| AggState {
                per_agg: vec![HashMap::new(); aggs.len()],
                rep_binding: b.clone(),
            });
            for (ai, (_, func, arg, contributors)) in aggs.iter().enumerate() {
                let contrib_key: Result<Vec<Value>, EvalError> =
                    contributors.iter().map(|c| eval_expr(c, b)).collect();
                let contrib_key = match contrib_key {
                    Ok(k) => k,
                    Err(EvalError::Undefined(_)) => continue,
                    Err(e) => {
                        return Err(EngineError::Eval {
                            rule: rule_idx,
                            error: e,
                        })
                    }
                };
                let contribution = match eval_expr(arg, b) {
                    Ok(v) => v,
                    Err(EvalError::Undefined(_)) => continue,
                    Err(e) => {
                        return Err(EngineError::Eval {
                            rule: rule_idx,
                            error: e,
                        })
                    }
                };
                let slot = state.per_agg[ai].entry(contrib_key);
                use std::collections::hash_map::Entry;
                match slot {
                    Entry::Vacant(v) => {
                        v.insert(contribution);
                    }
                    Entry::Occupied(mut o) => {
                        let keep_new = match func {
                            // monotone-increasing aggregates keep the max
                            AggFunc::MSum | AggFunc::MCount | AggFunc::MProd | AggFunc::MMax => {
                                contribution > *o.get()
                            }
                            AggFunc::MMin => contribution < *o.get(),
                            // munion merges below; store a set union here
                            AggFunc::MUnion => {
                                let merged = merge_union(o.get(), &contribution);
                                o.insert(merged);
                                false
                            }
                        };
                        if keep_new {
                            o.insert(contribution);
                        }
                    }
                }
            }
        }

        // Finalize groups: compute aggregate values, run the suffix
        // conditions/assignments, emit head facts.
        let mut changed = false;
        let mut to_insert: Vec<(Fact, Binding)> = Vec::new();
        'group: for (key, state) in groups {
            let mut b = Binding::new();
            for (v, val) in group_vars.iter().zip(key.iter()) {
                b.insert(v.clone(), val.clone());
            }
            // carry non-group prefix bindings from a representative so that
            // suffix expressions may refer to them (deterministic only if
            // they are functionally determined by the group key).
            for (k, v) in &state.rep_binding {
                b.entry(k.clone()).or_insert_with(|| v.clone());
            }

            let mut agg_iter = state.per_agg.into_iter();
            for lit in suffix {
                match lit {
                    Literal::Agg { var, func, .. } => {
                        // per_agg is built from the same suffix scan, so the
                        // iterators stay aligned; a mismatch means the group
                        // carries no state for this aggregate and is dropped.
                        let Some(contributions) = agg_iter.next() else {
                            continue 'group;
                        };
                        let value = finalize_aggregate(*func, contributions.values());
                        b.insert(var.clone(), value);
                    }
                    Literal::Cond(expr) => match eval_expr(expr, &b) {
                        Ok(v) if v.is_true() => {}
                        Ok(_) | Err(EvalError::Undefined(_)) => continue 'group,
                        Err(e) => {
                            return Err(EngineError::Eval { rule: rule_idx, error: e })
                        }
                    },
                    Literal::Let { var, expr } => match eval_expr(expr, &b) {
                        Ok(v) => {
                            if let Some(existing) = b.get(var) {
                                if *existing != v {
                                    continue 'group;
                                }
                            } else {
                                b.insert(var.clone(), v);
                            }
                        }
                        Err(EvalError::Undefined(_)) => continue 'group,
                        Err(e) => {
                            return Err(EngineError::Eval { rule: rule_idx, error: e })
                        }
                    },
                    other => {
                        return Err(EngineError::MalformedAggregateRule {
                            rule: rule_idx,
                            message: format!(
                                "literal {other:?} after an aggregate; only conditions and assignments are allowed"
                            ),
                        })
                    }
                }
            }
            for atom in atoms {
                let args: Result<Vec<Value>, EngineError> = atom
                    .args
                    .iter()
                    .map(|t| match t {
                        Term::Const(v) => Ok(v.clone()),
                        Term::Var(v) => b.get(v).cloned().ok_or_else(|| {
                            EngineError::MalformedAggregateRule {
                                rule: rule_idx,
                                message: format!(
                                    "head variable {v} of an aggregate rule must be a group key or an aggregate result"
                                ),
                            }
                        }),
                    })
                    .collect();
                to_insert.push((Fact::new(atom.pred.clone(), args?), b.clone()));
            }
        }
        for (fact, b) in to_insert {
            let Fact { pred, args } = fact;
            if let Some(row) = db.insert_shared(&pred, args) {
                changed = true;
                stats.facts_derived += 1;
                profile.rules[rule_idx].facts_derived += 1;
                if self.config.trace {
                    let label = rule
                        .label
                        .clone()
                        .unwrap_or_else(|| format!("rule#{rule_idx}"));
                    trace.push(TraceEntry {
                        fact: Fact::new(pred, (*row).clone()),
                        rule: label,
                        binding: b.into_iter().collect(),
                    });
                }
            }
        }
        Ok(changed)
    }

    /// Apply one EGD rule. Null/value bindings are unified by rewriting the
    /// database; constant clashes are collected as violations. Returns the
    /// substitutions performed, in order.
    #[allow(clippy::too_many_arguments)]
    fn apply_egd(
        &self,
        rule_idx: usize,
        rule: &Rule,
        db: &mut Database,
        stats: &mut EvalStats,
        violations: &mut Vec<EgdViolation>,
        profile: &mut EngineProfile,
    ) -> Result<Vec<(crate::value::NullId, Value)>, EngineError> {
        let Head::Equality(lt, rt) = &rule.head else {
            return Ok(Vec::new());
        };
        let mut subs: Vec<(crate::value::NullId, Value)> = Vec::new();
        // Re-evaluate until no more unifications: each rewrite can expose
        // new bindings.
        loop {
            let bindings = self.rule_bindings_full(rule, db, rule_idx, profile)?;
            profile.rules[rule_idx].firings += bindings.len() as u64;
            let mut did_unify = false;
            for b in bindings {
                let resolve = |t: &Term| -> Option<Value> {
                    match t {
                        Term::Const(v) => Some(v.clone()),
                        Term::Var(v) => b.get(v).cloned(),
                    }
                };
                // EGD safety guarantees both sides are bound; an unbound
                // side (impossible for checked rules) contributes nothing.
                let (Some(l), Some(r)) = (resolve(lt), resolve(rt)) else {
                    continue;
                };
                if l == r {
                    continue;
                }
                match (&l, &r) {
                    (Value::Null(n), other) => {
                        db.substitute_null(*n, other);
                        subs.push((*n, other.clone()));
                        stats.unifications += 1;
                        profile.rules[rule_idx].unifications += 1;
                        did_unify = true;
                        break; // bindings are stale after a rewrite
                    }
                    (other, Value::Null(n)) => {
                        db.substitute_null(*n, other);
                        subs.push((*n, other.clone()));
                        stats.unifications += 1;
                        profile.rules[rule_idx].unifications += 1;
                        did_unify = true;
                        break;
                    }
                    _ => {
                        let viol = EgdViolation {
                            rule_label: rule.label.clone(),
                            left: l.clone(),
                            right: r.clone(),
                        };
                        if self.config.egd_policy == EgdPolicy::FailFast {
                            return Err(EngineError::EgdViolation(viol));
                        }
                        if !violations.contains(&viol) {
                            violations.push(viol);
                        }
                    }
                }
            }
            if !did_unify {
                break;
            }
        }
        Ok(subs)
    }
}

/// Restricted-chase satisfaction check: look for an existing fact of the
/// head atom matching the binding on its universal positions; if found,
/// read the existential variables' values off it (requiring consistency
/// when an existential repeats). Returns the witness assignment.
fn find_existential_witness(
    atom: &Atom,
    binding: &Binding,
    ex: &BTreeSet<String>,
    db: &mut Database,
) -> Option<HashMap<String, Value>> {
    db.relation(&atom.pred)?;
    let pattern: Vec<Option<Value>> = atom
        .args
        .iter()
        .map(|t| match t {
            Term::Const(v) => Some(v.clone()),
            Term::Var(v) if ex.contains(v) => None,
            Term::Var(v) => binding.get(v).cloned(),
        })
        .collect();
    let rel = db.relation_mut(&atom.pred);
    'rows: for idx in rel.select_indices(&pattern) {
        let row = rel.row(idx);
        if row.len() != atom.args.len() {
            continue;
        }
        let mut witness: HashMap<String, Value> = HashMap::new();
        for (t, v) in atom.args.iter().zip(row.iter()) {
            if let Term::Var(name) = t {
                if ex.contains(name) {
                    match witness.get(name) {
                        Some(existing) if existing != v => continue 'rows,
                        Some(_) => {}
                        None => {
                            witness.insert(name.clone(), v.clone());
                        }
                    }
                }
            }
        }
        return Some(witness);
    }
    None
}

/// Match a row against an atom's terms under `binding`; on success returns
/// the list of variables newly bound (to undo afterwards).
fn try_match(atom: &Atom, row: &[Value], binding: &mut Binding) -> Option<Vec<String>> {
    let mut newly = Vec::new();
    for (t, v) in atom.args.iter().zip(row.iter()) {
        match t {
            Term::Const(c) => {
                if c != v {
                    undo_binding(binding, newly);
                    return None;
                }
            }
            Term::Var(name) => match binding.get(name) {
                Some(bound) => {
                    if bound != v {
                        undo_binding(binding, newly);
                        return None;
                    }
                }
                None => {
                    binding.insert(name.clone(), v.clone());
                    newly.push(name.clone());
                }
            },
        }
    }
    Some(newly)
}

fn undo_binding(binding: &mut Binding, newly: Vec<String>) {
    for name in newly {
        binding.remove(&name);
    }
}

/// Merge two values for `munion` contributor updates.
fn merge_union(a: &Value, b: &Value) -> Value {
    match (a, b) {
        (Value::Set(x), Value::Set(y)) => {
            let mut s = (**x).clone();
            s.extend(y.iter().cloned());
            Value::Set(Arc::new(s))
        }
        (Value::Set(x), other) => {
            let mut s = (**x).clone();
            s.insert(other.clone());
            Value::Set(Arc::new(s))
        }
        (other, Value::Set(y)) => {
            let mut s = (**y).clone();
            s.insert(other.clone());
            Value::Set(Arc::new(s))
        }
        (x, y) => Value::set([x.clone(), y.clone()]),
    }
}

/// Fold deduplicated contributions into the aggregate result.
fn finalize_aggregate<'a>(func: AggFunc, contributions: impl Iterator<Item = &'a Value>) -> Value {
    match func {
        AggFunc::MCount => Value::Int(contributions.count() as i64),
        AggFunc::MSum => {
            let mut int_sum: i64 = 0;
            let mut float_sum: f64 = 0.0;
            let mut any_float = false;
            for c in contributions {
                match c {
                    Value::Int(i) => int_sum = int_sum.wrapping_add(*i),
                    Value::Float(f) => {
                        any_float = true;
                        float_sum += f;
                    }
                    _ => {}
                }
            }
            if any_float {
                Value::Float(float_sum + int_sum as f64)
            } else {
                Value::Int(int_sum)
            }
        }
        AggFunc::MProd => {
            let mut prod = 1.0f64;
            for c in contributions {
                if let Some(x) = c.as_f64() {
                    prod *= x;
                }
            }
            Value::Float(prod)
        }
        AggFunc::MMin => contributions.min().cloned().unwrap_or(Value::Bool(false)),
        AggFunc::MMax => contributions.max().cloned().unwrap_or(Value::Bool(false)),
        AggFunc::MUnion => {
            let mut out: BTreeSet<Value> = BTreeSet::new();
            for c in contributions {
                match c {
                    Value::Set(s) => out.extend(s.iter().cloned()),
                    other => {
                        out.insert(other.clone());
                    }
                }
            }
            Value::Set(Arc::new(out))
        }
    }
}

/// Aggregates must be followed only by conditions and assignments.
fn validate_aggregate_shape(rule: &Rule, idx: usize) -> Result<(), EngineError> {
    let Some(first) = rule
        .body
        .iter()
        .position(|l| matches!(l, Literal::Agg { .. }))
    else {
        return Ok(());
    };
    for lit in &rule.body[first..] {
        match lit {
            Literal::Agg { .. } | Literal::Cond(_) | Literal::Let { .. } => {}
            other => {
                return Err(EngineError::MalformedAggregateRule {
                    rule: idx,
                    message: format!(
                        "found {other:?} after an aggregate; join atoms must precede aggregation"
                    ),
                })
            }
        }
    }
    if matches!(rule.head, Head::Equality(_, _)) {
        return Err(EngineError::MalformedAggregateRule {
            rule: idx,
            message: "aggregates are not allowed in EGDs".into(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn run(src: &str) -> ReasoningResult {
        let p = parse_program(src).unwrap();
        Engine::new().run(&p, Database::new()).unwrap()
    }

    #[test]
    fn transitive_closure() {
        let r = run("edge(1, 2). edge(2, 3). edge(3, 4).\n\
             path(X, Y) :- edge(X, Y).\n\
             path(X, Y) :- edge(X, Z), path(Z, Y).");
        assert_eq!(r.db.rows("path").len(), 6);
    }

    #[test]
    fn goal_run_restricts_derivation_and_strips_scaffolding() {
        let p = parse_program(
            "edge(1, 2). edge(2, 3). edge(10, 11). edge(11, 12).\n\
             path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- edge(X, Y), path(Y, Z).",
        )
        .unwrap();
        let goal = crate::parser::parse_rule("g() :- path(1, Y).").unwrap();
        let Literal::Pos(goal_atom) = goal.body[0].clone() else {
            unreachable!()
        };
        let out = Engine::new()
            .run_with_goals(
                &p,
                Database::new(),
                &[goal_atom],
                crate::magic::MagicOptions::default(),
            )
            .unwrap();
        assert!(out.magic.applied);
        assert_eq!(out.magic.fallback, None);
        // Only the component reachable from node 1 is derived.
        let mut paths = out.result.db.rows("path");
        paths.sort();
        assert_eq!(
            paths,
            vec![
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::Int(1), Value::Int(3)],
                vec![Value::Int(2), Value::Int(3)],
            ]
        );
        // magic# relations are stripped before the result is returned
        assert!(out
            .result
            .db
            .relation_names()
            .all(|p| !crate::magic::is_magic_pred(p)));
        assert!(out.result.profile.magic_goal_seeds > 0);
    }

    #[test]
    fn goal_run_falls_back_on_refusal_and_matches_full_run() {
        // `r` feeds the goal predicate while reading it with no bound
        // argument, so the rewrite refuses; the fallback must equal the
        // plain run.
        let src = "e(1, 2). e(2, 3).\n\
             p(X, Y) :- e(X, Y).\n\
             p(X, Z) :- p(X, Y), r(Y, Z).\n\
             r(Y, Z) :- p(U, V), e(Y, Z).";
        let p = parse_program(src).unwrap();
        let goal = crate::parser::parse_rule("g() :- p(1, Y).").unwrap();
        let Literal::Pos(goal_atom) = goal.body[0].clone() else {
            unreachable!()
        };
        let out = Engine::new()
            .run_with_goals(
                &p,
                Database::new(),
                &[goal_atom],
                crate::magic::MagicOptions::default(),
            )
            .unwrap();
        assert!(!out.magic.applied);
        assert!(out.magic.fallback.is_some());
        assert_eq!(out.result.profile.magic_fallbacks, 1);
        let full = run(src);
        assert_eq!(out.result.db.rows("p"), full.db.rows("p"));
        assert_eq!(out.result.db.rows("r"), full.db.rows("r"));
    }

    #[test]
    fn unbound_goal_runs_the_original_program() {
        let src = "e(1, 2).\n\
             t(X, Y) :- e(X, Y).";
        let p = parse_program(src).unwrap();
        let goal = crate::parser::parse_rule("g() :- t(X, Y).").unwrap();
        let Literal::Pos(goal_atom) = goal.body[0].clone() else {
            unreachable!()
        };
        let out = Engine::new()
            .run_with_goals(
                &p,
                Database::new(),
                &[goal_atom],
                crate::magic::MagicOptions::default(),
            )
            .unwrap();
        assert!(out.magic.degenerate);
        assert!(!out.magic.applied);
        let full = run(src);
        assert_eq!(out.result.db.rows("t"), full.db.rows("t"));
        assert_eq!(out.result.profile.magic_fallbacks, 0);
    }

    #[test]
    fn empty_input_relation_prunes_plans() {
        // `q` never receives rows, so every round's plan for the second
        // rule is dead and must be counted as a planner prune.
        let r = run("e(1, 2). e(2, 3).\n\
             t(X, Y) :- e(X, Y).\n\
             dead(X) :- e(X, Y), q(Y).");
        assert!(r.db.rows("q").is_empty());
        assert!(r.db.rows("dead").is_empty());
        assert_eq!(r.db.rows("t").len(), 2);
        assert!(r.profile.planner_prunes > 0);
    }

    #[test]
    fn stratified_negation() {
        let r = run("node(1). node(2). node(3). edge(1, 2). src(1).\n\
             reach(X) :- src(X).\n\
             reach(Y) :- reach(X), edge(X, Y).\n\
             unreach(X) :- node(X), not reach(X).");
        let rows = r.db.rows("unreach");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Int(3));
    }

    #[test]
    fn existential_creates_null_once_per_frontier() {
        let r = run("emp(1). emp(2).\n\
             dept(D, E) :- emp(E).");
        let rows = r.db.rows("dept");
        assert_eq!(rows.len(), 2);
        // two frontier values -> two distinct nulls
        let nulls: HashSet<Value> = rows.iter().map(|r| r[0].clone()).collect();
        assert_eq!(nulls.len(), 2);
        assert!(nulls.iter().all(|n| n.is_null()));
        assert_eq!(r.stats.nulls_created, 2);
    }

    #[test]
    fn divergent_chase_is_caught_by_iteration_guard() {
        // Every new p-value is a fresh frontier, so the skolemized chase
        // still diverges; the iteration guard must stop it with an error.
        let p = parse_program(
            "p(1).\n\
             q(X, Y) :- p(X).\n\
             p(Y) :- q(X, Y).",
        )
        .unwrap();
        let engine = Engine::with_config(EngineConfig {
            max_iterations: 50,
            ..Default::default()
        });
        match engine.run(&p, Database::new()) {
            Err(EngineError::ResourceLimit {
                which: BudgetKind::Iterations,
                limit: 50,
                ..
            }) => {}
            Ok(r2) => panic!("expected divergence, got {} p-facts", r2.db.rows("p").len()),
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn facts_budget_returns_partial_result() {
        let mut src = String::new();
        for i in 0..50 {
            src.push_str(&format!("edge({}, {}).\n", i, i + 1));
        }
        src.push_str("path(X, Y) :- edge(X, Y).\npath(X, Y) :- edge(X, Z), path(Z, Y).\n");
        let p = parse_program(&src).unwrap();
        let engine = Engine::with_config(EngineConfig {
            budget: Budget::unlimited().with_max_facts(100),
            ..Default::default()
        });
        let r = engine.run(&p, Database::new()).unwrap();
        match &r.termination {
            Termination::BudgetExceeded {
                which: BudgetKind::Facts,
                ..
            } => {}
            other => panic!("expected facts budget trip, got {other:?}"),
        }
        // partial but sound: we kept some derived paths, near the cap
        let n = r.db.rows("path").len();
        assert!(n >= 1, "no partial facts kept");
        assert!(n <= 101, "overshoot: {n} paths");
        // all derived paths really are paths of the chain
        for row in r.db.rows("path") {
            let (x, y) = (row[0].clone(), row[1].clone());
            if let (Value::Int(a), Value::Int(b)) = (x, y) {
                assert!(a < b, "unsound path({a}, {b})");
            }
        }
    }

    #[test]
    fn rounds_budget_stops_deep_recursion() {
        let mut src = String::new();
        for i in 0..30 {
            src.push_str(&format!("edge({}, {}).\n", i, i + 1));
        }
        src.push_str("path(X, Y) :- edge(X, Y).\npath(X, Y) :- edge(X, Z), path(Z, Y).\n");
        let p = parse_program(&src).unwrap();
        let engine = Engine::with_config(EngineConfig {
            budget: Budget::unlimited().with_max_rounds_per_stratum(3),
            ..Default::default()
        });
        let r = engine.run(&p, Database::new()).unwrap();
        match &r.termination {
            Termination::BudgetExceeded {
                which: BudgetKind::Rounds,
                ..
            } => {}
            other => panic!("expected rounds budget trip, got {other:?}"),
        }
        assert!(!r.db.rows("path").is_empty());
    }

    #[test]
    fn cancellation_returns_partial_result() {
        let token = CancelToken::new();
        token.cancel(); // pre-cancelled: the engine must stop immediately
        let p = parse_program(
            "edge(1, 2). edge(2, 3).\n\
             path(X, Y) :- edge(X, Y).\n\
             path(X, Y) :- edge(X, Z), path(Z, Y).",
        )
        .unwrap();
        let engine = Engine::with_config(EngineConfig {
            cancel: Some(token),
            ..Default::default()
        });
        let r = engine.run(&p, Database::new()).unwrap();
        assert_eq!(r.termination, Termination::Cancelled);
        assert!(r.db.rows("path").is_empty());
        // input facts are preserved even on immediate cancellation
        assert_eq!(r.db.rows("edge").len(), 2);
    }

    #[test]
    fn unbudgeted_run_reports_fixpoint() {
        let r = run("edge(1, 2). path(X, Y) :- edge(X, Y).");
        assert!(r.termination.is_fixpoint());
    }

    #[test]
    fn deadline_budget_trips_on_expired_deadline() {
        let p = parse_program(
            "edge(1, 2).\n\
             path(X, Y) :- edge(X, Y).",
        )
        .unwrap();
        let engine = Engine::with_config(EngineConfig {
            budget: Budget::unlimited().with_deadline(std::time::Duration::from_nanos(0)),
            ..Default::default()
        });
        let r = engine.run(&p, Database::new()).unwrap();
        match &r.termination {
            Termination::BudgetExceeded {
                which: BudgetKind::Deadline,
                ..
            } => {}
            other => panic!("expected deadline trip, got {other:?}"),
        }
    }

    #[test]
    fn nulls_budget_stops_null_minting() {
        // each q-fact mints a fresh null and feeds p again: unbounded chase
        let p = parse_program(
            "p(1).\n\
             q(X, Y) :- p(X).\n\
             p(Y) :- q(X, Y).",
        )
        .unwrap();
        let engine = Engine::with_config(EngineConfig {
            budget: Budget::unlimited().with_max_nulls(10),
            ..Default::default()
        });
        let r = engine.run(&p, Database::new()).unwrap();
        match &r.termination {
            Termination::BudgetExceeded {
                which: BudgetKind::Nulls,
                ..
            } => {}
            other => panic!("expected nulls budget trip, got {other:?}"),
        }
        assert!(r.stats.nulls_created >= 10);
    }

    #[test]
    fn msum_groups_and_sums() {
        let r = run("t(\"g1\", 1, 10). t(\"g1\", 2, 20). t(\"g2\", 3, 5).\n\
             out(G, R) :- t(G, I, W), R = msum(W, <I>).");
        let rows = r.db.rows("out");
        assert_eq!(rows.len(), 2);
        let find = |g: &str| {
            rows.iter()
                .find(|r| r[0] == Value::str(g))
                .map(|r| r[1].clone())
                .unwrap()
        };
        assert_eq!(find("g1"), Value::Int(30));
        assert_eq!(find("g2"), Value::Int(5));
    }

    #[test]
    fn monotonic_contributor_dedup_keeps_extremal() {
        // same contributor 1 appears with weights 10 and 30: msum keeps 30
        let r = run("t(\"g\", 1, 10). t(\"g\", 1, 30). t(\"g\", 2, 5).\n\
             out(G, R) :- t(G, I, W), R = msum(W, <I>).");
        let rows = r.db.rows("out");
        assert_eq!(rows[0][1], Value::Int(35));
    }

    #[test]
    fn mcount_counts_distinct_contributors() {
        let r = run("t(\"g\", 1). t(\"g\", 1). t(\"g\", 2).\n\
             out(G, R) :- t(G, I), R = mcount(<I>).");
        assert_eq!(r.db.rows("out")[0][1], Value::Int(2));
    }

    #[test]
    fn aggregate_with_post_condition() {
        let r = run("t(\"a\", 1). t(\"a\", 2). t(\"b\", 3).\n\
             big(G) :- t(G, I), R = mcount(<I>), R >= 2.");
        let rows = r.db.rows("big");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::str("a"));
    }

    #[test]
    fn mprod_multiplies() {
        let r = run("t(\"g\", 1, 0.5). t(\"g\", 2, 0.5).\n\
             out(G, R) :- t(G, I, W), R = mprod(W, <I>).");
        assert_eq!(r.db.rows("out")[0][1], Value::Float(0.25));
    }

    #[test]
    fn munion_collects() {
        let r = run("t(\"g\", \"x\"). t(\"g\", \"y\").\n\
             out(G, S) :- t(G, V), S = munion(V, <V>).");
        let s = r.db.rows("out")[0][1].clone();
        assert_eq!(s.as_set().unwrap().len(), 2);
    }

    #[test]
    fn egd_unifies_nulls() {
        // two rules invent nulls for the same person; EGD unifies them
        let r = run("person(\"ann\").\n\
             id1(P, X) :- person(P).\n\
             id2(P, Y) :- person(P).\n\
             X = Y :- id1(P, X), id2(P, Y).");
        let a = r.db.rows("id1")[0][1].clone();
        let b2 = r.db.rows("id2")[0][1].clone();
        assert_eq!(a, b2);
        assert!(r.stats.unifications >= 1);
        assert!(r.violations.is_empty());
    }

    #[test]
    fn egd_fail_fast_policy_aborts() {
        let p = parse_program(
            "cat(\"m\", \"a\", \"qi\"). cat(\"m\", \"a\", \"id\").\n\
             C1 = C2 :- cat(M, A, C1), cat(M, A, C2), C1 != C2.",
        )
        .unwrap();
        let engine = Engine::with_config(EngineConfig {
            egd_policy: EgdPolicy::FailFast,
            ..Default::default()
        });
        match engine.run(&p, Database::new()) {
            Err(EngineError::EgdViolation(v)) => {
                assert_ne!(v.left, v.right);
            }
            other => panic!("expected EgdViolation, got {other:?}"),
        }
    }

    #[test]
    fn egd_constant_clash_is_violation() {
        let r = run("cat(\"m\", \"a\", \"qi\"). cat(\"m\", \"a\", \"id\").\n\
             C1 = C2 :- cat(M, A, C1), cat(M, A, C2), C1 != C2.");
        assert!(!r.violations.is_empty());
    }

    #[test]
    fn egd_unification_propagates_to_other_relations() {
        let r = run("p(\"k\").\n\
             inv(P, N) :- p(P).\n\
             fixed(\"k\", 42).\n\
             N = V :- inv(P, N), fixed(P, V).");
        let rows = r.db.rows("inv");
        assert_eq!(rows[0][1], Value::Int(42));
    }

    #[test]
    fn multi_head_rule_derives_both() {
        let r = run("t(1).\n\
             a(X), b(X) :- t(X).");
        assert_eq!(r.db.rows("a").len(), 1);
        assert_eq!(r.db.rows("b").len(), 1);
    }

    #[test]
    fn multi_head_shares_existential_null() {
        let r = run("t(1).\n\
             comb(Z, X), marker(Z) :- t(X).");
        let z1 = r.db.rows("comb")[0][0].clone();
        let z2 = r.db.rows("marker")[0][0].clone();
        assert_eq!(z1, z2);
        assert!(z1.is_null());
    }

    #[test]
    fn let_and_condition() {
        let r = run("t(1, 10). t(2, 100).\n\
             out(I, S) :- t(I, W), S = 1.0 / W, S > 0.05.");
        let rows = r.db.rows("out");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Int(1));
    }

    #[test]
    fn undefined_expression_filters_not_errors() {
        // dividing by zero just drops the binding
        let r = run("t(0). t(2).\n\
             out(I, S) :- t(I), S = 1.0 / I.");
        assert_eq!(r.db.rows("out").len(), 1);
    }

    #[test]
    fn trace_records_provenance() {
        let p = parse_program(
            "@label(\"base\")\n\
             b(X) :- a(X).\n\
             a(1).",
        )
        .unwrap();
        let engine = Engine::with_config(EngineConfig {
            trace: true,
            ..Default::default()
        });
        let r = engine.run(&p, Database::new()).unwrap();
        assert_eq!(r.trace.len(), 1);
        assert_eq!(r.trace[0].rule, "base");
        assert_eq!(r.trace[0].fact.pred, "b");
    }

    #[test]
    fn semi_naive_matches_large_chain() {
        // chain of 200 nodes: path count = n*(n-1)/2 pairs along the chain
        let mut src = String::new();
        for i in 0..200 {
            src.push_str(&format!("edge({}, {}).\n", i, i + 1));
        }
        src.push_str("path(X, Y) :- edge(X, Y).\npath(X, Y) :- edge(X, Z), path(Z, Y).\n");
        let r = run(&src);
        assert_eq!(r.db.rows("path").len(), 200 * 201 / 2);
    }

    #[test]
    fn ownership_control_closure() {
        // the paper's company-control example (§4.4):
        // own(X,Y,W), W > 0.5 -> rel(X,Y)
        // rel(X,Z), own(Z,Y,W), msum(W,<Z>) > 0.5 -> rel(X,Y)
        // Note: we express the aggregate-in-condition as a two-step program.
        let r = run("own(\"a\", \"b\", 0.6).\n\
             own(\"b\", \"c\", 0.3).\n\
             own(\"a\", \"c\", 0.3).\n\
             rel(X, Y) :- own(X, Y, W), W > 0.5.\n\
             relw(X, Y, Z, W) :- rel(X, Z), own(Z, Y, W).\n\
             relw(X, Y, X, W) :- own(X, Y, W).\n\
             ctrl(X, Y) :- relw(X, Y, Z, W), S = msum(W, <Z>), S > 0.5.");
        // a controls b directly; a controls c via 0.3 (own) + 0.3 (through b)
        let rows = r.db.rows("ctrl");
        let pairs: HashSet<(String, String)> = rows
            .iter()
            .map(|r| {
                (
                    r[0].as_str().unwrap().to_string(),
                    r[1].as_str().unwrap().to_string(),
                )
            })
            .collect();
        assert!(pairs.contains(&("a".into(), "b".into())));
        assert!(pairs.contains(&("a".into(), "c".into())));
    }
}
