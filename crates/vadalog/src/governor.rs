//! Execution governor: cooperative resource budgets and cancellation.
//!
//! A production reasoning task serving an RDC must *degrade*, not die: when
//! wall-clock, memory or iteration budgets run out, the engine should hand
//! back the work it has done — tagged as partial — instead of discarding it
//! behind an error. This module provides the three pieces the engine
//! threads through its semi-naive loop:
//!
//! - [`Budget`] — declarative soft limits (wall-clock deadline, derived-fact
//!   cap, minted-null cap, per-stratum round cap). All default to
//!   *unlimited*; the no-budget path costs one boolean test per fixpoint
//!   round (see [`Governor::active`]).
//! - [`CancelToken`] — a cloneable cooperative cancellation flag (an
//!   `AtomicBool`), checked between fixpoint rounds and handed to callers
//!   that need to stop a long run from another thread.
//! - [`Termination`] — how a run ended: a genuine fixpoint, a tripped
//!   budget, or a cancellation. [`ReasoningResult`] carries it so callers
//!   can react (the anonymization cycle degrades into extra suppression;
//!   the CLI prints what it has plus a warning).
//!
//! [`ReasoningResult`]: crate::eval::ReasoningResult

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which resource limit was exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// The wall-clock deadline ([`Budget::deadline`]).
    Deadline,
    /// The derived-fact cap ([`Budget::max_facts`] or the hard
    /// `EngineConfig::max_facts` backstop).
    Facts,
    /// The minted-labelled-null cap ([`Budget::max_nulls`]).
    Nulls,
    /// The per-stratum semi-naive round cap ([`Budget::max_rounds_per_stratum`]).
    Rounds,
    /// The hard fixpoint-iteration backstop (`EngineConfig::max_iterations`).
    Iterations,
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            BudgetKind::Deadline => "wall-clock deadline",
            BudgetKind::Facts => "derived-fact cap",
            BudgetKind::Nulls => "minted-null cap",
            BudgetKind::Rounds => "per-stratum round cap",
            BudgetKind::Iterations => "fixpoint-iteration cap",
        };
        f.write_str(name)
    }
}

/// Declarative resource budget for one reasoning run. Every limit is
/// optional; [`Budget::default`] is unlimited. Unlike the hard caps on
/// `EngineConfig` (which abort with an error and discard the run), a
/// tripped budget ends the run *gracefully*: the engine returns the facts
/// derived so far with [`Termination::BudgetExceeded`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock limit for the whole run, measured from `Engine::run`
    /// entry. Checked between semi-naive rounds (cooperatively — a single
    /// enormous round can overshoot).
    pub deadline: Option<Duration>,
    /// Soft cap on total derived facts.
    pub max_facts: Option<usize>,
    /// Soft cap on labelled nulls minted by existential rules.
    pub max_nulls: Option<u64>,
    /// Soft cap on semi-naive rounds within one stratum (across passes).
    pub max_rounds_per_stratum: Option<usize>,
}

impl Budget {
    /// A budget with no limits (the default).
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Does this budget constrain anything?
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.max_facts.is_none()
            && self.max_nulls.is_none()
            && self.max_rounds_per_stratum.is_none()
    }

    /// Set the wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Set the derived-fact cap.
    pub fn with_max_facts(mut self, max_facts: usize) -> Self {
        self.max_facts = Some(max_facts);
        self
    }

    /// Set the minted-null cap.
    pub fn with_max_nulls(mut self, max_nulls: u64) -> Self {
        self.max_nulls = Some(max_nulls);
        self
    }

    /// Set the per-stratum round cap.
    pub fn with_max_rounds_per_stratum(mut self, rounds: usize) -> Self {
        self.max_rounds_per_stratum = Some(rounds);
        self
    }
}

/// A cooperative cancellation flag. Cloning is cheap (an `Arc`); all
/// clones observe the same flag. The engine and the anonymization cycle
/// poll it between rounds / iterations, so cancellation takes effect at
/// the next check point, never mid-insertion.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// How a reasoning run ended.
#[derive(Debug, Clone, PartialEq)]
pub enum Termination {
    /// The run reached a genuine fixpoint: the result is complete.
    Fixpoint,
    /// A [`Budget`] limit tripped: the result is a sound but possibly
    /// incomplete prefix of the fixpoint.
    BudgetExceeded {
        /// The limit that tripped.
        which: BudgetKind,
        /// Stratum being evaluated when it tripped.
        stratum: usize,
        /// Label (or `rule#i` index form) of the rule being applied when
        /// the limit tripped, when attributable.
        rule: Option<String>,
    },
    /// A [`CancelToken`] fired: the result is a sound partial prefix.
    Cancelled,
}

impl Termination {
    /// Did the run complete (reach a fixpoint)?
    pub fn is_fixpoint(&self) -> bool {
        matches!(self, Termination::Fixpoint)
    }
}

impl fmt::Display for Termination {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Termination::Fixpoint => write!(f, "fixpoint"),
            Termination::BudgetExceeded {
                which,
                stratum,
                rule,
            } => {
                write!(f, "budget exceeded: {which} (stratum {stratum}")?;
                if let Some(r) = rule {
                    write!(f, ", rule {r}")?;
                }
                write!(f, ")")
            }
            Termination::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// Why the governor asked the engine to stop (pre-attribution form of
/// [`Termination`]; the engine fills in stratum / rule context).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// A budget limit tripped.
    Budget(BudgetKind),
    /// The cancel token fired.
    Cancelled,
}

/// Runtime governor for one engine run: a [`Budget`], an optional
/// [`CancelToken`] and the run's start instant. All checks are counter
/// arithmetic against counters the engine maintains anyway; when nothing
/// is constrained ([`Governor::active`] is false) the engine skips the
/// checks entirely, keeping the default path free.
#[derive(Debug)]
pub struct Governor {
    budget: Budget,
    cancel: Option<CancelToken>,
    start: Instant,
    active: bool,
}

impl Governor {
    /// Governor for a run starting now.
    pub fn new(budget: Budget, cancel: Option<CancelToken>) -> Self {
        let active = !budget.is_unlimited() || cancel.is_some();
        Governor {
            budget,
            cancel,
            start: Instant::now(),
            active,
        }
    }

    /// Is any limit or cancellation source configured? When false, the
    /// engine bypasses [`Governor::stop_reason`] altogether.
    pub fn active(&self) -> bool {
        self.active
    }

    /// The budget under governance.
    pub fn budget(&self) -> &Budget {
        &self.budget
    }

    /// Should the run stop? `facts` / `nulls` are run totals; `rounds` is
    /// the round count of the current stratum. Returns `None` while every
    /// limit holds. Cancellation wins over budgets so an explicit stop is
    /// reported as such.
    pub fn stop_reason(&self, facts: usize, nulls: u64, rounds: usize) -> Option<StopReason> {
        if !self.active {
            return None;
        }
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Some(StopReason::Cancelled);
            }
        }
        if let Some(cap) = self.budget.max_facts {
            if facts > cap {
                return Some(StopReason::Budget(BudgetKind::Facts));
            }
        }
        if let Some(cap) = self.budget.max_nulls {
            if nulls > cap {
                return Some(StopReason::Budget(BudgetKind::Nulls));
            }
        }
        if let Some(cap) = self.budget.max_rounds_per_stratum {
            if rounds > cap {
                return Some(StopReason::Budget(BudgetKind::Rounds));
            }
        }
        if let Some(deadline) = self.budget.deadline {
            if self.start.elapsed() >= deadline {
                return Some(StopReason::Budget(BudgetKind::Deadline));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_unlimited_and_inactive() {
        assert!(Budget::default().is_unlimited());
        let g = Governor::new(Budget::unlimited(), None);
        assert!(!g.active());
        assert_eq!(g.stop_reason(usize::MAX, u64::MAX, usize::MAX), None);
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let t = CancelToken::new();
        let t2 = t.clone();
        assert!(!t2.is_cancelled());
        t.cancel();
        assert!(t2.is_cancelled());
        let g = Governor::new(Budget::unlimited(), Some(t2));
        assert_eq!(g.stop_reason(0, 0, 0), Some(StopReason::Cancelled));
    }

    #[test]
    fn budgets_trip_individually() {
        let g = Governor::new(Budget::unlimited().with_max_facts(10), None);
        assert_eq!(g.stop_reason(10, 0, 0), None);
        assert_eq!(
            g.stop_reason(11, 0, 0),
            Some(StopReason::Budget(BudgetKind::Facts))
        );
        let g = Governor::new(Budget::unlimited().with_max_nulls(3), None);
        assert_eq!(
            g.stop_reason(0, 4, 0),
            Some(StopReason::Budget(BudgetKind::Nulls))
        );
        let g = Governor::new(Budget::unlimited().with_max_rounds_per_stratum(2), None);
        assert_eq!(
            g.stop_reason(0, 0, 3),
            Some(StopReason::Budget(BudgetKind::Rounds))
        );
        let g = Governor::new(
            Budget::unlimited().with_deadline(Duration::from_nanos(0)),
            None,
        );
        assert_eq!(
            g.stop_reason(0, 0, 0),
            Some(StopReason::Budget(BudgetKind::Deadline))
        );
    }

    #[test]
    fn cancellation_outranks_budgets() {
        let t = CancelToken::new();
        t.cancel();
        let g = Governor::new(Budget::unlimited().with_max_facts(0), Some(t));
        assert_eq!(g.stop_reason(100, 0, 0), Some(StopReason::Cancelled));
    }

    #[test]
    fn termination_renders_human_readable() {
        let t = Termination::BudgetExceeded {
            which: BudgetKind::Rounds,
            stratum: 2,
            rule: Some("tc".into()),
        };
        let s = t.to_string();
        assert!(s.contains("per-stratum round cap"));
        assert!(s.contains("stratum 2"));
        assert!(s.contains("tc"));
        assert!(!t.is_fixpoint());
        assert!(Termination::Fixpoint.is_fixpoint());
    }
}
