//! Global string interner backing [`Value::Str`](crate::value::Value).
//!
//! Every string that enters the engine through [`crate::Value::str`] is routed
//! through a process-wide intern table, so equal strings share one
//! `Arc<str>` allocation. Two wins follow:
//!
//! - **No repeated heap allocation**: parsing a million `val(...)` facts
//!   that mention the same attribute name allocates the name once.
//! - **Pointer-equality fast paths**: `Value::cmp` (and therefore `==` and
//!   hashing-heavy join probes) short-circuit on `Arc::ptr_eq` before
//!   falling back to byte comparison. Interned strings make the fast path
//!   the common case in join-heavy workloads.
//!
//! The table is sharded (16 shards, keyed by a FNV-1a hash of the string)
//! so concurrent rule-evaluation threads do not serialize on one lock, and
//! capacity-bounded: past [`SHARD_CAPACITY`] entries per shard, new strings
//! are passed through uninterned instead of growing the table without
//! bound. Interning is *semantically invisible* — an uninterned
//! `Value::Str` compares and hashes identically, just without the pointer
//! shortcut.
//!
//! [`stats`] exposes hit/miss counters; the engine snapshots them around a
//! run to report `intern_hits` in its [`EngineProfile`](crate::EngineProfile).

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, LazyLock, Mutex, MutexGuard};

/// Number of intern shards (power of two).
const NSHARDS: usize = 16;

/// Per-shard entry cap; beyond it new strings pass through uninterned.
pub const SHARD_CAPACITY: usize = 1 << 16;

static SHARDS: LazyLock<Vec<Mutex<HashSet<Arc<str>>>>> =
    LazyLock::new(|| (0..NSHARDS).map(|_| Mutex::new(HashSet::new())).collect());

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the interner's cumulative hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InternStats {
    /// Lookups that found an existing entry (an allocation avoided).
    pub hits: u64,
    /// Lookups that inserted (or passed through) a new string.
    pub misses: u64,
}

/// FNV-1a — cheap, stable shard selector (not the map's hasher).
fn shard_of(s: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    (h as usize) & (NSHARDS - 1)
}

/// Recover the guard even if a panicking thread poisoned the lock: the
/// table only ever holds fully-formed `Arc<str>` entries, so the data is
/// valid regardless of where the panic happened.
fn lock_shard(idx: usize) -> MutexGuard<'static, HashSet<Arc<str>>> {
    match SHARDS[idx].lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Intern a string: return the canonical shared `Arc<str>` for its
/// contents, inserting it if the shard has room.
pub fn intern(s: &str) -> Arc<str> {
    let mut shard = lock_shard(shard_of(s));
    if let Some(existing) = shard.get(s) {
        HITS.fetch_add(1, Ordering::Relaxed);
        return existing.clone();
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let arc: Arc<str> = Arc::from(s);
    if shard.len() < SHARD_CAPACITY {
        shard.insert(arc.clone());
    }
    arc
}

/// Cumulative interner statistics for this process.
pub fn stats() -> InternStats {
    InternStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
    }
}

/// Total interned strings currently held (across shards).
pub fn len() -> usize {
    (0..NSHARDS).map(|i| lock_shard(i).len()).sum()
}

/// Snapshot every interned string, sorted, for warm-state persistence.
/// Re-interning the exported strings on a fresh process restores the
/// pointer-equality fast paths a warm session relies on; sorting makes
/// the persisted artifact bytes deterministic for a given table content.
pub fn export() -> Vec<String> {
    let mut out: Vec<String> = Vec::with_capacity(len());
    for i in 0..NSHARDS {
        let shard = lock_shard(i);
        out.extend(shard.iter().map(|s| s.to_string()));
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interned_strings_share_one_allocation() {
        let a = intern("join-planner");
        let b = intern("join-planner");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(&*a, "join-planner");
    }

    #[test]
    fn distinct_strings_do_not_alias() {
        let a = intern("alpha-key");
        let b = intern("beta-key");
        assert!(!Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn stats_count_hits() {
        let before = stats();
        let _ = intern("stats-probe-string");
        let _ = intern("stats-probe-string");
        let after = stats();
        assert!(after.hits > before.hits);
        assert!(after.misses >= before.misses);
    }
}
