//! # vadalog — a Warded Datalog± style reasoning engine
//!
//! This crate is a from-scratch reproduction of the reasoning substrate that
//! the Vada-SA paper (*Financial Data Exchange with Statistical
//! Confidentiality*, EDBT 2021) builds on: the Vadalog system, a member of
//! the Datalog± family. It provides everything the paper's nine algorithm
//! listings require:
//!
//! - **Datalog with recursion**, evaluated bottom-up with semi-naive
//!   fixpoints per stratum;
//! - **existential quantification** in rule heads, satisfied by minting
//!   *labelled nulls* through a memoized (Skolem-style restricted) chase;
//! - **stratified negation** and an expression language with comparisons,
//!   arithmetic, `case … then … else`, sets, pairs and indexing;
//! - **monotonic aggregation** (`msum`, `mcount`, `mprod`, `mmin`, `mmax`,
//!   `munion`) with explicit *contributors*: repeated contributions by the
//!   same contributor collapse to the extremal one, which is what lets an
//!   anonymized tuple *replace* its original in risk aggregates (paper §4.3);
//! - **equality-generating dependencies** (EGDs) that unify labelled nulls
//!   or report violations for human inspection (paper Algorithm 1, Rule 4);
//! - **wardedness analysis** ([`warded::analyze`]) as a tractability
//!   diagnostic, and **routing strategies** ([`routing`]) ordering rule
//!   bindings (paper §4.4 runtime heuristics).
//!
//! ## Quick example
//!
//! ```
//! use vadalog::{parse_program, Engine, Database, Value};
//!
//! let program = parse_program(
//!     "edge(1, 2). edge(2, 3).\n\
//!      path(X, Y) :- edge(X, Y).\n\
//!      path(X, Y) :- edge(X, Z), path(Z, Y).",
//! ).unwrap();
//! let result = Engine::new().run(&program, Database::new()).unwrap();
//! assert_eq!(result.db.rows("path").len(), 3);
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod backend;
pub mod builtins;
pub mod eval;
pub mod governor;
pub mod intern;
pub mod magic;
pub mod module;
pub mod parser;
pub mod plan;
pub mod printer;
pub mod profile;
pub mod query;
pub mod routing;
pub mod session;
pub mod storage;
pub mod stratify;
pub mod value;
pub mod warded;

/// The telemetry substrate (re-exported): collectors, spans, counters.
pub use vadasa_obs as obs;

pub use ast::{AggFunc, Atom, Expr, Fact, Head, Literal, Program, Rule, Term};
pub use backend::{
    open as open_storage, ArtifactIo, FileBackend, MemBackend, StorageBackend, StorageEngine,
    StorageError,
};
pub use builtins::{eval_expr, Binding, EvalError};
pub use eval::{
    EgdPolicy, EgdViolation, Engine, EngineConfig, EngineError, EvalStats, GoalRun, JoinMode,
    MagicReport, ReasoningResult, TraceEntry,
};
pub use governor::{Budget, BudgetKind, CancelToken, Termination};
pub use intern::{intern, InternStats};
pub use magic::{
    is_magic_pred, rewrite as magic_rewrite, MagicOptions, MagicRefusal, MagicRewrite, MagicStats,
};
pub use module::{Module, ModuleError, ModuleRegistry};
pub use parser::{parse_program, parse_rule, ParseError};
pub use plan::{plan_rule, JoinPlan, PlanStep};
pub use printer::{print_expr, print_program, print_rule};
pub use profile::{EngineProfile, RoundProfile, RuleProfile, StratumProfile};
pub use query::{answers, goal_slice, parse_goal, AnswerMode};
pub use routing::{AscendingBy, DescendingBy, Fifo, Router};
pub use session::{
    program_fingerprint, EngineSession, FactPatch, PatchOutcome, SessionStats,
    WARM_SESSION_ARTIFACT,
};
pub use storage::{Database, Relation};
pub use stratify::{idb_predicates, stratify, Stratification, StratifyError};
pub use value::{NullId, Value};
pub use warded::{analyze as warded_analyze, WardedReport};
