//! Goal-directed evaluation: the magic-sets rewrite.
//!
//! Given goal atoms whose constant arguments describe the bindings a
//! caller actually needs (`riskOutput(17, R)` — "risk for respondent
//! 17"), [`rewrite`] transforms a stratified program so the fixpoint
//! derives only goal-relevant facts:
//!
//! * every predicate backward-reachable from a goal gets, per distinct
//!   **adornment** (a bound/free mask, written `b`/`f` per position), a
//!   guarded copy of each of its rules — the guard is a `magic#p#bf`-style
//!   atom joined on the bound head positions;
//! * **magic seed rules** push bindings sideways: for each positive body
//!   occurrence of a restricted predicate, a rule derives its magic facts
//!   from the caller rule's guard plus the body prefix before the
//!   occurrence (sideways information passing in source order, which
//!   `check_safety` already guarantees binds every prefix variable);
//! * the goal constants themselves become **seed facts** of the goal
//!   predicate's magic relation;
//! * rules that cannot reach any goal predicate are dropped.
//!
//! The rewrite refuses (so callers fall back to the full program —
//! never silently under-derives) when restriction would be unsound:
//! EGDs, existential (null-inventing) rules, goals reachable only
//! through negation, or aggregate heads bound on non-group-key
//! positions. Predicates read under negation, read by unguarded rules,
//! or feeding aggregates (unless [`MagicOptions::closed_groups`] attests
//! the goal set is closed under equivalence classes) stay **full** —
//! derived without restriction — which keeps every remaining guard
//! sound.
//!
//! Guarantee: for every goal, the goal-constant slice of the rewritten
//! fixpoint equals the same slice of the full fixpoint. Restricted
//! relations may hold a *subset* of the full relation outside the slice
//! (and the magic set may transitively widen it back, e.g. transitive
//! closure), so equivalence checks must compare slices, not whole
//! relations. See DESIGN.md §14.

use crate::ast::{Atom, Fact, Head, Literal, Program, Rule, Term};
use crate::stratify::idb_predicates;
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::fmt;

/// Prefix of every generated magic predicate. `#` cannot appear in a
/// parsed identifier, so generated names never collide with user
/// predicates; [`is_magic_pred`] is the one test callers should use.
pub const MAGIC_PREFIX: &str = "magic#";

/// Is `pred` a generated magic predicate?
pub fn is_magic_pred(pred: &str) -> bool {
    pred.starts_with(MAGIC_PREFIX)
}

/// Name of the magic predicate for `pred` under a bound/free mask.
fn magic_name(pred: &str, mask: &[bool]) -> String {
    let adornment: String = mask.iter().map(|b| if *b { 'b' } else { 'f' }).collect();
    format!("{MAGIC_PREFIX}{pred}#{adornment}")
}

/// Caller-side options for the rewrite.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MagicOptions {
    /// The caller attests that the goal binding set is **closed under
    /// equivalence classes**: whenever a goal row contributes to an
    /// aggregate group, every other contributor of that group is also a
    /// goal. Under that contract the inputs of guarded aggregate rules
    /// may stay restricted (each surviving group is still complete),
    /// which is what makes per-respondent risk re-scoring prune. Without
    /// it, aggregate inputs are kept full — always sound, rarely fast.
    pub closed_groups: bool,
}

/// Rewrite statistics, surfaced in [`crate::EngineProfile`] as the
/// `magic_*` counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MagicStats {
    /// Goal constants turned into magic seed facts.
    pub goal_seeds: u64,
    /// Rule copies that received a magic guard atom.
    pub guarded_rules: u64,
    /// Generated sideways-information-passing seed rules.
    pub seed_rules: u64,
    /// Original rules dropped as unreachable from every goal.
    pub pruned_rules: u64,
}

/// Outcome of a successful [`rewrite`] call.
#[derive(Debug, Clone, PartialEq)]
pub enum MagicRewrite {
    /// No goal carries a bound argument on an IDB predicate: the
    /// original program is already as restricted as it can get. Callers
    /// must evaluate the *unrewritten* program, byte for byte.
    Degenerate,
    /// The goal-directed program plus rewrite statistics.
    Rewritten {
        /// The rewritten program (guards, seed rules, seed facts).
        program: Program,
        /// What the rewrite did, for profiling.
        stats: MagicStats,
    },
}

/// The rewrite declined: evaluating the rewritten program could
/// under-derive the goal slice, so the caller must run the full
/// program instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MagicRefusal {
    /// Human-readable soundness argument for the refusal.
    pub reason: String,
}

impl fmt::Display for MagicRefusal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "magic-sets rewrite refused: {}", self.reason)
    }
}

impl std::error::Error for MagicRefusal {}

fn refuse(reason: impl Into<String>) -> MagicRefusal {
    MagicRefusal {
        reason: reason.into(),
    }
}

/// Group-key variables of an aggregate rule, mirroring
/// `apply_aggregate_rule`: head variables that are neither existential
/// nor bound by the aggregate/`Let` suffix.
fn aggregate_group_vars(rule: &Rule) -> HashSet<String> {
    let first_agg = rule
        .body
        .iter()
        .position(|l| matches!(l, Literal::Agg { .. }))
        .unwrap_or(rule.body.len());
    let suffix = &rule.body[first_agg..];
    let ex = rule.existential_vars();
    let suffix_vars: HashSet<&str> = suffix
        .iter()
        .filter_map(|l| match l {
            Literal::Agg { var, .. } | Literal::Let { var, .. } => Some(var.as_str()),
            _ => None,
        })
        .collect();
    let mut group = HashSet::new();
    if let Head::Atoms(atoms) = &rule.head {
        for a in atoms {
            for v in a.vars() {
                if !ex.contains(v) && !suffix_vars.contains(v) {
                    group.insert(v.to_string());
                }
            }
        }
    }
    group
}

/// Bound/free mask of `atom` given the currently bound variables:
/// constants and already-bound variables are bound positions.
fn occurrence_mask(atom: &Atom, bound_vars: &HashSet<String>) -> Vec<bool> {
    atom.args
        .iter()
        .map(|t| match t {
            Term::Const(_) => true,
            Term::Var(v) => bound_vars.contains(v),
        })
        .collect()
}

/// Project `args` onto the bound positions of `mask`.
fn bound_args(args: &[Term], mask: &[bool]) -> Vec<Term> {
    args.iter()
        .zip(mask)
        .filter(|(_, b)| **b)
        .map(|(t, _)| t.clone())
        .collect()
}

/// Working state of the adornment / restriction fixpoint.
struct Analysis<'a> {
    program: &'a Program,
    options: MagicOptions,
    idb: BTreeSet<String>,
    /// Rule indices whose heads are backward-reachable from a goal.
    relevant_rules: Vec<usize>,
    /// Restricted predicates: each carries the set of adornments it is
    /// evaluated under (one guarded rule copy per adornment).
    adorn: BTreeMap<String, BTreeSet<Vec<bool>>>,
    /// Predicates that must be derived without restriction, with the
    /// soundness reason that forced them (for refusal messages).
    full: BTreeMap<String, String>,
}

impl<'a> Analysis<'a> {
    /// Move `pred` out of the restricted set for `reason`. Returns true
    /// if anything changed.
    fn demote(&mut self, pred: &str, reason: &str) -> bool {
        let newly_full = !self.full.contains_key(pred);
        if newly_full {
            self.full.insert(pred.to_string(), reason.to_string());
        }
        let had_adornments = self.adorn.remove(pred).is_some();
        newly_full || had_adornments
    }

    fn restricted(&self, pred: &str) -> bool {
        self.adorn.contains_key(pred) && !self.full.contains_key(pred)
    }

    /// Record that `pred` is read under adornment `mask`. Returns true
    /// if the adornment set grew.
    fn observe(&mut self, pred: &str, mask: Vec<bool>) -> bool {
        if self.full.contains_key(pred) || !self.idb.contains(pred) {
            return false;
        }
        if mask.iter().all(|b| !b) {
            // An all-free occurrence needs the complete relation.
            return self.demote(pred, "it is read with no bound argument");
        }
        self.adorn.entry(pred.to_string()).or_default().insert(mask)
    }

    /// Is this relevant rule guarded — single atom head whose predicate
    /// is restricted?
    fn guarded_head<'r>(&self, rule: &'r Rule) -> Option<&'r Atom> {
        match &rule.head {
            Head::Atoms(atoms) if atoms.len() == 1 && self.restricted(&atoms[0].pred) => {
                Some(&atoms[0])
            }
            _ => None,
        }
    }

    /// One pass of adornment propagation and demotion over every
    /// relevant rule. Returns true if the state changed.
    fn pass(&mut self) -> Result<bool, MagicRefusal> {
        let mut changed = false;
        for &ri in &self.relevant_rules.clone() {
            let rule = &self.program.rules[ri];
            let Some(head_atom) = self.guarded_head(rule) else {
                // Unguarded relevant rules evaluate at full strength, so
                // every IDB predicate they read positively must be
                // complete too.
                for lit in &rule.body {
                    if let Literal::Pos(atom) = lit {
                        if self.idb.contains(&atom.pred) && self.adorn.contains_key(&atom.pred) {
                            changed |= self
                                .demote(&atom.pred, "it feeds a rule that must run unrestricted");
                        }
                    }
                }
                continue;
            };
            let head_atom = head_atom.clone();
            let pred = head_atom.pred.clone();
            let masks: Vec<Vec<bool>> = match self.adorn.get(&pred) {
                Some(set) => set.iter().cloned().collect(),
                None => continue,
            };
            let is_aggregate = rule.has_aggregate();
            if is_aggregate {
                let group = aggregate_group_vars(rule);
                for mask in &masks {
                    if mask.len() != head_atom.args.len() {
                        return Err(refuse(format!(
                            "goal arity does not match the head of a rule deriving '{pred}'"
                        )));
                    }
                    let guardable = head_atom.args.iter().zip(mask).all(|(t, b)| {
                        !*b || match t {
                            Term::Const(_) => true,
                            Term::Var(v) => group.contains(v),
                        }
                    });
                    if !guardable {
                        changed |= self.demote(
                            &pred,
                            "an aggregate rule derives it with a bound non-group-key position",
                        );
                        break;
                    }
                }
                if !self.restricted(&pred) {
                    continue;
                }
                if !self.options.closed_groups {
                    // Guarded groups must still see every contributor;
                    // without the closed-groups attestation the only safe
                    // choice is complete aggregate inputs.
                    for lit in &rule.body {
                        if let Literal::Pos(atom) = lit {
                            if self.idb.contains(&atom.pred) && self.adorn.contains_key(&atom.pred)
                            {
                                changed |= self.demote(
                                    &atom.pred,
                                    "it feeds an aggregate and the goal set is not group-closed",
                                );
                            }
                        }
                    }
                }
                // Aggregate bodies never propagate adornments: in
                // closed-groups mode the closure contract (not a magic
                // set) is what keeps their restricted inputs complete.
                continue;
            }
            for mask in &masks {
                if mask.len() != head_atom.args.len() {
                    return Err(refuse(format!(
                        "goal arity does not match the head of a rule deriving '{pred}'"
                    )));
                }
                let mut bound_vars: HashSet<String> = head_atom
                    .args
                    .iter()
                    .zip(mask)
                    .filter_map(|(t, b)| match (t, b) {
                        (Term::Var(v), true) => Some(v.clone()),
                        _ => None,
                    })
                    .collect();
                for lit in &rule.body {
                    match lit {
                        Literal::Pos(atom) => {
                            let m = occurrence_mask(atom, &bound_vars);
                            changed |= self.observe(&atom.pred, m);
                            for v in atom.vars() {
                                bound_vars.insert(v.to_string());
                            }
                        }
                        Literal::Neg(_) | Literal::Cond(_) => {}
                        Literal::Let { var, .. } | Literal::Agg { var, .. } => {
                            bound_vars.insert(var.clone());
                        }
                    }
                }
            }
        }
        Ok(changed)
    }
}

/// Rewrite `program` for goal-directed evaluation. `goals` are atoms
/// whose [`Term::Const`] arguments are the bound positions; variables
/// (including repeated ones) are free. See the module docs for the
/// guarantee and [`MagicRefusal`] for the fallback contract.
pub fn rewrite(
    program: &Program,
    goals: &[Atom],
    options: MagicOptions,
) -> Result<MagicRewrite, MagicRefusal> {
    let idb = idb_predicates(program);
    let bound_goals: Vec<&Atom> = goals
        .iter()
        .filter(|g| idb.contains(&g.pred) && g.args.iter().any(|t| matches!(t, Term::Const(_))))
        .collect();
    if bound_goals.is_empty() {
        return Ok(MagicRewrite::Degenerate);
    }
    if program
        .rules
        .iter()
        .any(|r| matches!(r.head, Head::Equality(_, _)))
    {
        return Err(refuse(
            "the program contains EGDs, which unify labelled nulls globally",
        ));
    }

    // Relevance: predicates backward-reachable from any goal, and the
    // rules deriving them. Everything else is dropped.
    let mut relevant: BTreeSet<String> = goals.iter().map(|g| g.pred.clone()).collect();
    loop {
        let mut grew = false;
        for rule in &program.rules {
            if rule.head_preds().iter().any(|p| relevant.contains(*p)) {
                for (pred, _) in rule.body_preds() {
                    grew |= relevant.insert(pred.to_string());
                }
            }
        }
        if !grew {
            break;
        }
    }
    let relevant_rules: Vec<usize> = program
        .rules
        .iter()
        .enumerate()
        .filter(|(_, r)| r.head_preds().iter().any(|p| relevant.contains(*p)))
        .map(|(i, _)| i)
        .collect();

    for &ri in &relevant_rules {
        if !program.rules[ri].existential_vars().is_empty() {
            return Err(refuse(format!(
                "a goal-relevant rule invents labelled nulls (existential head variables), \
                 and null identity is mint-order dependent (rule {ri})"
            )));
        }
    }

    let mut analysis = Analysis {
        program,
        options,
        idb,
        relevant_rules,
        adorn: BTreeMap::new(),
        full: BTreeMap::new(),
    };
    // Negated occurrences must see the complete relation; multi-head
    // rules cannot be guarded by a single magic atom.
    for &ri in &analysis.relevant_rules.clone() {
        let rule = &program.rules[ri];
        for lit in &rule.body {
            if let Literal::Neg(atom) = lit {
                if analysis.idb.contains(&atom.pred) {
                    analysis.demote(&atom.pred, "it is read under negation");
                }
            }
        }
        if let Head::Atoms(atoms) = &rule.head {
            if atoms.len() > 1 {
                for a in atoms {
                    analysis.demote(&a.pred, "a multi-atom head derives it");
                }
            }
        }
    }
    for g in &bound_goals {
        let mask: Vec<bool> = g.args.iter().map(|t| matches!(t, Term::Const(_))).collect();
        analysis.observe(&g.pred, mask);
    }
    loop {
        if !analysis.pass()? {
            break;
        }
    }

    // A goal predicate forced out of the restricted set means the goal
    // bindings cannot be pushed into the program: fall back.
    for g in &bound_goals {
        if !analysis.restricted(&g.pred) {
            let why = analysis
                .full
                .get(&g.pred)
                .cloned()
                .unwrap_or_else(|| "its bindings cannot be propagated".to_string());
            return Err(refuse(format!(
                "goal predicate '{}' cannot be restricted: {why}",
                g.pred
            )));
        }
    }

    // Generation: guarded copies, seed rules, seed facts.
    let mut out = Program::new();
    let mut stats = MagicStats::default();
    let relevant_set: HashSet<usize> = analysis.relevant_rules.iter().copied().collect();
    for (ri, rule) in program.rules.iter().enumerate() {
        if !relevant_set.contains(&ri) {
            stats.pruned_rules += 1;
            continue;
        }
        let Some(head_atom) = analysis.guarded_head(rule).cloned() else {
            out.rules.push(rule.clone());
            continue;
        };
        let masks: Vec<Vec<bool>> = match analysis.adorn.get(&head_atom.pred) {
            Some(set) => set.iter().cloned().collect(),
            None => {
                out.rules.push(rule.clone());
                continue;
            }
        };
        for mask in &masks {
            let guard = Atom::new(
                magic_name(&head_atom.pred, mask),
                bound_args(&head_atom.args, mask),
            );
            let mut body = Vec::with_capacity(rule.body.len() + 1);
            body.push(Literal::Pos(guard.clone()));
            body.extend(rule.body.iter().cloned());
            out.rules.push(Rule {
                head: rule.head.clone(),
                body,
                label: rule.label.clone().map(|l| format!("{l} [magic-guarded]")),
            });
            stats.guarded_rules += 1;
            if rule.has_aggregate() {
                // Aggregate bodies generated no adornments, so no seeds.
                continue;
            }
            // Sideways information passing in source order: each
            // restricted positive occurrence gets a seed rule deriving
            // its magic facts from the guard plus the preceding body.
            let mut prefix: Vec<Literal> = vec![Literal::Pos(guard.clone())];
            let mut bound_vars: HashSet<String> = head_atom
                .args
                .iter()
                .zip(mask)
                .filter_map(|(t, b)| match (t, b) {
                    (Term::Var(v), true) => Some(v.clone()),
                    _ => None,
                })
                .collect();
            for lit in &rule.body {
                if let Literal::Pos(atom) = lit {
                    if analysis.restricted(&atom.pred) {
                        let m = occurrence_mask(atom, &bound_vars);
                        let known = analysis
                            .adorn
                            .get(&atom.pred)
                            .map(|s| s.contains(&m))
                            .unwrap_or(false);
                        debug_assert!(known, "occurrence adornment missing from fixpoint");
                        if known && m.iter().any(|b| *b) {
                            out.rules.push(Rule {
                                head: Head::Atoms(vec![Atom::new(
                                    magic_name(&atom.pred, &m),
                                    bound_args(&atom.args, &m),
                                )]),
                                body: prefix.clone(),
                                label: Some(format!("magic-seed for {} in rule {ri}", atom.pred)),
                            });
                            stats.seed_rules += 1;
                        }
                    }
                }
                match lit {
                    Literal::Pos(atom) => {
                        prefix.push(lit.clone());
                        for v in atom.vars() {
                            bound_vars.insert(v.to_string());
                        }
                    }
                    // Negations over (always-full) relations and filter
                    // conditions only shrink the magic set, which is
                    // sound: every full-rule firing satisfies them.
                    Literal::Neg(_) | Literal::Cond(_) => prefix.push(lit.clone()),
                    Literal::Let { var, .. } => {
                        prefix.push(lit.clone());
                        bound_vars.insert(var.clone());
                    }
                    Literal::Agg { .. } => {}
                }
            }
        }
    }
    out.facts = program.facts.clone();
    for g in &bound_goals {
        let mask: Vec<bool> = g.args.iter().map(|t| matches!(t, Term::Const(_))).collect();
        let consts: Vec<Value> = g
            .args
            .iter()
            .filter_map(|t| match t {
                Term::Const(v) => Some(v.clone()),
                Term::Var(_) => None,
            })
            .collect();
        out.facts
            .push(Fact::new(magic_name(&g.pred, &mask), consts));
        stats.goal_seeds += 1;
    }
    Ok(MagicRewrite::Rewritten {
        program: out,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn atom(pred: &str, args: Vec<Term>) -> Atom {
        Atom::new(pred, args)
    }

    fn bound(v: i64) -> Term {
        Term::Const(Value::Int(v))
    }

    fn free(name: &str) -> Term {
        Term::Var(name.to_string())
    }

    fn tc_program() -> Program {
        parse_program(
            "edge(1, 2). edge(2, 3). edge(4, 5).\n\
             path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- edge(X, Y), path(Y, Z).",
        )
        .expect("parses")
    }

    #[test]
    fn unbound_goal_degenerates() {
        let p = tc_program();
        let r = rewrite(
            &p,
            &[atom("path", vec![free("X"), free("Y")])],
            MagicOptions::default(),
        )
        .expect("rewrite succeeds");
        assert_eq!(r, MagicRewrite::Degenerate);
    }

    #[test]
    fn edb_goal_degenerates() {
        let p = tc_program();
        let r = rewrite(
            &p,
            &[atom("edge", vec![bound(1), free("Y")])],
            MagicOptions::default(),
        )
        .expect("rewrite succeeds");
        assert_eq!(r, MagicRewrite::Degenerate);
    }

    #[test]
    fn tc_goal_guards_both_rules_and_seeds_recursion() {
        let p = tc_program();
        let MagicRewrite::Rewritten { program, stats } = rewrite(
            &p,
            &[atom("path", vec![bound(1), free("Y")])],
            MagicOptions::default(),
        )
        .expect("rewrite succeeds") else {
            panic!("expected a rewritten program");
        };
        assert_eq!(stats.guarded_rules, 2);
        assert_eq!(stats.goal_seeds, 1);
        // the recursive occurrence path(Y, Z) after edge(X, Y) yields one
        // seed rule: magic#path#bf(Y) :- magic#path#bf(X), edge(X, Y)
        assert_eq!(stats.seed_rules, 1);
        assert!(program
            .facts
            .iter()
            .any(|f| f.pred == "magic#path#bf" && f.args == vec![Value::Int(1)]));
    }

    #[test]
    fn negated_predicate_stays_full_while_goal_restricts() {
        // Adornments must never propagate *through* a negation: the
        // check `not tc(...)` needs the complete tc relation, so tc's
        // rule stays unguarded even though tc is goal-relevant.
        let p = parse_program(
            "e(1, 2).\n\
             tc(X, Y) :- e(X, Y).\n\
             only(X, Y) :- e(X, Y), not tc(X, Y).",
        )
        .expect("parses");
        let MagicRewrite::Rewritten { program, .. } = rewrite(
            &p,
            &[atom("only", vec![bound(1), free("Y")])],
            MagicOptions::default(),
        )
        .expect("rewrite succeeds") else {
            panic!("expected a rewritten program");
        };
        let tc_rules: Vec<_> = program
            .rules
            .iter()
            .filter(|r| r.head_preds() == vec!["tc"])
            .collect();
        assert_eq!(tc_rules.len(), 1, "tc keeps its single unguarded rule");
        assert!(
            tc_rules[0].body.len() == 1,
            "tc rule must not gain a guard: {:?}",
            tc_rules[0].body
        );
        assert!(program.rules.iter().any(|r| r.head_preds() == vec!["only"]
            && matches!(&r.body[0], Literal::Pos(a) if a.pred == "magic#only#bf")));
    }

    #[test]
    fn all_free_read_of_goal_predicate_refuses() {
        // `r` reads the goal predicate with no bound argument, so the
        // goal bindings cannot be pushed anywhere: refuse and fall back
        // instead of silently under-deriving `r` (and through it, `p`).
        let p = parse_program(
            "e(1, 2). e(2, 3).\n\
             p(X, Y) :- e(X, Y).\n\
             p(X, Z) :- p(X, Y), r(Y, Z).\n\
             r(Y, Z) :- p(U, V), e(Y, Z).",
        )
        .expect("parses");
        let err = rewrite(
            &p,
            &[atom("p", vec![bound(1), free("Y")])],
            MagicOptions::default(),
        )
        .expect_err("must refuse");
        assert!(
            err.reason.contains("cannot be restricted"),
            "{}",
            err.reason
        );
    }

    #[test]
    fn aggregate_result_binding_refuses() {
        let p = parse_program(
            "e(1, 2). e(1, 3).\n\
             cnt(X, C) :- e(X, Y), C = mcount(<Y>).",
        )
        .expect("parses");
        // binding the aggregate *result* position cannot be guarded —
        // the value only exists after the group is complete
        let err = rewrite(
            &p,
            &[atom("cnt", vec![free("X"), bound(2)])],
            MagicOptions::default(),
        )
        .expect_err("must refuse");
        assert!(err.reason.contains("group-key"), "{}", err.reason);
    }

    #[test]
    fn aggregate_inputs_stay_full_without_closed_groups() {
        let p = parse_program(
            "e(1, 2).\n\
             mid(X, Y) :- e(X, Y).\n\
             cnt(X, C) :- mid(X, Y), C = mcount(<Y>).",
        )
        .expect("parses");
        let MagicRewrite::Rewritten { program, .. } = rewrite(
            &p,
            &[atom("cnt", vec![bound(1), free("C")])],
            MagicOptions::default(),
        )
        .expect("rewrite succeeds") else {
            panic!("expected a rewritten program");
        };
        // `mid` feeds the aggregate: its rule must stay unguarded
        let mid_rules: Vec<_> = program
            .rules
            .iter()
            .filter(|r| r.head_preds() == vec!["mid"])
            .collect();
        assert_eq!(mid_rules.len(), 1);
        assert_eq!(mid_rules[0].body.len(), 1, "mid must not gain a guard");
        // while the aggregate rule itself is guarded on its group key
        let cnt_rules: Vec<_> = program
            .rules
            .iter()
            .filter(|r| r.head_preds() == vec!["cnt"])
            .collect();
        assert_eq!(cnt_rules.len(), 1);
        assert!(matches!(
            &cnt_rules[0].body[0],
            Literal::Pos(a) if a.pred == "magic#cnt#bf"
        ));
    }

    #[test]
    fn closed_groups_keeps_aggregate_inputs_restricted() {
        let p = parse_program(
            "e(1, 2).\n\
             mid(X, Y) :- e(X, Y).\n\
             cnt(X, C) :- mid(X, Y), C = mcount(<Y>).",
        )
        .expect("parses");
        let MagicRewrite::Rewritten { program, .. } = rewrite(
            &p,
            &[atom("cnt", vec![bound(1), free("C")])],
            MagicOptions {
                closed_groups: true,
            },
        )
        .expect("rewrite succeeds") else {
            panic!("expected a rewritten program");
        };
        // under the closure attestation `mid` keeps the restriction it
        // gets from... nothing here (no plain rule reads it), so it stays
        // unguarded — but crucially the rewrite does not *force* it full,
        // which the risk-shaped test below exercises end to end.
        assert!(program.rules.iter().any(|r| r.head_preds() == vec!["cnt"]
            && matches!(
                &r.body[0],
                Literal::Pos(a) if a.pred == "magic#cnt#bf"
            )));
    }

    #[test]
    fn irrelevant_rules_are_pruned() {
        let p = parse_program(
            "e(1, 2).\n\
             a(X, Y) :- e(X, Y).\n\
             b(X, Y) :- e(X, Y).\n\
             c(X, Y) :- b(X, Y).",
        )
        .expect("parses");
        let MagicRewrite::Rewritten { program, stats } = rewrite(
            &p,
            &[atom("a", vec![bound(1), free("Y")])],
            MagicOptions::default(),
        )
        .expect("rewrite succeeds") else {
            panic!("expected a rewritten program");
        };
        assert_eq!(stats.pruned_rules, 2, "b and c are unreachable from a");
        assert!(program.rules.iter().all(|r| r.head_preds() != vec!["c"]));
    }

    #[test]
    fn egd_program_refuses() {
        let p = parse_program(
            "d(1, 2). d(1, 3).\n\
             same(X) :- d(X, Y).\n\
             Y1 = Y2 :- d(X, Y1), d(X, Y2).",
        )
        .expect("parses");
        let err = rewrite(&p, &[atom("same", vec![bound(1)])], MagicOptions::default())
            .expect_err("must refuse");
        assert!(err.reason.contains("EGD"), "{}", err.reason);
    }

    #[test]
    fn existential_rule_refuses() {
        let p = parse_program(
            "emp(1).\n\
             dept(E, D) :- emp(E).",
        )
        .expect("parses");
        let err = rewrite(
            &p,
            &[atom("dept", vec![bound(1), free("D")])],
            MagicOptions::default(),
        )
        .expect_err("must refuse");
        assert!(err.reason.contains("null"), "{}", err.reason);
    }

    #[test]
    fn magic_names_cannot_collide_with_parsed_predicates() {
        assert!(is_magic_pred(&magic_name("path", &[true, false])));
        assert_eq!(magic_name("path", &[true, false]), "magic#path#bf");
        // '#' is not a legal identifier character, so user programs can
        // never parse a predicate that satisfies is_magic_pred
        assert!(parse_program("magic#p#b(1).").is_err());
    }
}
