//! Pluggable program modules (paper §4: "the intensional component is at
//! high level of abstraction, composed of pluggable Vadalog modules, some
//! of which are provided off-the-shelf while others can be autonomously
//! developed by business experts").
//!
//! A [`Module`] wraps a program with an interface: the predicates it
//! *provides* (derives) and those it *requires* from the extensional data
//! or from other modules. The [`ModuleRegistry`] composes a selection of
//! modules into one program, checking that
//!
//! 1. every requirement is satisfied by another module or declared as
//!    extensional input,
//! 2. no two modules claim to provide the same predicate (the polymorphic
//!    `#risk` slot is filled by exactly one plug-in at a time), and
//! 3. the composed program still stratifies.
//!
//! Interfaces are validated against the module's own rules: a module must
//! actually derive what it provides, and every body predicate that it does
//! not derive itself must be listed as required.

use crate::ast::{Head, Program};
use crate::parser::{parse_program, ParseError};
use crate::stratify::stratify;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// A named program fragment with an explicit interface.
#[derive(Debug, Clone)]
pub struct Module {
    /// Unique module name.
    pub name: String,
    /// Predicates this module derives for others.
    pub provides: BTreeSet<String>,
    /// Predicates this module expects to exist (extensional or provided by
    /// other modules).
    pub requires: BTreeSet<String>,
    /// The rules (and possibly facts) of the module.
    pub program: Program,
}

/// Module-system errors.
#[derive(Debug)]
pub enum ModuleError {
    /// The module source failed to parse.
    Parse(ParseError),
    /// The declared interface does not match the rules.
    BadInterface {
        /// Module at fault.
        module: String,
        /// Explanation.
        message: String,
    },
    /// Two modules provide the same predicate.
    Conflict {
        /// The predicate provided twice.
        predicate: String,
        /// First provider.
        first: String,
        /// Second provider.
        second: String,
    },
    /// A requirement is not satisfied by the selection.
    Unsatisfied {
        /// Module with the dangling requirement.
        module: String,
        /// The missing predicate.
        predicate: String,
    },
    /// The composed program does not stratify.
    Stratification(crate::stratify::StratifyError),
    /// A module name was not found in the registry.
    Unknown(String),
}

impl fmt::Display for ModuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModuleError::Parse(e) => write!(f, "{e}"),
            ModuleError::BadInterface { module, message } => {
                write!(f, "module '{module}': {message}")
            }
            ModuleError::Conflict {
                predicate,
                first,
                second,
            } => write!(
                f,
                "modules '{first}' and '{second}' both provide predicate '{predicate}'"
            ),
            ModuleError::Unsatisfied { module, predicate } => write!(
                f,
                "module '{module}' requires '{predicate}', which no selected module provides and which is not declared extensional"
            ),
            ModuleError::Stratification(e) => write!(f, "composed program: {e}"),
            ModuleError::Unknown(name) => write!(f, "unknown module '{name}'"),
        }
    }
}

impl std::error::Error for ModuleError {}

impl From<ParseError> for ModuleError {
    fn from(e: ParseError) -> Self {
        ModuleError::Parse(e)
    }
}

impl Module {
    /// Build a module from source text, inferring the interface: provides =
    /// head predicates, requires = body predicates not derived internally.
    pub fn from_source(name: impl Into<String>, source: &str) -> Result<Self, ModuleError> {
        let program = parse_program(source)?;
        let name = name.into();
        let mut provides: BTreeSet<String> = BTreeSet::new();
        for rule in &program.rules {
            if let Head::Atoms(atoms) = &rule.head {
                for a in atoms {
                    provides.insert(a.pred.clone());
                }
            }
        }
        for fact in &program.facts {
            provides.insert(fact.pred.clone());
        }
        let mut requires: BTreeSet<String> = BTreeSet::new();
        for rule in &program.rules {
            for (p, _) in rule.body_preds() {
                if !provides.contains(p) {
                    requires.insert(p.to_string());
                }
            }
        }
        Ok(Module {
            name,
            provides,
            requires,
            program,
        })
    }

    /// Build a module with an explicitly declared interface, validated
    /// against the rules.
    pub fn with_interface(
        name: impl Into<String>,
        source: &str,
        provides: impl IntoIterator<Item = String>,
        requires: impl IntoIterator<Item = String>,
    ) -> Result<Self, ModuleError> {
        let inferred = Module::from_source(name, source)?;
        let provides: BTreeSet<String> = provides.into_iter().collect();
        let requires: BTreeSet<String> = requires.into_iter().collect();
        for p in &provides {
            if !inferred.provides.contains(p) {
                return Err(ModuleError::BadInterface {
                    module: inferred.name,
                    message: format!("declares providing '{p}' but never derives it"),
                });
            }
        }
        for r in &inferred.requires {
            if !requires.contains(r) {
                return Err(ModuleError::BadInterface {
                    module: inferred.name,
                    message: format!("uses '{r}' without declaring it required"),
                });
            }
        }
        Ok(Module {
            provides,
            requires,
            ..inferred
        })
    }
}

/// A registry of modules that can be composed into programs.
#[derive(Debug, Default)]
pub struct ModuleRegistry {
    modules: HashMap<String, Module>,
    /// Predicates the host supplies as extensional data.
    extensional: BTreeSet<String>,
}

impl ModuleRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a predicate as extensional (host-provided) input.
    pub fn declare_extensional(&mut self, pred: impl Into<String>) -> &mut Self {
        self.extensional.insert(pred.into());
        self
    }

    /// Register a module (replacing any module of the same name — how a
    /// business expert overrides an off-the-shelf plug-in).
    pub fn register(&mut self, module: Module) -> &mut Self {
        self.modules.insert(module.name.clone(), module);
        self
    }

    /// Registered module names, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.modules.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        names
    }

    /// Compose the named modules into one program, validating the wiring.
    pub fn compose(&self, selection: &[&str]) -> Result<Program, ModuleError> {
        // resolve
        let mut picked: Vec<&Module> = Vec::with_capacity(selection.len());
        for name in selection {
            picked.push(
                self.modules
                    .get(*name)
                    .ok_or_else(|| ModuleError::Unknown(name.to_string()))?,
            );
        }
        // provider conflicts
        let mut provider: HashMap<&str, &str> = HashMap::new();
        for m in &picked {
            for p in &m.provides {
                if let Some(first) = provider.insert(p.as_str(), m.name.as_str()) {
                    if first != m.name {
                        return Err(ModuleError::Conflict {
                            predicate: p.clone(),
                            first: first.to_string(),
                            second: m.name.clone(),
                        });
                    }
                }
            }
        }
        // requirement satisfaction
        for m in &picked {
            for r in &m.requires {
                let satisfied = self.extensional.contains(r) || provider.contains_key(r.as_str());
                if !satisfied {
                    return Err(ModuleError::Unsatisfied {
                        module: m.name.clone(),
                        predicate: r.clone(),
                    });
                }
            }
        }
        // merge and check stratifiability
        let mut program = Program::new();
        for m in &picked {
            program.extend(m.program.clone());
        }
        stratify(&program).map_err(ModuleError::Stratification)?;
        Ok(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Database, Engine, Value};

    fn reify() -> Module {
        Module::from_source(
            "reify",
            r#"tuple(M, I, VSet) :- val(M, I, A, V), cat(M, A, "quasi-identifier"),
                                   VSet = munion(pair(A, V), <A>)."#,
        )
        .unwrap()
    }

    fn kanon() -> Module {
        Module::from_source(
            "risk-kanon",
            r#"tuplea(VSet, C) :- tuple(M, I, VSet), C = mcount(<I>).
               riskOutput(I, R) :- tuple(M, I, VSet), tuplea(VSet, C),
                                   R = case C < 2 then 1.0 else 0.0."#,
        )
        .unwrap()
    }

    #[test]
    fn interface_is_inferred() {
        let m = reify();
        assert!(m.provides.contains("tuple"));
        assert!(m.requires.contains("val"));
        assert!(m.requires.contains("cat"));
        assert!(!m.requires.contains("tuple"));
    }

    #[test]
    fn explicit_interface_is_validated() {
        let bad = Module::with_interface(
            "m",
            "a(X) :- b(X).",
            vec!["zz".to_string()],
            vec!["b".to_string()],
        );
        assert!(matches!(bad, Err(ModuleError::BadInterface { .. })));
        let undeclared =
            Module::with_interface("m", "a(X) :- b(X).", vec!["a".to_string()], vec![]);
        assert!(matches!(undeclared, Err(ModuleError::BadInterface { .. })));
        let ok = Module::with_interface(
            "m",
            "a(X) :- b(X).",
            vec!["a".to_string()],
            vec!["b".to_string()],
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn composition_checks_requirements() {
        let mut reg = ModuleRegistry::new();
        reg.register(kanon());
        // tuple is not provided and not extensional
        match reg.compose(&["risk-kanon"]) {
            Err(ModuleError::Unsatisfied { predicate, .. }) => assert_eq!(predicate, "tuple"),
            other => panic!("expected Unsatisfied, got {other:?}"),
        }
        reg.register(reify());
        reg.declare_extensional("val").declare_extensional("cat");
        assert!(reg.compose(&["reify", "risk-kanon"]).is_ok());
    }

    #[test]
    fn provider_conflicts_are_rejected() {
        let mut reg = ModuleRegistry::new();
        reg.register(Module::from_source("a", "p(X) :- q(X).").unwrap());
        reg.register(Module::from_source("b", "p(X) :- r(X).").unwrap());
        reg.declare_extensional("q").declare_extensional("r");
        match reg.compose(&["a", "b"]) {
            Err(ModuleError::Conflict { predicate, .. }) => assert_eq!(predicate, "p"),
            other => panic!("expected Conflict, got {other:?}"),
        }
    }

    #[test]
    fn re_registration_swaps_the_plug_in() {
        // a business expert replaces the off-the-shelf risk module
        let mut reg = ModuleRegistry::new();
        reg.register(reify());
        reg.declare_extensional("val").declare_extensional("cat");
        reg.register(kanon());
        let strict = Module::from_source(
            "risk-kanon",
            r#"tuplea(VSet, C) :- tuple(M, I, VSet), C = mcount(<I>).
               riskOutput(I, R) :- tuple(M, I, VSet), tuplea(VSet, C),
                                   R = case C < 5 then 1.0 else 0.0."#,
        )
        .unwrap();
        reg.register(strict);
        let program = reg.compose(&["reify", "risk-kanon"]).unwrap();
        let printed = crate::print_program(&program);
        assert!(printed.contains("C < 5"), "replacement module should win");
    }

    #[test]
    fn composed_program_runs() {
        let mut reg = ModuleRegistry::new();
        reg.register(reify());
        reg.register(kanon());
        reg.declare_extensional("val").declare_extensional("cat");
        let program = reg.compose(&["reify", "risk-kanon"]).unwrap();

        let mut db = Database::new();
        let m = Value::str("m");
        db.insert(
            "cat",
            vec![m.clone(), Value::str("q"), Value::str("quasi-identifier")],
        );
        for (i, v) in [(0, "solo"), (1, "dup"), (2, "dup")] {
            db.insert(
                "val",
                vec![m.clone(), Value::Int(i), Value::str("q"), Value::str(v)],
            );
        }
        let result = Engine::new().run(&program, db).unwrap();
        let risks = result.db.rows("riskOutput");
        let of = |i: i64| {
            risks
                .iter()
                .find(|r| r[0] == Value::Int(i))
                .map(|r| r[1].clone())
                .unwrap()
        };
        assert_eq!(of(0), Value::Float(1.0));
        assert_eq!(of(1), Value::Float(0.0));
    }

    #[test]
    fn unstratifiable_composition_is_rejected() {
        let mut reg = ModuleRegistry::new();
        reg.register(Module::from_source("a", "p(X) :- q(X), not r(X).").unwrap());
        reg.register(Module::from_source("b", "r(X) :- p(X).").unwrap());
        reg.declare_extensional("q");
        assert!(matches!(
            reg.compose(&["a", "b"]),
            Err(ModuleError::Stratification(_))
        ));
    }
}
