//! Hand-written lexer and recursive-descent parser for the concrete
//! Vadalog-style syntax used throughout this reproduction.
//!
//! Grammar sketch:
//!
//! ```text
//! program   := clause*
//! clause    := label? ( fact | rule )
//! label     := '@label' '(' STRING ')'
//! fact      := atom '.'                       -- all arguments ground
//! rule      := head ':-' body '.'
//! head      := atom (',' atom)*  |  term '=' term     -- the latter is an EGD
//! body      := literal (',' literal)*
//! literal   := 'not' atom | atom | VAR '=' agg | VAR '=' expr | expr
//! agg       := AGGNAME '(' expr (',' '<' expr (',' expr)* '>')? ')'
//! expr      := standard precedence climbing with
//!              or/and, comparisons, 'in', 'subset', 'union',
//!              + - * / %, unary -, 'not', case-then-else,
//!              postfix indexing `e[e]`, calls `f(e, …)`,
//!              set literals `{e, …}`, pair literals `(e, e)`
//! ```
//!
//! Identifiers beginning with a lowercase letter are predicate / function
//! names; identifiers beginning with an uppercase letter or `_` are
//! variables. Strings are double-quoted. `%` starts a line comment.

use crate::ast::*;
use crate::value::Value;
use std::fmt;

/// Parse error with a human-oriented message and source offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Explanation of what went wrong.
    pub message: String,
    /// Byte offset into the source.
    pub offset: usize,
    /// 1-based line number.
    pub line: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Var(String),
    Str(String),
    Int(i64),
    Float(f64),
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Dot,
    Implies, // :-
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Star,
    Slash,
    At,
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn line_at(&self, offset: usize) -> usize {
        self.src[..offset.min(self.src.len())]
            .bytes()
            .filter(|&b| b == b'\n')
            .count()
            + 1
    }

    fn error(&self, msg: impl Into<String>, offset: usize) -> ParseError {
        ParseError {
            message: msg.into(),
            offset,
            line: self.line_at(offset),
        }
    }

    fn skip_ws(&mut self) {
        loop {
            while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            if self.pos < self.bytes.len() && self.bytes[self.pos] == b'%' {
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn tokenize(mut self) -> Result<Vec<(Tok, usize)>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            if self.pos >= self.bytes.len() {
                break;
            }
            let start = self.pos;
            let b = self.bytes[self.pos];
            let tok = match b {
                b'(' => {
                    self.pos += 1;
                    Tok::LParen
                }
                b')' => {
                    self.pos += 1;
                    Tok::RParen
                }
                b'[' => {
                    self.pos += 1;
                    Tok::LBracket
                }
                b']' => {
                    self.pos += 1;
                    Tok::RBracket
                }
                b'{' => {
                    self.pos += 1;
                    Tok::LBrace
                }
                b'}' => {
                    self.pos += 1;
                    Tok::RBrace
                }
                b',' => {
                    self.pos += 1;
                    Tok::Comma
                }
                b'.' => {
                    self.pos += 1;
                    Tok::Dot
                }
                b'@' => {
                    self.pos += 1;
                    Tok::At
                }
                b'+' => {
                    self.pos += 1;
                    Tok::Plus
                }
                b'*' => {
                    self.pos += 1;
                    Tok::Star
                }
                b'/' => {
                    self.pos += 1;
                    Tok::Slash
                }
                b':' => {
                    if self.bytes.get(self.pos + 1) == Some(&b'-') {
                        self.pos += 2;
                        Tok::Implies
                    } else {
                        return Err(self.error("expected ':-'", start));
                    }
                }
                b'=' => {
                    self.pos += 1;
                    Tok::Eq
                }
                b'!' => {
                    if self.bytes.get(self.pos + 1) == Some(&b'=') {
                        self.pos += 2;
                        Tok::Ne
                    } else {
                        return Err(self.error("expected '!='", start));
                    }
                }
                b'<' => {
                    if self.bytes.get(self.pos + 1) == Some(&b'=') {
                        self.pos += 2;
                        Tok::Le
                    } else {
                        self.pos += 1;
                        Tok::Lt
                    }
                }
                b'>' => {
                    if self.bytes.get(self.pos + 1) == Some(&b'=') {
                        self.pos += 2;
                        Tok::Ge
                    } else {
                        self.pos += 1;
                        Tok::Gt
                    }
                }
                b'-' => {
                    self.pos += 1;
                    Tok::Minus
                }
                b'"' => {
                    self.pos += 1;
                    let mut s = String::new();
                    loop {
                        match self.bytes.get(self.pos) {
                            None => return Err(self.error("unterminated string", start)),
                            Some(b'"') => {
                                self.pos += 1;
                                break;
                            }
                            Some(b'\\') => {
                                self.pos += 1;
                                match self.bytes.get(self.pos) {
                                    Some(b'n') => s.push('\n'),
                                    Some(b't') => s.push('\t'),
                                    Some(b'"') => s.push('"'),
                                    Some(b'\\') => s.push('\\'),
                                    _ => return Err(self.error("bad escape", self.pos)),
                                }
                                self.pos += 1;
                            }
                            Some(_) => {
                                // handle multi-byte UTF-8 by char iteration
                                let Some(ch) =
                                    self.src.get(self.pos..).and_then(|t| t.chars().next())
                                else {
                                    return Err(self.error("unterminated string", start));
                                };
                                s.push(ch);
                                self.pos += ch.len_utf8();
                            }
                        }
                    }
                    Tok::Str(s)
                }
                b'0'..=b'9' => {
                    let mut end = self.pos;
                    let mut is_float = false;
                    while end < self.bytes.len()
                        && (self.bytes[end].is_ascii_digit()
                            || (self.bytes[end] == b'.'
                                && end + 1 < self.bytes.len()
                                && self.bytes[end + 1].is_ascii_digit()
                                && !is_float))
                    {
                        if self.bytes[end] == b'.' {
                            is_float = true;
                        }
                        end += 1;
                    }
                    // exponent
                    if end < self.bytes.len()
                        && (self.bytes[end] == b'e' || self.bytes[end] == b'E')
                    {
                        let mut e = end + 1;
                        if e < self.bytes.len() && (self.bytes[e] == b'+' || self.bytes[e] == b'-')
                        {
                            e += 1;
                        }
                        if e < self.bytes.len() && self.bytes[e].is_ascii_digit() {
                            is_float = true;
                            while e < self.bytes.len() && self.bytes[e].is_ascii_digit() {
                                e += 1;
                            }
                            end = e;
                        }
                    }
                    let text = &self.src[self.pos..end];
                    self.pos = end;
                    if is_float {
                        Tok::Float(
                            text.parse()
                                .map_err(|_| self.error("bad float literal", start))?,
                        )
                    } else {
                        Tok::Int(
                            text.parse()
                                .map_err(|_| self.error("bad int literal", start))?,
                        )
                    }
                }
                c if c.is_ascii_alphabetic() || c == b'_' => {
                    let mut end = self.pos;
                    while end < self.bytes.len()
                        && (self.bytes[end].is_ascii_alphanumeric() || self.bytes[end] == b'_')
                    {
                        end += 1;
                    }
                    let text = &self.src[self.pos..end];
                    self.pos = end;
                    if c.is_ascii_uppercase() || c == b'_' {
                        Tok::Var(text.to_string())
                    } else {
                        Tok::Ident(text.to_string())
                    }
                }
                _ => return Err(self.error(format!("unexpected character '{}'", b as char), start)),
            };
            out.push((tok, start));
        }
        Ok(out)
    }
}

/// Maximum expression-nesting depth before the parser gives up with a
/// `ParseError` instead of risking a stack overflow on adversarial input
/// like `((((((…`.
const MAX_EXPR_DEPTH: usize = 200;

struct Parser<'a> {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    src: &'a str,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|(t, _)| t)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn offset(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|(_, o)| *o)
            .unwrap_or(self.src.len())
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        let offset = self.offset();
        let line = self.src[..offset.min(self.src.len())]
            .bytes()
            .filter(|&b| b == b'\n')
            .count()
            + 1;
        ParseError {
            message: msg.into(),
            offset,
            line,
        }
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if *t == tok => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.error(format!("expected {what}, found {other:?}"))),
        }
    }

    fn parse_program(&mut self) -> Result<Program, ParseError> {
        let mut program = Program::new();
        let mut pending_label: Option<String> = None;
        while self.peek().is_some() {
            if self.peek() == Some(&Tok::At) {
                self.next();
                match self.next() {
                    Some(Tok::Ident(name)) if name == "label" => {
                        self.expect(Tok::LParen, "'('")?;
                        let label = match self.next() {
                            Some(Tok::Str(s)) => s,
                            _ => return Err(self.error("expected string label")),
                        };
                        self.expect(Tok::RParen, "')'")?;
                        pending_label = Some(label);
                    }
                    Some(Tok::Ident(other)) => {
                        return Err(self.error(format!("unknown annotation @{other}")))
                    }
                    _ => return Err(self.error("expected annotation name after '@'")),
                }
                continue;
            }
            let clause = self.parse_clause(pending_label.take())?;
            match clause {
                Clause::Fact(f) => program.facts.push(f),
                Clause::Rule(r) => program.rules.push(r),
            }
        }
        Ok(program)
    }

    fn parse_clause(&mut self, label: Option<String>) -> Result<Clause, ParseError> {
        // Distinguish: `atom.` (fact), `head :- body.` (rule), `t = t :- …` (EGD)
        // Try an EGD head: VAR '=' term ':-'
        if let (Some(Tok::Var(_)), Some(Tok::Eq)) = (self.peek(), self.peek2()) {
            let lhs = self.parse_term()?;
            self.expect(Tok::Eq, "'='")?;
            let rhs = self.parse_term()?;
            self.expect(Tok::Implies, "':-'")?;
            let body = self.parse_body()?;
            self.expect(Tok::Dot, "'.'")?;
            return Ok(Clause::Rule(Rule {
                head: Head::Equality(lhs, rhs),
                body,
                label,
            }));
        }
        let first = self.parse_atom()?;
        match self.peek() {
            Some(Tok::Dot) => {
                self.next();
                // fact: all args must be constants
                let mut args = Vec::with_capacity(first.args.len());
                for t in &first.args {
                    match t {
                        Term::Const(v) => args.push(v.clone()),
                        Term::Var(v) => {
                            return Err(self.error(format!("fact contains non-ground variable {v}")))
                        }
                    }
                }
                Ok(Clause::Fact(Fact::new(first.pred, args)))
            }
            Some(Tok::Comma) | Some(Tok::Implies) => {
                let mut heads = vec![first];
                while self.peek() == Some(&Tok::Comma) {
                    self.next();
                    heads.push(self.parse_atom()?);
                }
                self.expect(Tok::Implies, "':-'")?;
                let body = self.parse_body()?;
                self.expect(Tok::Dot, "'.'")?;
                Ok(Clause::Rule(Rule {
                    head: Head::Atoms(heads),
                    body,
                    label,
                }))
            }
            other => Err(self.error(format!("expected '.', ',' or ':-', found {other:?}"))),
        }
    }

    fn parse_body(&mut self) -> Result<Vec<Literal>, ParseError> {
        let mut lits = vec![self.parse_literal()?];
        while self.peek() == Some(&Tok::Comma) {
            self.next();
            lits.push(self.parse_literal()?);
        }
        Ok(lits)
    }

    fn parse_literal(&mut self) -> Result<Literal, ParseError> {
        // negation: `not p(X)` is a negated atom unless `p` is a builtin
        // function name, in which case the whole thing is a boolean condition
        // like `not is_null(V)`.
        if let Some(Tok::Ident(id)) = self.peek() {
            if id == "not" {
                if let Some(Tok::Ident(next_id)) = self.peek2() {
                    if !is_builtin_fn(next_id) {
                        self.next();
                        let atom = self.parse_atom()?;
                        return Ok(Literal::Neg(atom));
                    }
                }
            }
        }
        // plain atom
        if let (Some(Tok::Ident(id)), Some(Tok::LParen)) = (self.peek(), self.peek2()) {
            if !is_builtin_fn(id) && id != "case" && id != "not" {
                let atom = self.parse_atom()?;
                return Ok(Literal::Pos(atom));
            }
        }
        // `VAR = aggfunc(...)` or `VAR = expr` or a bare condition expression
        if let (Some(Tok::Var(v)), Some(Tok::Eq)) = (self.peek(), self.peek2()) {
            let var = v.clone();
            // look ahead for aggregate
            let agg_func = match self.toks.get(self.pos + 2) {
                Some((Tok::Ident(fname), _)) => AggFunc::from_name(fname),
                _ => None,
            };
            if let Some(func) = agg_func {
                if self.toks.get(self.pos + 3).map(|(t, _)| t) == Some(&Tok::LParen) {
                    self.pos += 4; // VAR = fname (
                                   // `mcount(<I>)` has no contribution expression; every
                                   // contributor counts 1.
                    let arg = if self.peek() == Some(&Tok::Lt) {
                        Expr::val(1i64)
                    } else {
                        self.parse_expr()?
                    };
                    let mut contributors = Vec::new();
                    let has_comma = self.peek() == Some(&Tok::Comma);
                    if has_comma {
                        self.next();
                    }
                    if has_comma || self.peek() == Some(&Tok::Lt) {
                        self.expect(Tok::Lt, "'<' opening contributor list")?;
                        // contributors are parsed at additive precedence so
                        // the closing '>' is not mistaken for a comparison
                        contributors.push(self.parse_additive()?);
                        while self.peek() == Some(&Tok::Comma) {
                            self.next();
                            contributors.push(self.parse_additive()?);
                        }
                        self.expect(Tok::Gt, "'>' closing contributor list")?;
                    }
                    self.expect(Tok::RParen, "')'")?;
                    return Ok(Literal::Agg {
                        var,
                        func,
                        arg,
                        contributors,
                    });
                }
            }
            self.pos += 2; // VAR =
            let expr = self.parse_expr()?;
            return Ok(Literal::Let { var, expr });
        }
        // otherwise: a condition expression
        let expr = self.parse_expr()?;
        Ok(Literal::Cond(expr))
    }

    fn parse_atom(&mut self) -> Result<Atom, ParseError> {
        let pred = match self.next() {
            Some(Tok::Ident(p)) => p,
            other => return Err(self.error(format!("expected predicate name, found {other:?}"))),
        };
        self.expect(Tok::LParen, "'('")?;
        let mut args = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            args.push(self.parse_term()?);
            while self.peek() == Some(&Tok::Comma) {
                self.next();
                args.push(self.parse_term()?);
            }
        }
        self.expect(Tok::RParen, "')'")?;
        Ok(Atom::new(pred, args))
    }

    fn parse_term(&mut self) -> Result<Term, ParseError> {
        match self.next() {
            Some(Tok::Var(v)) => Ok(Term::Var(v)),
            Some(Tok::Str(s)) => Ok(Term::Const(Value::str(s))),
            Some(Tok::Int(i)) => Ok(Term::Const(Value::Int(i))),
            Some(Tok::Float(f)) => Ok(Term::Const(Value::Float(f))),
            Some(Tok::Minus) => match self.next() {
                Some(Tok::Int(i)) => Ok(Term::Const(Value::Int(-i))),
                Some(Tok::Float(f)) => Ok(Term::Const(Value::Float(-f))),
                other => Err(self.error(format!("expected number after '-', found {other:?}"))),
            },
            Some(Tok::Ident(id)) if id == "true" => Ok(Term::Const(Value::Bool(true))),
            Some(Tok::Ident(id)) if id == "false" => Ok(Term::Const(Value::Bool(false))),
            other => Err(self.error(format!("expected term, found {other:?}"))),
        }
    }

    // --- expressions, precedence climbing ---

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.enter_expr()?;
        let e = self.parse_or();
        self.depth -= 1;
        e
    }

    /// Bump the nesting depth, failing cleanly once the recursion would
    /// get deep enough to threaten the stack.
    fn enter_expr(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_EXPR_DEPTH {
            return Err(self.error(format!(
                "expression nesting exceeds {MAX_EXPR_DEPTH} levels"
            )));
        }
        Ok(())
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_and()?;
        while matches!(self.peek(), Some(Tok::Ident(id)) if id == "or") {
            self.next();
            let rhs = self.parse_and()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_cmp()?;
        while matches!(self.peek(), Some(Tok::Ident(id)) if id == "and") {
            self.next();
            let rhs = self.parse_cmp()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_additive()?;
        let op = match self.peek() {
            Some(Tok::Eq) => Some(BinOp::Eq),
            Some(Tok::Ne) => Some(BinOp::Ne),
            Some(Tok::Lt) => Some(BinOp::Lt),
            Some(Tok::Le) => Some(BinOp::Le),
            Some(Tok::Gt) => Some(BinOp::Gt),
            Some(Tok::Ge) => Some(BinOp::Ge),
            Some(Tok::Ident(id)) if id == "in" => Some(BinOp::In),
            Some(Tok::Ident(id)) if id == "subset" => Some(BinOp::Subset),
            _ => None,
        };
        if let Some(op) = op {
            self.next();
            let rhs = self.parse_additive()?;
            Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                Some(Tok::Ident(id)) if id == "union" => BinOp::Union,
                _ => break,
            };
            self.next();
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                _ => break,
            };
            self.next();
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        self.enter_expr()?;
        let e = match self.peek() {
            Some(Tok::Minus) => {
                self.next();
                let e = self.parse_unary();
                e.map(|e| Expr::Unary(UnOp::Neg, Box::new(e)))
            }
            Some(Tok::Ident(id)) if id == "not" => {
                self.next();
                let e = self.parse_unary();
                e.map(|e| Expr::Unary(UnOp::Not, Box::new(e)))
            }
            _ => self.parse_postfix(),
        };
        self.depth -= 1;
        e
    }

    fn parse_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.parse_primary()?;
        while self.peek() == Some(&Tok::LBracket) {
            self.next();
            let idx = self.parse_expr()?;
            self.expect(Tok::RBracket, "']'")?;
            e = Expr::Index(Box::new(e), Box::new(idx));
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Int(i)) => {
                self.next();
                Ok(Expr::val(i))
            }
            Some(Tok::Float(f)) => {
                self.next();
                Ok(Expr::val(f))
            }
            Some(Tok::Str(s)) => {
                self.next();
                Ok(Expr::Const(Value::str(s)))
            }
            Some(Tok::Var(v)) => {
                self.next();
                Ok(Expr::Var(v))
            }
            Some(Tok::LParen) => {
                self.next();
                let first = self.parse_expr()?;
                if self.peek() == Some(&Tok::Comma) {
                    // pair / tuple literal
                    let mut items = vec![first];
                    while self.peek() == Some(&Tok::Comma) {
                        self.next();
                        items.push(self.parse_expr()?);
                    }
                    self.expect(Tok::RParen, "')'")?;
                    Ok(Expr::Call("tuple".into(), items))
                } else {
                    self.expect(Tok::RParen, "')'")?;
                    Ok(first)
                }
            }
            Some(Tok::LBrace) => {
                self.next();
                let mut items = Vec::new();
                if self.peek() != Some(&Tok::RBrace) {
                    items.push(self.parse_expr()?);
                    while self.peek() == Some(&Tok::Comma) {
                        self.next();
                        items.push(self.parse_expr()?);
                    }
                }
                self.expect(Tok::RBrace, "'}'")?;
                Ok(Expr::Call("set".into(), items))
            }
            Some(Tok::Ident(id)) => {
                match id.as_str() {
                    "true" => {
                        self.next();
                        Ok(Expr::val(true))
                    }
                    "false" => {
                        self.next();
                        Ok(Expr::val(false))
                    }
                    "case" => {
                        self.next();
                        let cond = self.parse_expr()?;
                        match self.next() {
                            Some(Tok::Ident(k)) if k == "then" => {}
                            other => {
                                return Err(self.error(format!("expected 'then', got {other:?}")))
                            }
                        }
                        let then = self.parse_expr()?;
                        match self.next() {
                            Some(Tok::Ident(k)) if k == "else" => {}
                            other => {
                                return Err(self.error(format!("expected 'else', got {other:?}")))
                            }
                        }
                        let otherwise = self.parse_expr()?;
                        Ok(Expr::Case {
                            cond: Box::new(cond),
                            then: Box::new(then),
                            otherwise: Box::new(otherwise),
                        })
                    }
                    _ => {
                        // function call
                        self.next();
                        if self.peek() == Some(&Tok::LParen) {
                            self.next();
                            let mut args = Vec::new();
                            if self.peek() != Some(&Tok::RParen) {
                                args.push(self.parse_expr()?);
                                while self.peek() == Some(&Tok::Comma) {
                                    self.next();
                                    args.push(self.parse_expr()?);
                                }
                            }
                            self.expect(Tok::RParen, "')'")?;
                            Ok(Expr::Call(id, args))
                        } else {
                            // bare lowercase identifier: treat as a symbol constant
                            Ok(Expr::Const(Value::str(id)))
                        }
                    }
                }
            }
            other => Err(self.error(format!("expected expression, found {other:?}"))),
        }
    }
}

enum Clause {
    Fact(Fact),
    Rule(Rule),
}

/// Names treated as builtin expression functions rather than predicates
/// when they lead a body literal. `tuple` is deliberately absent: the
/// Vada-SA programs use it as a predicate; in expression position any
/// `name(…)` still parses as a call, so `tuple(a, b)` literals keep
/// working inside expressions.
fn is_builtin_fn(name: &str) -> bool {
    matches!(
        name,
        "size"
            | "pair"
            | "first"
            | "second"
            | "nth"
            | "set"
            | "setminus"
            | "contains"
            | "keys"
            | "values"
            | "is_null"
            | "min"
            | "max"
            | "abs"
            | "pow"
            | "sqrt"
            | "ln"
            | "exp"
            | "concat"
            | "upper"
            | "lower"
            | "starts_with"
            | "ends_with"
            | "contains_str"
            | "substr"
            | "union_of"
    )
}

/// Parse a complete program from source text.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let toks = Lexer::new(src).tokenize()?;
    let mut p = Parser {
        toks,
        pos: 0,
        src,
        depth: 0,
    };
    p.parse_program()
}

/// Parse a single rule (must end with `.`).
pub fn parse_rule(src: &str) -> Result<Rule, ParseError> {
    let prog = parse_program(src)?;
    if prog.rules.len() != 1 || !prog.facts.is_empty() {
        return Err(ParseError {
            message: format!(
                "expected exactly one rule, found {} rules and {} facts",
                prog.rules.len(),
                prog.facts.len()
            ),
            offset: 0,
            line: 1,
        });
    }
    match prog.rules.into_iter().next() {
        Some(rule) => Ok(rule),
        None => Err(ParseError {
            message: "expected exactly one rule".to_string(),
            offset: 0,
            line: 1,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_facts() {
        let p = parse_program(r#"att("I&G", "Id"). num(3). f(2.5). neg(-7)."#).unwrap();
        assert_eq!(p.facts.len(), 4);
        assert_eq!(p.facts[0].pred, "att");
        assert_eq!(p.facts[0].args[0], Value::str("I&G"));
        assert_eq!(p.facts[3].args[0], Value::Int(-7));
    }

    #[test]
    fn parses_plain_rule() {
        let r = parse_rule("anc(X, Y) :- par(X, Z), anc(Z, Y).").unwrap();
        assert_eq!(r.head_preds(), vec!["anc"]);
        assert_eq!(r.body.len(), 2);
    }

    #[test]
    fn parses_negation() {
        let r = parse_rule("only(X) :- p(X), not q(X).").unwrap();
        assert!(matches!(&r.body[1], Literal::Neg(a) if a.pred == "q"));
    }

    #[test]
    fn parses_aggregate_with_contributor() {
        let r = parse_rule("out(G, R) :- t(G, I, W), R = msum(W, <I>).").unwrap();
        match &r.body[1] {
            Literal::Agg {
                var,
                func,
                contributors,
                ..
            } => {
                assert_eq!(var, "R");
                assert_eq!(*func, AggFunc::MSum);
                assert_eq!(contributors.len(), 1);
            }
            other => panic!("expected aggregate, got {other:?}"),
        }
    }

    #[test]
    fn parses_condition_and_let() {
        let r = parse_rule("risky(I) :- t(I, R), S = 1 / R, S > 0.5.").unwrap();
        assert!(matches!(&r.body[1], Literal::Let { var, .. } if var == "S"));
        assert!(matches!(&r.body[2], Literal::Cond(_)));
    }

    #[test]
    fn parses_egd() {
        let p = parse_program("C1 = C2 :- cat(M, A, C1), cat(M, A, C2).").unwrap();
        assert_eq!(p.rules.len(), 1);
        assert!(matches!(&p.rules[0].head, Head::Equality(_, _)));
    }

    #[test]
    fn parses_multi_head() {
        let r = parse_rule("comb(Z, I), isin(A, Z) :- t(I, A).").unwrap();
        match &r.head {
            Head::Atoms(atoms) => assert_eq!(atoms.len(), 2),
            _ => panic!("expected atoms head"),
        }
        assert!(r.existential_vars().contains("Z"));
    }

    #[test]
    fn parses_case_expression() {
        let r = parse_rule("o(I, R) :- t(I, N), R = case N < 3 then 1 else 0.").unwrap();
        match &r.body[1] {
            Literal::Let { expr, .. } => assert!(matches!(expr, Expr::Case { .. })),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_indexing_and_calls() {
        let r = parse_rule("o(V) :- t(S, K), V = S[K], size(S) > 2.").unwrap();
        assert!(matches!(&r.body[1], Literal::Let { .. }));
        assert!(matches!(&r.body[2], Literal::Cond(_)));
    }

    #[test]
    fn parses_set_literal_and_pair() {
        let r = parse_rule("o(X) :- t(A, B), X = {pair(A, B), pair(B, A)}.").unwrap();
        match &r.body[1] {
            Literal::Let { expr, .. } => match expr {
                Expr::Call(name, items) => {
                    assert_eq!(name, "set");
                    assert_eq!(items.len(), 2);
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_labels() {
        let p = parse_program(
            r#"@label("rule one")
               a(X) :- b(X)."#,
        )
        .unwrap();
        assert_eq!(p.rules[0].label.as_deref(), Some("rule one"));
    }

    #[test]
    fn comments_are_skipped() {
        let p = parse_program("% a comment\na(1). % trailing\n% another\nb(2).").unwrap();
        assert_eq!(p.facts.len(), 2);
    }

    #[test]
    fn error_reports_line() {
        let err = parse_program("a(1).\nb(X.").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_nonground_fact() {
        assert!(parse_program("a(X).").is_err());
    }

    #[test]
    fn bare_lowercase_in_expr_is_symbol() {
        // `C = quasi` parses as a Let on C; the evaluator treats a Let on an
        // already-bound variable as an equality filter.
        let r = parse_rule(r#"o(X) :- t(X, C), C = quasi."#).unwrap();
        match &r.body[1] {
            Literal::Let { var, expr } => {
                assert_eq!(var, "C");
                assert_eq!(*expr, Expr::Const(Value::str("quasi")));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
