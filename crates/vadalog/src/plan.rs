//! Join planning: per-rule body-literal ordering by boundness and
//! estimated selectivity.
//!
//! The evaluator joins a rule's positive body literals left to right.
//! Source order is rarely the cheapest order: joining the *most bound*
//! atom first (most argument positions already fixed by constants or
//! earlier literals) shrinks the intermediate binding set, and among
//! equally bound atoms the smaller relation is the better driver. The
//! planner performs that greedy reordering once per rule per semi-naive
//! round (relation sizes change between rounds), subject to semantics:
//!
//! - negations, conditions and assignments are scheduled as soon as every
//!   variable they need is bound — never before, since an unbound negation
//!   or condition would silently change the rule's meaning;
//! - in a delta-focused pass the focused literal is placed first: the
//!   delta is the smallest input by construction and anchoring it bounds
//!   the rest of the join;
//! - aggregates never reach the planner (aggregate rules split their body
//!   before joining, see the evaluator).
//!
//! Because the execution order is fixed by the plan, the set of bound
//! argument positions of every positive literal is *statically known*.
//! The plan records those masks so the engine can prebuild the matching
//! hash indexes ([`crate::storage::Relation::ensure_index`]) before the
//! join — and, crucially, before fanning rule evaluation out to threads,
//! after which all index access is read-only.

use crate::ast::{Literal, Rule, Term};
use crate::storage::Database;
use std::collections::BTreeSet;

/// One scheduled body literal.
#[derive(Debug, Clone)]
pub struct PlanStep {
    /// Index of the literal in the rule body.
    pub lit: usize,
    /// For positive atoms: argument positions bound at probe time
    /// (constants, repeated variables resolved earlier, or variables bound
    /// by previous steps). Empty for non-positive literals and for the
    /// delta-focused literal (which scans the delta instead of probing).
    pub bound: Vec<usize>,
}

/// An execution order for one rule body.
#[derive(Debug, Clone)]
pub struct JoinPlan {
    /// Steps in execution order; covers every body literal exactly once.
    pub steps: Vec<PlanStep>,
    /// Body index of the delta-focused literal, if this is a delta pass.
    pub focus: Option<usize>,
    /// Did the planner deviate from source order?
    pub reordered: bool,
    /// Semi-join short-circuit: some positive, non-focused body literal
    /// reads an empty relation, so the join cannot produce a single
    /// binding. The executor skips dead plans whole (no index builds, no
    /// scans) and counts them as `planner_prunes`. This is what makes
    /// magic-guarded rules cheap before their magic set first fills, and
    /// spares the business-control recursion from re-scanning strata
    /// whose inputs are empty.
    pub dead: bool,
}

impl JoinPlan {
    /// (predicate, bound positions) pairs whose indexes the executor needs.
    pub fn index_needs<'a>(
        &'a self,
        rule: &'a Rule,
    ) -> impl Iterator<Item = (&'a str, &'a [usize])> {
        self.steps.iter().filter_map(move |s| {
            if Some(s.lit) == self.focus || s.bound.is_empty() {
                return None;
            }
            match &rule.body[s.lit] {
                Literal::Pos(a) => Some((a.pred.as_str(), s.bound.as_slice())),
                _ => None,
            }
        })
    }
}

/// The do-nothing plan: literals in source order, no probe masks. This is
/// the execution order of the reference nested-loop evaluator
/// ([`JoinMode::Reference`](crate::eval::JoinMode)), kept as the
/// correctness oracle the planned/indexed path is tested against.
pub fn identity_plan(rule: &Rule, focus: Option<usize>) -> JoinPlan {
    JoinPlan {
        steps: (0..rule.body.len())
            .map(|lit| PlanStep {
                lit,
                bound: Vec::new(),
            })
            .collect(),
        focus,
        reordered: false,
        dead: false,
    }
}

/// Estimated driving cost of scanning `pred` (relation cardinality).
fn relation_size(db: &Database, pred: &str) -> usize {
    db.relation(pred).map(|r| r.len()).unwrap_or(0)
}

/// Statically bound argument positions of a positive atom given the set of
/// already-bound variables. A repeated variable's *first* occurrence binds
/// it, so only subsequent occurrences (and pre-bound variables and
/// constants) count as bound for index purposes.
fn bound_positions(args: &[Term], bound_vars: &BTreeSet<&str>) -> Vec<usize> {
    let mut seen_here: BTreeSet<&str> = BTreeSet::new();
    let mut out = Vec::new();
    for (i, t) in args.iter().enumerate() {
        match t {
            Term::Const(_) => out.push(i),
            Term::Var(v) => {
                if bound_vars.contains(v.as_str()) || seen_here.contains(v.as_str()) {
                    out.push(i);
                } else {
                    seen_here.insert(v);
                }
            }
        }
    }
    out
}

/// Plan a rule body. `focus` is the body index of the delta-focused
/// positive literal for semi-naive passes (`None` on the full pass).
/// `delta_size` estimates the focused literal's cardinality.
pub fn plan_rule(rule: &Rule, db: &Database, focus: Option<usize>, delta_size: usize) -> JoinPlan {
    let body = &rule.body;
    // A positive, non-focused literal over an empty relation makes the
    // whole join vacuous; mark the plan dead so the executor can skip it
    // without building indexes or scanning anything.
    let dead = body.iter().enumerate().any(|(i, lit)| match lit {
        Literal::Pos(a) if Some(i) != focus => relation_size(db, &a.pred) == 0,
        _ => false,
    });
    let mut placed = vec![false; body.len()];
    let mut bound_vars: BTreeSet<&str> = BTreeSet::new();
    let mut steps: Vec<PlanStep> = Vec::with_capacity(body.len());

    // Schedule every non-positive literal whose requirements are met, in
    // source order; repeat so `Let` chains resolve. Returns false if any
    // literal is still blocked (callers retry after binding more vars).
    fn place_ready<'r>(
        body: &'r [Literal],
        placed: &mut [bool],
        bound_vars: &mut BTreeSet<&'r str>,
        steps: &mut Vec<PlanStep>,
    ) {
        loop {
            let mut progressed = false;
            for (i, lit) in body.iter().enumerate() {
                if placed[i] || matches!(lit, Literal::Pos(_)) {
                    continue;
                }
                let ready = lit
                    .required_vars()
                    .iter()
                    .all(|v| bound_vars.contains(v.as_str()));
                if ready {
                    placed[i] = true;
                    if let Literal::Let { var, .. } = lit {
                        bound_vars.insert(var.as_str());
                    }
                    steps.push(PlanStep {
                        lit: i,
                        bound: Vec::new(),
                    });
                    progressed = true;
                }
            }
            if !progressed {
                return;
            }
        }
    }

    // The delta-focused literal anchors the join.
    if let Some(f) = focus {
        placed[f] = true;
        if let Literal::Pos(a) = &body[f] {
            for v in a.vars() {
                bound_vars.insert(v);
            }
        }
        steps.push(PlanStep {
            lit: f,
            bound: Vec::new(),
        });
        place_ready(body, &mut placed, &mut bound_vars, &mut steps);
    }

    loop {
        place_ready(body, &mut placed, &mut bound_vars, &mut steps);
        // pick the best unplaced positive literal
        let mut best: Option<(usize, bool, usize, usize)> = None; // (lit, fully_bound, bound_count, size)
        for (i, lit) in body.iter().enumerate() {
            if placed[i] {
                continue;
            }
            let Literal::Pos(a) = lit else { continue };
            let nbound = bound_positions(&a.args, &bound_vars).len();
            let size = relation_size(db, &a.pred);
            // A literal with every position bound is a pure existence
            // check (a semi-join filter): it binds nothing new and either
            // keeps or kills the current binding, so running it before
            // any widening join subsumes work the join would multiply.
            let full = !a.args.is_empty() && nbound == a.args.len();
            let better = match &best {
                None => true,
                Some((_, bf, bb, bs)) => {
                    // fully-bound filters first; then more bound
                    // positions; then smaller relation; then source order
                    // (implicit via iteration order)
                    (full, nbound, usize::MAX - size) > (*bf, *bb, usize::MAX - *bs)
                }
            };
            if better {
                best = Some((i, full, nbound, size));
            }
        }
        let Some((i, _, _, _)) = best else { break };
        let Literal::Pos(a) = &body[i] else { break };
        let bound = bound_positions(&a.args, &bound_vars);
        for v in a.vars() {
            bound_vars.insert(v);
        }
        placed[i] = true;
        steps.push(PlanStep { lit: i, bound });
    }
    place_ready(body, &mut placed, &mut bound_vars, &mut steps);

    // Blocked leftovers (possible only for rules that would fail the
    // safety check): append in source order so execution degrades to the
    // source semantics instead of dropping literals.
    for (i, p) in placed.iter().enumerate() {
        if !p {
            steps.push(PlanStep {
                lit: i,
                bound: Vec::new(),
            });
        }
    }

    let reordered = steps.iter().enumerate().any(|(pos, s)| s.lit != pos);
    let _ = delta_size; // reserved for finer selectivity estimates
    JoinPlan {
        steps,
        focus,
        reordered,
        dead,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rule;
    use crate::value::Value;

    fn db_with(sizes: &[(&str, usize)]) -> Database {
        let mut db = Database::new();
        for (pred, n) in sizes {
            for i in 0..*n {
                db.insert(*pred, vec![Value::Int(i as i64), Value::Int(i as i64 + 1)]);
            }
        }
        db
    }

    #[test]
    fn smaller_relation_drives_the_join() {
        let rule = parse_rule("h(X, Y) :- big(X, Z), small(Z, Y).").unwrap();
        let db = db_with(&[("big", 100), ("small", 2)]);
        let plan = plan_rule(&rule, &db, None, 0);
        assert_eq!(plan.steps[0].lit, 1, "small relation should go first");
        assert!(plan.reordered);
        // after small(Z, Y) binds Z, big probes on position 1
        assert_eq!(plan.steps[1].bound, vec![1]);
    }

    #[test]
    fn constants_count_as_bound() {
        let rule = parse_rule("h(X) :- a(X, Y), b(1, X).").unwrap();
        let db = db_with(&[("a", 10), ("b", 10)]);
        let plan = plan_rule(&rule, &db, None, 0);
        // b(1, X) has one bound position (the constant) vs zero for a
        assert_eq!(plan.steps[0].lit, 1);
        assert_eq!(plan.steps[0].bound, vec![0]);
    }

    #[test]
    fn negation_waits_for_its_variables() {
        let rule = parse_rule("h(X) :- not q(Y), p(X, Y).").unwrap();
        let db = db_with(&[("p", 5), ("q", 5)]);
        let plan = plan_rule(&rule, &db, None, 0);
        let neg_pos = plan.steps.iter().position(|s| s.lit == 0).unwrap();
        let pos_pos = plan.steps.iter().position(|s| s.lit == 1).unwrap();
        assert!(neg_pos > pos_pos, "negation must follow its binder");
    }

    #[test]
    fn focus_literal_is_first() {
        let rule = parse_rule("p(X, Y) :- e(X, Z), p(Z, Y).").unwrap();
        let db = db_with(&[("e", 50), ("p", 50)]);
        let plan = plan_rule(&rule, &db, Some(1), 3);
        assert_eq!(plan.steps[0].lit, 1);
        assert_eq!(plan.focus, Some(1));
        // e then probes on Z (position 1)
        assert_eq!(plan.steps[1].lit, 0);
        assert_eq!(plan.steps[1].bound, vec![1]);
    }

    #[test]
    fn let_chain_schedules_in_dependency_order() {
        let rule = parse_rule("h(B) :- t(X), A = X + 1, B = A * 2, B > 0.").unwrap();
        let db = db_with(&[("t", 3)]);
        let plan = plan_rule(&rule, &db, None, 0);
        let order: Vec<usize> = plan.steps.iter().map(|s| s.lit).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
        assert!(!plan.reordered);
    }

    #[test]
    fn empty_relation_marks_plan_dead() {
        let rule = parse_rule("h(X, Y) :- big(X, Z), nothing(Z, Y).").unwrap();
        let db = db_with(&[("big", 100)]); // `nothing` has no relation
        let plan = plan_rule(&rule, &db, None, 0);
        assert!(plan.dead);
        // the focused literal's emptiness is handled by delta bookkeeping,
        // not by the dead flag
        let plan = plan_rule(&rule, &db, Some(1), 0);
        assert!(!plan.dead);
    }

    #[test]
    fn fully_bound_literal_runs_as_early_filter() {
        // After big(X, Z) is placed, seen(X) is fully bound — a pure
        // existence check — while wide(X, Z, Y) has *more* bound positions
        // (two) but still widens the binding set with Y. The hoist must
        // schedule the semi-join filter first regardless of bound counts.
        let rule = parse_rule("h(X, Y) :- big(X, Z), seen(X), wide(X, Z, Y).").unwrap();
        let db = db_with(&[("big", 2), ("seen", 50), ("wide", 5)]);
        let plan = plan_rule(&rule, &db, None, 0);
        let order: Vec<usize> = plan.steps.iter().map(|s| s.lit).collect();
        assert_eq!(order, vec![0, 1, 2], "existence check precedes the join");
        assert_eq!(plan.steps[1].bound, vec![0]);
    }

    #[test]
    fn index_needs_reports_probe_masks() {
        let rule = parse_rule("h(X, Y) :- big(X, Z), small(Z, Y).").unwrap();
        let db = db_with(&[("big", 100), ("small", 2)]);
        let plan = plan_rule(&rule, &db, None, 0);
        let needs: Vec<(String, Vec<usize>)> = plan
            .index_needs(&rule)
            .map(|(p, b)| (p.to_string(), b.to_vec()))
            .collect();
        assert_eq!(needs, vec![("big".to_string(), vec![1])]);
    }
}
