//! Pretty-printing of programs back to concrete syntax.
//!
//! `parse_program(print(p))` reproduces `p` up to whitespace — the
//! round-trip is property-tested — which makes programs first-class data:
//! the Vada-SA framework can synthesize rule sets (e.g. splice thresholds
//! into Algorithm 4) and persist them as `.vada` files.

use crate::ast::{Atom, BinOp, Expr, Head, Literal, Program, Rule, Term, UnOp};
use std::fmt::Write;

fn binop_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Mod => "%",
        BinOp::Eq => "=",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::In => "in",
        BinOp::Subset => "subset",
        BinOp::Union => "union",
    }
}

fn precedence(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq
        | BinOp::Ne
        | BinOp::Lt
        | BinOp::Le
        | BinOp::Gt
        | BinOp::Ge
        | BinOp::In
        | BinOp::Subset => 3,
        BinOp::Add | BinOp::Sub | BinOp::Union => 4,
        BinOp::Mul | BinOp::Div | BinOp::Mod => 5,
    }
}

/// Render an expression; parenthesize children of lower precedence.
pub fn print_expr(e: &Expr) -> String {
    fn go(e: &Expr, parent_prec: u8, out: &mut String) {
        match e {
            Expr::Const(v) => {
                let _ = write!(out, "{v}");
            }
            Expr::Var(v) => out.push_str(v),
            Expr::Binary(op, a, b) => {
                let p = precedence(*op);
                let needs_parens = p < parent_prec;
                if needs_parens {
                    out.push('(');
                }
                go(a, p, out);
                let _ = write!(out, " {} ", binop_str(*op));
                // right operand binds one tighter to keep left associativity
                go(b, p + 1, out);
                if needs_parens {
                    out.push(')');
                }
            }
            Expr::Unary(UnOp::Neg, a) => {
                out.push('-');
                go(a, 6, out);
            }
            Expr::Unary(UnOp::Not, a) => {
                out.push_str("not ");
                go(a, 6, out);
            }
            Expr::Case {
                cond,
                then,
                otherwise,
            } => {
                if parent_prec > 0 {
                    out.push('(');
                }
                out.push_str("case ");
                go(cond, 0, out);
                out.push_str(" then ");
                go(then, 0, out);
                out.push_str(" else ");
                go(otherwise, 0, out);
                if parent_prec > 0 {
                    out.push(')');
                }
            }
            Expr::Index(base, key) => {
                go(base, 6, out);
                out.push('[');
                go(key, 0, out);
                out.push(']');
            }
            Expr::Call(name, args) if name == "set" => {
                out.push('{');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    go(a, 0, out);
                }
                out.push('}');
            }
            Expr::Call(name, args) => {
                out.push_str(name);
                out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    go(a, 0, out);
                }
                out.push(')');
            }
        }
    }
    let mut s = String::new();
    go(e, 0, &mut s);
    s
}

fn print_atom(a: &Atom) -> String {
    let mut s = String::new();
    s.push_str(&a.pred);
    s.push('(');
    for (i, t) in a.args.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        match t {
            Term::Const(v) => {
                let _ = write!(s, "{v}");
            }
            Term::Var(v) => s.push_str(v),
        }
    }
    s.push(')');
    s
}

/// Render one rule (without a trailing newline).
pub fn print_rule(rule: &Rule) -> String {
    let mut s = String::new();
    if let Some(label) = &rule.label {
        let _ = writeln!(s, "@label(\"{}\")", label.replace('"', "\\\""));
    }
    match &rule.head {
        Head::Atoms(atoms) => {
            for (i, a) in atoms.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&print_atom(a));
            }
        }
        Head::Equality(a, b) => {
            let term = |t: &Term| match t {
                Term::Const(v) => v.to_string(),
                Term::Var(v) => v.clone(),
            };
            let _ = write!(s, "{} = {}", term(a), term(b));
        }
    }
    s.push_str(" :- ");
    for (i, lit) in rule.body.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        match lit {
            Literal::Pos(a) => s.push_str(&print_atom(a)),
            Literal::Neg(a) => {
                s.push_str("not ");
                s.push_str(&print_atom(a));
            }
            Literal::Cond(e) => s.push_str(&print_expr(e)),
            Literal::Let { var, expr } => {
                let _ = write!(s, "{var} = {}", print_expr(expr));
            }
            Literal::Agg {
                var,
                func,
                arg,
                contributors,
            } => {
                let _ = write!(s, "{var} = {}({}", func.name(), print_expr(arg));
                if !contributors.is_empty() {
                    s.push_str(", <");
                    for (i, c) in contributors.iter().enumerate() {
                        if i > 0 {
                            s.push_str(", ");
                        }
                        s.push_str(&print_expr(c));
                    }
                    s.push('>');
                }
                s.push(')');
            }
        }
    }
    s.push('.');
    s
}

/// Render a whole program (facts first, then rules).
pub fn print_program(p: &Program) -> String {
    let mut s = String::new();
    for f in &p.facts {
        s.push_str(&f.to_string());
        s.push_str(".\n");
    }
    for r in &p.rules {
        s.push_str(&print_rule(r));
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn roundtrip(src: &str) {
        let p1 = parse_program(src).expect("original parses");
        let printed = print_program(&p1);
        let p2 = parse_program(&printed)
            .unwrap_or_else(|e| panic!("printed form does not parse: {e}\n{printed}"));
        assert_eq!(p1, p2, "round-trip changed the program:\n{printed}");
    }

    #[test]
    fn roundtrip_facts_and_plain_rules() {
        roundtrip(
            "edge(1, 2). label(\"x\", 2.5). neg(-3).\n\
             path(X, Y) :- edge(X, Y).\n\
             path(X, Y) :- edge(X, Z), path(Z, Y).",
        );
    }

    #[test]
    fn roundtrip_negation_conditions_lets() {
        roundtrip(
            "out(X, S) :- p(X, W), not q(X), S = 1.0 / W, S > 0.5.\n\
             flag(X, F) :- p(X, W), F = case W < 3 then 1 else 0.",
        );
    }

    #[test]
    fn roundtrip_aggregates() {
        roundtrip(
            "s(G, R) :- t(G, I, W), R = msum(W, <I>).\n\
             c(G, R) :- t(G, I, W), R = mcount(<I>).\n\
             u(G, S) :- t(G, I, W), S = munion(pair(I, W), <I>).",
        );
    }

    #[test]
    fn roundtrip_egd_and_multihead() {
        roundtrip(
            "C1 = C2 :- cat(M, A, C1), cat(M, A, C2).\n\
             comb(Z, I), isin(A, Z) :- t(I, A).",
        );
    }

    #[test]
    fn roundtrip_labels() {
        roundtrip(
            "@label(\"my rule\")\n\
             a(X) :- b(X).",
        );
    }

    #[test]
    fn roundtrip_sets_indexing_builtins() {
        roundtrip(
            "o(V) :- t(S, K), V = S[K], size(S) > 2, K in keys(S).\n\
             m(N) :- t(S, K), N = setminus(S, {K}) union {pair(K, K)}.",
        );
    }

    #[test]
    fn roundtrip_vadasa_programs() {
        // the real Algorithm 2/3/4 sources must survive the round-trip
        let alg2 = r#"
        tuple(M, I, VSet) :- val(M, I, A, V), cat(M, A, "quasi-identifier"),
                             VSet = munion(pair(A, V), <A>).
        wgt(I, W) :- val(M, I, A, W), cat(M, A, "weight").
        tuplea(VSet, S) :- tuple(M, I, VSet), wgt(I, W), S = msum(W, <I>).
        riskOutput(I, R) :- tuple(M, I, VSet), tuplea(VSet, S), R = 1.0 / S.
        "#;
        roundtrip(alg2);
    }

    #[test]
    fn precedence_is_preserved() {
        // (a + b) * c must keep its parentheses through the round-trip
        let p1 = parse_program("o(R) :- t(A, B, C), R = (A + B) * C.").unwrap();
        let printed = print_program(&p1);
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p1, p2);
        assert!(printed.contains("(A + B) * C"));
        // and a - (b - c) stays right-grouped
        let p1 = parse_program("o(R) :- t(A, B, C), R = A - (B - C).").unwrap();
        let printed = print_program(&p1);
        assert_eq!(p1, parse_program(&printed).unwrap());
    }
}
