//! Engine execution profile: what [`EvalStats`](crate::eval::EvalStats)
//! totals look like *from the inside*.
//!
//! Every reasoning run accumulates an [`EngineProfile`]: per-stratum
//! spans, per-fixpoint-round delta sizes, and per-rule firing /
//! derived-fact / join-candidate counts. Accumulation is always on — it
//! is a handful of integer adds and two monotonic clock reads per round,
//! which is noise next to the joins themselves — and the profile rides on
//! [`ReasoningResult`](crate::eval::ReasoningResult). When a
//! [`Collector`](vadasa_obs::Collector) is attached to the engine config
//! the profile is additionally replayed as telemetry events after the
//! run, so the hot path never formats or allocates for telemetry.

use std::fmt::Write as _;
use vadasa_obs::{fields, next_span_id, Obs};

use crate::ast::{Head, Program};

/// Per-rule execution counters.
#[derive(Debug, Clone, Default)]
pub struct RuleProfile {
    /// Rule index in the program.
    pub rule: usize,
    /// Rule label, or `rule#<idx>` when unlabelled.
    pub name: String,
    /// Head predicates (or `=` for EGDs) — for human-readable tables.
    pub head: String,
    /// Body bindings produced (each one instantiates the head once).
    pub firings: u64,
    /// New facts this rule inserted.
    pub facts_derived: u64,
    /// Candidate rows examined while joining the body (the engine's raw
    /// join effort; the ratio to `firings` shows join selectivity).
    pub join_candidates: u64,
    /// Null unifications performed (EGD rules only).
    pub unifications: u64,
}

/// One semi-naive fixpoint round inside a stratum.
#[derive(Debug, Clone)]
pub struct RoundProfile {
    /// Round ordinal within the stratum (across outer passes).
    pub round: usize,
    /// New facts inserted this round (the delta handed to the next round).
    pub delta: u64,
    /// Wall-clock nanoseconds spent in the round.
    pub dur_ns: u64,
}

/// One stratum of the evaluation.
#[derive(Debug, Clone, Default)]
pub struct StratumProfile {
    /// Stratum index (bottom-up order).
    pub stratum: usize,
    /// Outer passes (plain fixpoint + aggregates + EGDs) until stable.
    pub passes: u64,
    /// Fixpoint rounds, in order.
    pub rounds: Vec<RoundProfile>,
    /// New facts derived in this stratum.
    pub facts_derived: u64,
    /// Wall-clock nanoseconds spent in the stratum.
    pub dur_ns: u64,
}

/// Execution profile of one reasoning run.
///
/// The scalar totals mirror [`EvalStats`](crate::eval::EvalStats); the
/// vectors break them down by stratum, round and rule.
#[derive(Debug, Clone, Default)]
pub struct EngineProfile {
    /// Per-stratum breakdown, bottom-up.
    pub strata: Vec<StratumProfile>,
    /// Per-rule counters, indexed by rule position in the program.
    pub rules: Vec<RuleProfile>,
    /// Total wall-clock nanoseconds of the run.
    pub total_ns: u64,
    /// Total facts derived (= `EvalStats::facts_derived`).
    pub facts_derived: u64,
    /// Total fixpoint iterations (= `EvalStats::iterations`).
    pub iterations: u64,
    /// Labelled nulls minted (= `EvalStats::nulls_created`).
    pub nulls_created: u64,
    /// EGD unifications (= `EvalStats::unifications`).
    pub unifications: u64,
    /// EGD violations collected.
    pub violations: u64,
    /// Hash-index probes issued by the planned join executor.
    pub index_probes: u64,
    /// Full-relation linear scans the executor fell back to (no bound
    /// positions, or a missing/stale index). High scans relative to
    /// probes means the planner found little to probe on.
    pub index_scans: u64,
    /// String-interner hits during this run (heap allocations avoided;
    /// see [`mod@crate::intern`]).
    pub intern_hits: u64,
    /// Join plans where the planner deviated from source literal order.
    pub planner_reorders: u64,
    /// Semi-naive rounds whose rule evaluation fanned out over threads.
    pub parallel_rounds: u64,
}

impl EngineProfile {
    /// An empty profile shaped for `program` (one slot per rule).
    pub fn for_program(program: &Program) -> Self {
        let rules = program
            .rules
            .iter()
            .enumerate()
            .map(|(i, r)| RuleProfile {
                rule: i,
                name: r.label.clone().unwrap_or_else(|| format!("rule#{i}")),
                head: match &r.head {
                    Head::Atoms(atoms) => atoms
                        .iter()
                        .map(|a| a.pred.as_str())
                        .collect::<Vec<_>>()
                        .join(","),
                    Head::Equality(_, _) => "=".to_string(),
                },
                ..RuleProfile::default()
            })
            .collect();
        EngineProfile {
            rules,
            ..EngineProfile::default()
        }
    }

    /// Total fixpoint rounds across strata.
    pub fn total_rounds(&self) -> usize {
        self.strata.iter().map(|s| s.rounds.len()).sum()
    }

    /// Render the per-stratum and per-rule tables as plain text
    /// (the `--profile` output of the `vadalog` CLI).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "engine profile — {} in {}, {} fact(s), {} round(s), {} null(s), {} unification(s)",
            plural(self.strata.len(), "stratum", "strata"),
            fmt_ns(self.total_ns),
            self.facts_derived,
            self.total_rounds(),
            self.nulls_created,
            self.unifications,
        );
        let _ = writeln!(
            out,
            "join core — {} index probe(s), {} scan(s), {} intern hit(s), {} plan reorder(s), {} parallel round(s)",
            self.index_probes,
            self.index_scans,
            self.intern_hits,
            self.planner_reorders,
            self.parallel_rounds,
        );
        let _ = writeln!(
            out,
            "{:>7}  {:>6}  {:>6}  {:>9}  {:>10}  largest rounds (delta@round)",
            "stratum", "passes", "rounds", "facts", "time"
        );
        for s in &self.strata {
            let mut top: Vec<&RoundProfile> = s.rounds.iter().filter(|r| r.delta > 0).collect();
            top.sort_by_key(|r| std::cmp::Reverse(r.delta));
            let top: Vec<String> = top
                .iter()
                .take(3)
                .map(|r| format!("{}@{}", r.delta, r.round))
                .collect();
            let _ = writeln!(
                out,
                "{:>7}  {:>6}  {:>6}  {:>9}  {:>10}  {}",
                s.stratum,
                s.passes,
                s.rounds.len(),
                s.facts_derived,
                fmt_ns(s.dur_ns),
                top.join(" ")
            );
        }
        let name_w = self
            .rules
            .iter()
            .map(|r| r.name.len() + r.head.len() + 3)
            .max()
            .unwrap_or(4)
            .max(4);
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>9}  {:>9}  {:>11}  {:>6}",
            "rule", "firings", "facts", "join-cands", "unif."
        );
        for r in &self.rules {
            let _ = writeln!(
                out,
                "{:<name_w$}  {:>9}  {:>9}  {:>11}  {:>6}",
                format!("{} → {}", r.name, r.head),
                r.firings,
                r.facts_derived,
                r.join_candidates,
                r.unifications
            );
        }
        out
    }

    /// Replay the profile into a collector as an explicitly placed trace
    /// tree: one `engine.run` root, one `engine.stratum` child per
    /// stratum at its cumulative offset, one `engine.round` grandchild
    /// per fixpoint round; one counter per rule metric and per scalar
    /// total. Child intervals are clamped into their parent's so
    /// exporters always see properly nested spans.
    pub fn emit(&self, obs: &Obs<'_>) {
        if !obs.enabled() {
            return;
        }
        let run_id = next_span_id();
        let mut run_cursor = 0u64;
        for s in &self.strata {
            let s_start = run_cursor.min(self.total_ns);
            let s_dur = s.dur_ns.min(self.total_ns - s_start);
            let stratum_id = next_span_id();
            let mut round_cursor = s_start;
            for r in &s.rounds {
                let r_start = round_cursor.min(s_start + s_dur);
                let r_dur = r.dur_ns.min(s_start + s_dur - r_start);
                obs.span_in(
                    "engine.round",
                    next_span_id(),
                    stratum_id,
                    r_start,
                    r_dur,
                    fields!["stratum" => s.stratum, "round" => r.round, "delta" => r.delta],
                );
                round_cursor = round_cursor.saturating_add(r.dur_ns);
            }
            obs.span_in(
                "engine.stratum",
                stratum_id,
                run_id,
                s_start,
                s_dur,
                fields![
                    "stratum" => s.stratum,
                    "passes" => s.passes,
                    "rounds" => s.rounds.len(),
                    "facts" => s.facts_derived
                ],
            );
            run_cursor = run_cursor.saturating_add(s.dur_ns);
        }
        for r in &self.rules {
            obs.counter(
                "engine.rule.firings",
                r.firings,
                fields!["rule" => r.rule, "name" => r.name.as_str()],
            );
            obs.counter(
                "engine.rule.facts",
                r.facts_derived,
                fields!["rule" => r.rule, "name" => r.name.as_str()],
            );
            obs.counter(
                "engine.rule.join_candidates",
                r.join_candidates,
                fields!["rule" => r.rule, "name" => r.name.as_str()],
            );
            if r.unifications > 0 {
                obs.counter(
                    "engine.rule.unifications",
                    r.unifications,
                    fields!["rule" => r.rule, "name" => r.name.as_str()],
                );
            }
        }
        obs.counter("engine.facts_derived", self.facts_derived, vec![]);
        obs.counter("engine.iterations", self.iterations, vec![]);
        obs.counter("engine.nulls_created", self.nulls_created, vec![]);
        obs.counter("engine.unifications", self.unifications, vec![]);
        obs.counter("engine.egd_violations", self.violations, vec![]);
        obs.counter("engine.join.index_probes", self.index_probes, vec![]);
        obs.counter("engine.join.index_scans", self.index_scans, vec![]);
        obs.counter("engine.join.intern_hits", self.intern_hits, vec![]);
        obs.counter(
            "engine.join.planner_reorders",
            self.planner_reorders,
            vec![],
        );
        obs.counter("engine.join.parallel_rounds", self.parallel_rounds, vec![]);
        obs.span_in(
            "engine.run",
            run_id,
            0,
            0,
            self.total_ns,
            fields!["strata" => self.strata.len(), "rules" => self.rules.len()],
        );
    }
}

fn plural(n: usize, one: &str, many: &str) -> String {
    if n == 1 {
        format!("{n} {one}")
    } else {
        format!("{n} {many}")
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn profile_shapes_to_program() {
        let p = parse_program(
            "@label(\"base\")\n\
             b(X) :- a(X).\n\
             c(X) :- b(X).",
        )
        .unwrap();
        let profile = EngineProfile::for_program(&p);
        assert_eq!(profile.rules.len(), 2);
        assert_eq!(profile.rules[0].name, "base");
        assert_eq!(profile.rules[0].head, "b");
        assert_eq!(profile.rules[1].name, "rule#1");
    }

    #[test]
    fn render_mentions_every_rule() {
        let p = parse_program("b(X) :- a(X).").unwrap();
        let mut profile = EngineProfile::for_program(&p);
        profile.strata.push(StratumProfile {
            stratum: 0,
            passes: 1,
            rounds: vec![RoundProfile {
                round: 0,
                delta: 3,
                dur_ns: 1500,
            }],
            facts_derived: 3,
            dur_ns: 2000,
        });
        profile.facts_derived = 3;
        let text = profile.render_table();
        assert!(text.contains("rule#0 → b"));
        assert!(text.contains("3@0"), "largest round missing: {text}");
        assert!(text.contains("2.000 µs"), "stratum time missing: {text}");
    }

    #[test]
    fn emit_replays_into_recorder() {
        let p = parse_program("b(X) :- a(X).").unwrap();
        let mut profile = EngineProfile::for_program(&p);
        profile.rules[0].firings = 4;
        profile.rules[0].facts_derived = 2;
        profile.facts_derived = 2;
        profile.total_ns = 10;
        let rec = vadasa_obs::Recorder::new();
        profile.emit(&Obs::new(Some(&rec)));
        assert_eq!(rec.counter_total("engine.rule.firings"), 4);
        assert_eq!(rec.counter_total("engine.facts_derived"), 2);
        assert_eq!(rec.events_named("engine.run").len(), 1);
    }
}
