//! Query answering over chased databases: certain vs possible answers.
//!
//! A database produced by the chase contains labelled nulls — placeholders
//! for unknown values. The data-exchange literature the paper builds on
//! (Fagin et al. [20, 21]) defines query semantics over such instances:
//!
//! - a tuple of **constants** is a *certain answer* to an atomic query iff
//!   the query maps into the instance under **every** valuation of the
//!   nulls — for atomic queries, iff a fact matches the query with
//!   constants agreeing exactly (a null never certainly equals a
//!   constant, and two distinct nulls never certainly coincide);
//! - a tuple is a *possible answer* iff **some** valuation makes it true —
//!   nulls unify with anything, consistently per label.
//!
//! The gap between the two is exactly the uncertainty local suppression
//! injects: after anonymization the attacker's query gains possible
//! answers but loses certain ones.

use crate::ast::{Atom, Literal, Term};
use crate::parser::{parse_rule, ParseError};
use crate::storage::Database;
use crate::value::Value;
use std::collections::HashMap;

/// Query strictness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnswerMode {
    /// True under every valuation of labelled nulls.
    Certain,
    /// True under at least one valuation.
    Possible,
}

/// Answer an atomic query against `db`.
///
/// `query` may mix constants and (possibly repeated) variables; each
/// returned row holds the values bound to the query's variables, in order
/// of first occurrence. Under [`AnswerMode::Certain`] only all-constant
/// answers are returned; under [`AnswerMode::Possible`] answers may carry
/// nulls (denoting "some unknown value").
pub fn answers(db: &Database, query: &Atom, mode: AnswerMode) -> Vec<Vec<Value>> {
    let Some(rel) = db.relation(&query.pred) else {
        return Vec::new();
    };

    // variable order of first occurrence
    let mut var_order: Vec<&str> = Vec::new();
    for t in &query.args {
        if let Term::Var(v) = t {
            if !var_order.iter().any(|x| x == v) {
                var_order.push(v);
            }
        }
    }

    let mut out: Vec<Vec<Value>> = Vec::new();
    'rows: for row in rel.iter() {
        if row.len() != query.args.len() {
            continue;
        }
        let mut binding: HashMap<&str, &Value> = HashMap::new();
        for (t, v) in query.args.iter().zip(row.iter()) {
            match t {
                Term::Const(c) => {
                    let matches = match mode {
                        AnswerMode::Certain => c == v,
                        AnswerMode::Possible => v.is_null() || c == v,
                    };
                    if !matches {
                        continue 'rows;
                    }
                }
                Term::Var(name) => match binding.get(name.as_str()) {
                    None => {
                        binding.insert(name, v);
                    }
                    Some(prev) => {
                        let matches = match mode {
                            AnswerMode::Certain => *prev == v,
                            AnswerMode::Possible => *prev == v || prev.is_null() || v.is_null(),
                        };
                        if !matches {
                            continue 'rows;
                        }
                    }
                },
            }
        }
        let answer: Vec<Value> = var_order
            .iter()
            .map(|v| (*binding.get(v).expect("bound")).clone()) // gate-allow: every var in var_order was bound during the row scan
            .collect();
        if mode == AnswerMode::Certain && answer.iter().any(Value::is_null) {
            continue; // a null is not a certain value
        }
        if !out.contains(&answer) {
            out.push(answer);
        }
    }
    out
}

/// Parse a goal atom for goal-directed evaluation ([`crate::magic`]).
///
/// A goal is a single atom whose constant arguments are the bound
/// positions, e.g. `risk(42, ?)` — `?` marks an explicitly free
/// position and is replaced by a fresh variable, so CLI users do not
/// have to invent variable names. A trailing `.` is tolerated.
pub fn parse_goal(src: &str) -> Result<Atom, ParseError> {
    let trimmed = src.trim().trim_end_matches('.').trim_end();
    // Replace `?` placeholders outside string literals with fresh
    // variables; repeated `?`s stay independent.
    let mut rewritten = String::with_capacity(trimmed.len() + 8);
    let mut in_string = false;
    let mut fresh = 0usize;
    for ch in trimmed.chars() {
        match ch {
            '"' => {
                in_string = !in_string;
                rewritten.push(ch);
            }
            '?' if !in_string => {
                rewritten.push_str("__G");
                rewritten.push_str(&fresh.to_string());
                fresh += 1;
            }
            _ => rewritten.push(ch),
        }
    }
    let rule_src = format!("goal__() :- {rewritten}.");
    let rule = parse_rule(&rule_src)?;
    let bad = |message: String| ParseError {
        message,
        offset: 0,
        line: 1,
    };
    if rule.body.len() != 1 {
        return Err(bad(format!(
            "a goal must be a single atom, got {} literals",
            rule.body.len()
        )));
    }
    match rule.body.into_iter().next() {
        Some(Literal::Pos(atom)) => Ok(atom),
        _ => Err(bad(
            "a goal must be a positive atom (no negation, conditions or aggregates)".to_string(),
        )),
    }
}

/// The goal slice of `db`: rows of the goal's predicate matching the
/// goal's constants exactly (and its repeated variables by equality).
///
/// This is the filter that turns the *superset* guarantee of a magic
/// run ([`crate::eval::Engine::run_with_goals`]) into the exact answer:
/// applying it to both a goal-directed and a full run yields identical
/// row sets. Nulls compare by label, never by valuation — for certain /
/// possible semantics use [`answers`] instead.
pub fn goal_slice(db: &Database, goal: &Atom) -> Vec<Vec<Value>> {
    let Some(rel) = db.relation(&goal.pred) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    'rows: for row in rel.iter() {
        if row.len() != goal.args.len() {
            continue;
        }
        let mut binding: HashMap<&str, &Value> = HashMap::new();
        for (t, v) in goal.args.iter().zip(row.iter()) {
            match t {
                Term::Const(c) => {
                    if c != v {
                        continue 'rows;
                    }
                }
                Term::Var(name) => match binding.get(name.as_str()) {
                    None => {
                        binding.insert(name, v);
                    }
                    Some(prev) => {
                        if *prev != v {
                            continue 'rows;
                        }
                    }
                },
            }
        }
        out.push(row.to_vec());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Atom;

    fn atom(pred: &str, terms: Vec<Term>) -> Atom {
        Atom::new(pred, terms)
    }
    fn var(v: &str) -> Term {
        Term::Var(v.to_string())
    }
    fn c(v: impl Into<Value>) -> Term {
        Term::Const(v.into())
    }

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.insert("t", vec![Value::str("roma"), Value::str("textiles")]);
        db.insert("t", vec![Value::str("roma"), Value::Null(1)]);
        db.insert("t", vec![Value::Null(2), Value::str("commerce")]);
        db
    }

    #[test]
    fn certain_answers_exclude_nulls() {
        let db = sample_db();
        let q = atom("t", vec![var("X"), var("Y")]);
        let certain = answers(&db, &q, AnswerMode::Certain);
        assert_eq!(
            certain,
            vec![vec![Value::str("roma"), Value::str("textiles")]]
        );
    }

    #[test]
    fn possible_answers_include_null_witnesses() {
        let db = sample_db();
        let q = atom("t", vec![var("X"), c("commerce")]);
        let possible = answers(&db, &q, AnswerMode::Possible);
        // ⊥1 may be "commerce" (X = roma) and ⊥2's row matches directly
        // (X = ⊥2); the textiles row is excluded even possibly
        assert_eq!(possible.len(), 2);
        assert!(possible.contains(&vec![Value::str("roma")]));
        let certain = answers(&db, &q, AnswerMode::Certain);
        assert!(certain.is_empty(), "no constant witness for commerce in X");
    }

    #[test]
    fn constants_filter_exactly_in_certain_mode() {
        let db = sample_db();
        let q = atom("t", vec![c("roma"), var("Y")]);
        let certain = answers(&db, &q, AnswerMode::Certain);
        assert_eq!(certain, vec![vec![Value::str("textiles")]]);
        let possible = answers(&db, &q, AnswerMode::Possible);
        // row 3's ⊥2 may be roma, but its Y is a constant "commerce"
        assert!(possible.contains(&vec![Value::str("commerce")]));
        assert_eq!(possible.len(), 3);
    }

    #[test]
    fn repeated_variables_enforce_equality() {
        let mut db = Database::new();
        db.insert("e", vec![Value::Int(1), Value::Int(1)]);
        db.insert("e", vec![Value::Int(1), Value::Int(2)]);
        db.insert("e", vec![Value::Null(5), Value::Int(3)]);
        let q = atom("e", vec![var("X"), var("X")]);
        let certain = answers(&db, &q, AnswerMode::Certain);
        assert_eq!(certain, vec![vec![Value::Int(1)]]);
        // possibly, ⊥5 = 3 makes the third row diagonal too
        let possible = answers(&db, &q, AnswerMode::Possible);
        assert_eq!(possible.len(), 2);
    }

    #[test]
    fn missing_predicate_yields_no_answers() {
        let db = Database::new();
        let q = atom("nope", vec![var("X")]);
        assert!(answers(&db, &q, AnswerMode::Possible).is_empty());
    }

    #[test]
    fn parse_goal_replaces_placeholders_with_fresh_vars() {
        let g = parse_goal("risk(42, ?).").unwrap();
        assert_eq!(g.pred, "risk");
        assert_eq!(g.args[0], c(42i64));
        assert!(matches!(&g.args[1], Term::Var(v) if v.starts_with("__G")));
        // `?` inside a string literal is data, not a placeholder
        let g = parse_goal(r#"t("why?", ?)"#).unwrap();
        assert_eq!(g.args[0], c("why?"));
        assert!(matches!(&g.args[1], Term::Var(_)));
    }

    #[test]
    fn parse_goal_rejects_non_atomic_goals() {
        assert!(parse_goal("a(X), b(X)").is_err());
        assert!(parse_goal("not a(X)").is_err());
        assert!(parse_goal("").is_err());
    }

    #[test]
    fn goal_slice_filters_by_constants_and_repeats() {
        let mut db = Database::new();
        db.insert("e", vec![Value::Int(1), Value::Int(1)]);
        db.insert("e", vec![Value::Int(1), Value::Int(2)]);
        db.insert("e", vec![Value::Int(2), Value::Int(2)]);
        let g = parse_goal("e(1, ?)").unwrap();
        assert_eq!(goal_slice(&db, &g).len(), 2);
        let diag = atom("e", vec![var("X"), var("X")]);
        let rows = goal_slice(&db, &diag);
        assert_eq!(rows.len(), 2);
        assert!(rows.contains(&vec![Value::Int(1), Value::Int(1)]));
        // nulls filter by label, not by valuation
        db.insert("e", vec![Value::Int(1), Value::Null(7)]);
        let g = parse_goal("e(1, ?)").unwrap();
        assert_eq!(goal_slice(&db, &g).len(), 3);
    }

    #[test]
    fn suppression_trades_certain_for_possible() {
        // the SDC story in miniature: suppress a cell and watch the
        // attacker's certain knowledge shrink while possibilities grow
        let mut before = Database::new();
        before.insert("t", vec![Value::str("roma"), Value::str("textiles")]);
        before.insert("t", vec![Value::str("roma"), Value::str("commerce")]);
        let mut after = Database::new();
        after.insert("t", vec![Value::str("roma"), Value::Null(0)]);
        after.insert("t", vec![Value::str("roma"), Value::str("commerce")]);

        let who_in_textiles = atom("t", vec![var("X"), c("textiles")]);
        assert_eq!(
            answers(&before, &who_in_textiles, AnswerMode::Certain).len(),
            1
        );
        assert_eq!(
            answers(&after, &who_in_textiles, AnswerMode::Certain).len(),
            0
        );
        assert_eq!(
            answers(&after, &who_in_textiles, AnswerMode::Possible).len(),
            1
        );
    }
}
