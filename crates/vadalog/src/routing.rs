//! Routing strategies: controlling the order in which rule bindings are
//! applied (paper §4.4, "runtime heuristics").
//!
//! The Vadalog system exposes *routing strategies* deciding which rule
//! bindings to privilege when many are available. In the anonymization
//! setting this realizes the "less significant first" heuristic (anonymize
//! statistically weak tuples before strong ones) and "most risky first"
//! (suppress the quasi-identifier contributing most risk first).
//!
//! Binding order is observable whenever derivation is budgeted, traced, or
//! when downstream consumers read facts in insertion order — which is how
//! the anonymization cycle in `vadasa-core` consumes them.

use crate::ast::Rule;
use crate::builtins::Binding;
use crate::value::Value;

/// Orders the bindings of a rule before its head facts are derived.
///
/// `Send + Sync` so an [`EngineConfig`](crate::eval::EngineConfig) holding
/// a router can be shared with scoped rule-evaluation threads; routers are
/// expected to be plain data (all in-tree strategies are).
pub trait Router: Send + Sync {
    /// Strategy name for diagnostics.
    fn name(&self) -> &str;
    /// Reorder `bindings` in place; earlier bindings fire first.
    fn order_bindings(&self, rule: &Rule, bindings: &mut Vec<Binding>);
}

/// First-in-first-out: keep the natural join order.
#[derive(Debug, Default, Clone, Copy)]
pub struct Fifo;

impl Router for Fifo {
    fn name(&self) -> &str {
        "fifo"
    }
    fn order_bindings(&self, _rule: &Rule, _bindings: &mut Vec<Binding>) {}
}

/// Order bindings by a scoring variable, ascending ("least X first").
///
/// Bindings that do not bind the variable, or bind it to a non-numeric
/// value, keep their relative order after the scored ones.
#[derive(Debug, Clone)]
pub struct AscendingBy {
    /// Variable whose value drives the priority.
    pub var: String,
}

impl Router for AscendingBy {
    fn name(&self) -> &str {
        "ascending-by"
    }
    fn order_bindings(&self, _rule: &Rule, bindings: &mut Vec<Binding>) {
        bindings.sort_by(|a, b| {
            let ka = a.get(&self.var).and_then(Value::as_f64);
            let kb = b.get(&self.var).and_then(Value::as_f64);
            match (ka, kb) {
                (Some(x), Some(y)) => x.total_cmp(&y),
                (Some(_), None) => std::cmp::Ordering::Less,
                (None, Some(_)) => std::cmp::Ordering::Greater,
                (None, None) => std::cmp::Ordering::Equal,
            }
        });
    }
}

/// Order bindings by a scoring variable, descending ("most X first").
#[derive(Debug, Clone)]
pub struct DescendingBy {
    /// Variable whose value drives the priority.
    pub var: String,
}

impl Router for DescendingBy {
    fn name(&self) -> &str {
        "descending-by"
    }
    fn order_bindings(&self, rule: &Rule, bindings: &mut Vec<Binding>) {
        AscendingBy {
            var: self.var.clone(),
        }
        .order_bindings(rule, bindings);
        bindings.reverse();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_rule;

    fn binding(var: &str, v: Value) -> Binding {
        let mut b = Binding::new();
        b.insert(var.to_string(), v);
        b
    }

    #[test]
    fn ascending_orders_numerically() {
        let rule = parse_rule("h(X) :- t(X).").unwrap();
        let mut bs = vec![
            binding("W", Value::Int(30)),
            binding("W", Value::Int(10)),
            binding("W", Value::Float(20.0)),
        ];
        AscendingBy { var: "W".into() }.order_bindings(&rule, &mut bs);
        let ws: Vec<f64> = bs.iter().map(|b| b["W"].as_f64().unwrap()).collect();
        assert_eq!(ws, vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn descending_reverses() {
        let rule = parse_rule("h(X) :- t(X).").unwrap();
        let mut bs = vec![binding("W", Value::Int(1)), binding("W", Value::Int(5))];
        DescendingBy { var: "W".into() }.order_bindings(&rule, &mut bs);
        assert_eq!(bs[0]["W"], Value::Int(5));
    }

    #[test]
    fn unscored_bindings_go_last() {
        let rule = parse_rule("h(X) :- t(X).").unwrap();
        let mut bs = vec![
            binding("Q", Value::Int(1)), // no W
            binding("W", Value::Int(2)),
        ];
        AscendingBy { var: "W".into() }.order_bindings(&rule, &mut bs);
        assert!(bs[0].contains_key("W"));
    }

    #[test]
    fn fifo_is_identity() {
        let rule = parse_rule("h(X) :- t(X).").unwrap();
        let mut bs = vec![binding("W", Value::Int(9)), binding("W", Value::Int(1))];
        Fifo.order_bindings(&rule, &mut bs);
        assert_eq!(bs[0]["W"], Value::Int(9));
    }
}
