//! Resumable engine sessions: warm-start incremental re-evaluation.
//!
//! A [`EngineSession`] keeps everything a cold [`Engine::run`] would throw
//! away between runs of the *same program*: the saturated database (and
//! with it every prebuilt hash index), the stratification, the rule
//! dependency graph, and — because the interner is process-global — all
//! interned strings. Subsequent input changes arrive as a [`FactPatch`]
//! (`patch(removals, additions)`); additions seed the semi-naive delta
//! directly, so only the strata actually reachable from the patched
//! predicates are re-derived.
//!
//! ## The fallback rule (correctness first)
//!
//! Semi-naive delta seeding is only sound for *monotone* re-derivation.
//! The session therefore falls back to a full cold re-evaluation (over the
//! tracked extensional database) whenever the patch cannot be bounded by
//! dependency analysis:
//!
//! 1. **Retractions** (`removals` non-empty): facts derived from a removed
//!    fact cannot be un-derived by forward chaining.
//! 2. **Negation**: some predicate reachable from the patch (its *affected
//!    closure* over the rule dependency graph) occurs under `not` in a
//!    rule — new facts can invalidate previously derived ones.
//! 3. **Aggregation**: an aggregate rule reads an affected predicate — its
//!    groups must be recomputed from complete inputs.
//! 4. **EGDs**: an equality-generating dependency reads an affected
//!    predicate — a new binding could rewrite existing facts.
//! 5. The previous run did not reach [`Termination::Fixpoint`] (a partial
//!    database is not a sound seed).
//!
//! Every fallback is counted and carries a human-readable reason in the
//! returned [`PatchOutcome`]; `DESIGN.md` §9 documents the rule.

use crate::ast::{Head, Literal, Program};
use crate::backend::{self, wire, StorageBackend, StorageError};
use crate::eval::{DeltaRows, Engine, EngineError, EvalStats, ReasoningResult, TraceEntry};
use crate::governor::Termination;
use crate::profile::EngineProfile;
use crate::storage::Database;
use crate::stratify::{stratify, Stratification};
use crate::value::Value;
use std::collections::{HashMap, HashSet, VecDeque};
use vadasa_obs::{fields, Obs};

/// Artifact name a persisted warm session is stored under.
pub const WARM_SESSION_ARTIFACT: &str = "session.warm";

/// On-disk format version of the warm-session artifact.
pub const WARM_SESSION_VERSION: u32 = 1;

/// Fingerprint (FNV-1a over the canonical printed form) tying a persisted
/// warm session to the program it saturated. A session restored under a
/// *different* program would be silently wrong, so
/// [`EngineSession::load_warm`] refuses on mismatch with a structured
/// [`StorageError::Fingerprint`].
pub fn program_fingerprint(program: &Program) -> u64 {
    backend::fnv1a(crate::printer::print_program(program).as_bytes())
}

/// A batch of input-fact changes applied to a session.
#[derive(Debug, Clone, Default)]
pub struct FactPatch {
    /// Facts to retract from the extensional database.
    pub removals: Vec<(String, Vec<Value>)>,
    /// Facts to assert.
    pub additions: Vec<(String, Vec<Value>)>,
}

impl FactPatch {
    /// A patch that only adds facts.
    pub fn additions(additions: Vec<(String, Vec<Value>)>) -> Self {
        FactPatch {
            removals: Vec::new(),
            additions,
        }
    }

    /// Is the patch empty?
    pub fn is_empty(&self) -> bool {
        self.removals.is_empty() && self.additions.is_empty()
    }
}

/// What one [`EngineSession::patch`] call did.
#[derive(Debug, Clone)]
pub struct PatchOutcome {
    /// `true` when the patch was applied incrementally (delta-seeded);
    /// `false` when the session fell back to a full cold re-evaluation.
    pub warm: bool,
    /// Why the session fell back, when it did.
    pub fallback_reason: Option<String>,
    /// Additions that were actually new (duplicates are dropped).
    pub facts_added: usize,
    /// Removals that actually hit a stored fact.
    pub facts_removed: usize,
    /// Facts derived while re-evaluating the patch.
    pub facts_derived: usize,
    /// Strata skipped because the patch could not reach them (warm only).
    pub strata_skipped: usize,
    /// How the re-evaluation ended.
    pub termination: Termination,
}

/// Cumulative warm-start statistics of a session.
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionStats {
    /// Patches applied (warm or cold).
    pub patches: u64,
    /// Patches applied incrementally.
    pub warm_patches: u64,
    /// Patches that fell back to a full cold re-evaluation.
    pub cold_fallbacks: u64,
    /// Input facts patched in/out across all patches.
    pub patched_facts: u64,
    /// Strata skipped by dependency analysis across warm patches.
    pub strata_skipped: u64,
    /// Approximate bytes of prebuilt hash-index state reused (not rebuilt)
    /// by warm patches, summed over patches.
    pub reused_index_bytes: u64,
    /// Goal-directed side queries answered ([`EngineSession::evaluate_goals`]).
    pub goal_evals: u64,
    /// Goal queries where the magic rewrite refused and the full program
    /// ran instead.
    pub goal_fallbacks: u64,
}

/// A resumable reasoning session over one program. See the module docs.
#[derive(Debug)]
pub struct EngineSession {
    engine: Engine,
    program: Program,
    strat: Stratification,
    /// The tracked extensional database: the caller's input facts plus all
    /// patches so far (program facts are *not* stored here; `Engine::run`
    /// inserts them itself). This is what a cold fallback re-runs over.
    edb: Database,
    /// The saturated database of the last (re-)evaluation.
    db: Database,
    violations: Vec<crate::eval::EgdViolation>,
    stats: EvalStats,
    profile: EngineProfile,
    trace: Vec<TraceEntry>,
    termination: Termination,
    session_stats: SessionStats,
}

impl Engine {
    /// Start a resumable session: run `program` over `input` once (cold),
    /// keeping the engine, stratification, saturated database and indexes
    /// alive for incremental [`EngineSession::patch`] calls. Consumes the
    /// engine — the session owns it for its lifetime.
    pub fn session(self, program: Program, input: Database) -> Result<EngineSession, EngineError> {
        let strat = stratify(&program)?;
        let result = self.run(&program, input.clone())?;
        Ok(EngineSession {
            engine: self,
            program,
            strat,
            edb: input,
            db: result.db,
            violations: result.violations,
            stats: result.stats,
            profile: result.profile,
            trace: result.trace,
            termination: result.termination,
            session_stats: SessionStats::default(),
        })
    }
}

impl EngineSession {
    /// The saturated database of the latest evaluation.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// How the latest evaluation ended.
    pub fn termination(&self) -> &Termination {
        &self.termination
    }

    /// Cumulative statistics of the latest evaluation (cold totals; warm
    /// patches add their incremental counts).
    pub fn stats(&self) -> &EvalStats {
        &self.stats
    }

    /// EGD violations of the latest evaluation.
    pub fn violations(&self) -> &[crate::eval::EgdViolation] {
        &self.violations
    }

    /// Profile of the latest evaluation pass (cold run or warm patch).
    pub fn profile(&self) -> &EngineProfile {
        &self.profile
    }

    /// Provenance entries (only populated when tracing is enabled).
    pub fn trace(&self) -> &[TraceEntry] {
        &self.trace
    }

    /// Cumulative warm-start statistics.
    pub fn session_stats(&self) -> &SessionStats {
        &self.session_stats
    }

    /// Consume the session, yielding the latest result in the same shape a
    /// cold [`Engine::run`] returns.
    pub fn into_result(self) -> ReasoningResult {
        ReasoningResult {
            db: self.db,
            violations: self.violations,
            stats: self.stats,
            profile: self.profile,
            trace: self.trace,
            termination: self.termination,
        }
    }

    /// Freeze this session's warm state into `store` under
    /// [`WARM_SESSION_ARTIFACT`], CRC-framed and fingerprinted against the
    /// session's program. The artifact carries everything a restart needs
    /// to skip the cold saturation: the interner snapshot, the tracked
    /// extensional database, the saturated database, and the recipes
    /// (bound-position sets) of every prebuilt hash index.
    ///
    /// Only a *converged* session is a sound warm seed: a run that ended
    /// short of [`Termination::Fixpoint`] or left EGD violations is
    /// refused with [`StorageError::NotPersistable`] — the caller keeps
    /// the (always correct) cold start instead.
    ///
    /// Returns the framed artifact size in bytes.
    pub fn save_warm(&self, store: &mut dyn StorageBackend) -> Result<usize, StorageError> {
        if self.termination != Termination::Fixpoint {
            return Err(StorageError::NotPersistable {
                reason: format!(
                    "session ended with {:?}; only a fixpoint database is a sound warm seed",
                    self.termination
                ),
            });
        }
        if !self.violations.is_empty() {
            return Err(StorageError::NotPersistable {
                reason: format!(
                    "session holds {} unresolved EGD violation(s)",
                    self.violations.len()
                ),
            });
        }
        let mut payload = Vec::new();
        let strings = crate::intern::export();
        wire::put_u32(&mut payload, strings.len() as u32);
        for s in &strings {
            wire::put_str(&mut payload, s);
        }
        encode_database(&mut payload, &self.edb);
        encode_database(&mut payload, &self.db);
        let framed = backend::encode_artifact(
            WARM_SESSION_VERSION,
            program_fingerprint(&self.program),
            &payload,
        );
        store.put(WARM_SESSION_ARTIFACT, &framed)?;
        Ok(framed.len())
    }

    /// Rebuild a warm session from a persisted [`WARM_SESSION_ARTIFACT`].
    ///
    /// Validation is strict — alien magic, truncation, bit flips, a future
    /// format version, or a fingerprint that does not match `program` all
    /// return a structured [`StorageError`], and the caller's documented
    /// fallback is a cold [`Engine::session`] (which derives the identical
    /// database from primary inputs; the artifact is strictly a cache).
    ///
    /// On success the session is indistinguishable from one that just
    /// saturated: same EDB, same saturated database (row order included),
    /// same prebuilt indexes, interner repopulated, termination
    /// [`Termination::Fixpoint`]. Evaluation statistics and traces are
    /// reset — they describe *runs*, and no run happened here.
    pub fn load_warm(
        engine: Engine,
        program: Program,
        store: &dyn StorageBackend,
    ) -> Result<EngineSession, StorageError> {
        let artifact = WARM_SESSION_ARTIFACT;
        let bytes = store.get(artifact)?.ok_or_else(|| StorageError::Missing {
            artifact: artifact.to_string(),
        })?;
        let expected = program_fingerprint(&program);
        let (_, _, payload) =
            backend::decode_artifact(artifact, WARM_SESSION_VERSION, Some(expected), &bytes)?;
        let corrupt = |reason: String| StorageError::Corrupt {
            artifact: artifact.to_string(),
            reason,
        };
        let mut r = wire::Reader::new(&payload);
        let nstrings = r.u32().map_err(&corrupt)? as usize;
        for _ in 0..nstrings {
            let s = r.string().map_err(&corrupt)?;
            crate::intern::intern(&s);
        }
        let (edb, edb_recipes) = decode_database(&mut r).map_err(&corrupt)?;
        let (db, db_recipes) = decode_database(&mut r).map_err(&corrupt)?;
        if !r.done() {
            return Err(corrupt("trailing bytes after databases".into()));
        }
        let strat = stratify(&program).map_err(|e| StorageError::Backend {
            reason: format!("restored program does not stratify: {e}"),
        })?;
        let mut edb = edb;
        let mut db = db;
        for (dbase, recipes) in [(&mut edb, edb_recipes), (&mut db, db_recipes)] {
            for (name, bounds) in recipes {
                let rel = dbase.relation_mut(&name);
                for bound in bounds {
                    rel.ensure_index(&bound);
                }
            }
        }
        Ok(EngineSession {
            engine,
            program,
            strat,
            edb,
            db,
            violations: Vec::new(),
            stats: EvalStats::default(),
            profile: EngineProfile::default(),
            trace: Vec::new(),
            termination: Termination::Fixpoint,
            session_stats: SessionStats::default(),
        })
    }

    /// Answer a goal-directed side query against the session's *current
    /// inputs*: run the program goal-restricted via the magic-sets
    /// rewrite ([`crate::magic`]) over the tracked extensional database.
    ///
    /// This is a side computation — the session's warm saturated
    /// database, indexes and statistics are untouched, so `patch` calls
    /// can be interleaved freely with goal queries. The result follows
    /// the [`Engine::run_with_goals`] contract: goal predicates hold a
    /// superset of the goal slice; filter with
    /// [`crate::query::goal_slice`] for exact answers.
    pub fn evaluate_goals(
        &mut self,
        goals: &[crate::ast::Atom],
        options: crate::magic::MagicOptions,
    ) -> Result<crate::eval::GoalRun, EngineError> {
        let run = self
            .engine
            .run_with_goals(&self.program, self.edb.clone(), goals, options)?;
        self.session_stats.goal_evals += 1;
        if run.magic.fallback.is_some() {
            self.session_stats.goal_fallbacks += 1;
        }
        if let Some(collector) = &self.engine.config.collector {
            let obs = Obs::new(Some(collector.as_ref()));
            obs.counter(
                "engine.goal.evals",
                1,
                fields!["applied" => run.magic.applied],
            );
            obs.counter("engine.goal.seeds", run.magic.stats.goal_seeds, vec![]);
            obs.counter(
                "engine.goal.fallbacks",
                u64::from(run.magic.fallback.is_some()),
                vec![],
            );
        }
        Ok(run)
    }

    /// Apply a fact patch and re-derive its consequences, incrementally
    /// when the dependency analysis allows it (see the module docs for the
    /// fallback rule).
    pub fn patch(&mut self, patch: FactPatch) -> Result<PatchOutcome, EngineError> {
        // Keep the tracked EDB in sync first: whichever path runs below,
        // it must see the post-patch inputs.
        let mut facts_removed = 0usize;
        for (pred, row) in &patch.removals {
            if self.edb.remove(pred, row) {
                facts_removed += 1;
            }
        }
        let mut new_additions: Vec<(String, Vec<Value>)> = Vec::new();
        for (pred, row) in &patch.additions {
            if self.edb.insert(pred, row.clone()) {
                new_additions.push((pred.clone(), row.clone()));
            }
        }
        self.session_stats.patches += 1;
        self.session_stats.patched_facts += (facts_removed + new_additions.len()) as u64;

        if let Some(reason) = self.fallback_reason(&patch, facts_removed) {
            return self.patch_cold(reason, new_additions.len(), facts_removed);
        }

        // Warm path: seed the semi-naive delta with the additions that were
        // actually new to the saturated database.
        let mut seed: DeltaRows = HashMap::new();
        let mut facts_added = 0usize;
        for (pred, row) in new_additions {
            if let Some(stored) = self.db.insert_shared(&pred, row) {
                seed.entry(pred).or_default().push(stored);
                facts_added += 1;
            }
        }
        self.session_stats.warm_patches += 1;
        self.session_stats.reused_index_bytes += self.db.index_footprint_bytes() as u64;

        if seed.is_empty() {
            // Everything the patch asserted was already derivable: nothing
            // to do, and nothing can have changed.
            let outcome = PatchOutcome {
                warm: true,
                fallback_reason: None,
                facts_added: 0,
                facts_removed,
                facts_derived: 0,
                strata_skipped: self.strat.strata.len(),
                termination: self.termination.clone(),
            };
            self.session_stats.strata_skipped += outcome.strata_skipped as u64;
            self.emit_patch(&outcome);
            return Ok(outcome);
        }

        let warm = self
            .engine
            .run_warm(&self.program, &self.strat, &mut self.db, seed)?;
        self.stats.facts_derived += warm.stats.facts_derived;
        self.stats.iterations += warm.stats.iterations;
        self.stats.nulls_created += warm.stats.nulls_created;
        self.stats.unifications += warm.stats.unifications;
        self.trace.extend(warm.trace);
        self.termination = warm.termination.clone();
        self.session_stats.strata_skipped += warm.strata_skipped as u64;
        let outcome = PatchOutcome {
            warm: true,
            fallback_reason: None,
            facts_added,
            facts_removed,
            facts_derived: warm.stats.facts_derived,
            strata_skipped: warm.strata_skipped,
            termination: warm.termination,
        };
        self.profile = warm.profile;
        self.emit_patch(&outcome);
        Ok(outcome)
    }

    /// Full cold re-evaluation over the tracked EDB — the documented
    /// fallback when a patch cannot be bounded by dependency analysis.
    fn patch_cold(
        &mut self,
        reason: String,
        facts_added: usize,
        facts_removed: usize,
    ) -> Result<PatchOutcome, EngineError> {
        self.session_stats.cold_fallbacks += 1;
        let result = self.engine.run(&self.program, self.edb.clone())?;
        self.db = result.db;
        self.violations = result.violations;
        self.stats = result.stats;
        self.profile = result.profile;
        self.trace = result.trace;
        self.termination = result.termination.clone();
        let outcome = PatchOutcome {
            warm: false,
            fallback_reason: Some(reason),
            facts_added,
            facts_removed,
            facts_derived: self.stats.facts_derived,
            strata_skipped: 0,
            termination: result.termination,
        };
        self.emit_patch(&outcome);
        Ok(outcome)
    }

    /// The documented fallback rule: returns `Some(reason)` when the patch
    /// must be handled by a full re-evaluation.
    fn fallback_reason(&self, patch: &FactPatch, facts_removed: usize) -> Option<String> {
        if facts_removed > 0 {
            return Some(format!(
                "{facts_removed} retraction(s): derived consequences cannot be un-derived by forward chaining"
            ));
        }
        if self.termination != Termination::Fixpoint {
            return Some(format!(
                "previous run ended early ({:?}): a partial database is not a sound seed",
                self.termination
            ));
        }
        let affected = self.affected_closure(patch.additions.iter().map(|(p, _)| p.as_str()));
        for rule in &self.program.rules {
            let is_egd = matches!(rule.head, Head::Equality(_, _));
            let has_agg = rule.has_aggregate();
            for lit in &rule.body {
                match lit {
                    Literal::Neg(a) if affected.contains(a.pred.as_str()) => {
                        return Some(format!(
                            "patched predicate reaches '{}' under negation",
                            a.pred
                        ));
                    }
                    Literal::Pos(a) if affected.contains(a.pred.as_str()) => {
                        if has_agg {
                            return Some(format!(
                                "patched predicate reaches aggregate input '{}'",
                                a.pred
                            ));
                        }
                        if is_egd {
                            return Some(format!(
                                "patched predicate reaches EGD body predicate '{}'",
                                a.pred
                            ));
                        }
                    }
                    _ => {}
                }
            }
        }
        None
    }

    /// Transitive closure of the patched predicates over the rule
    /// dependency graph (body predicate → head predicates).
    fn affected_closure<'a>(&self, seeds: impl Iterator<Item = &'a str>) -> HashSet<String> {
        let mut affected: HashSet<String> = seeds.map(str::to_string).collect();
        let mut queue: VecDeque<String> = affected.iter().cloned().collect();
        while let Some(pred) = queue.pop_front() {
            for rule in &self.program.rules {
                let reads = rule
                    .body
                    .iter()
                    .any(|l| matches!(l, Literal::Pos(a) | Literal::Neg(a) if a.pred == pred));
                if !reads {
                    continue;
                }
                for head in rule.head_preds() {
                    if affected.insert(head.to_string()) {
                        queue.push_back(head.to_string());
                    }
                }
            }
        }
        affected
    }

    /// Replay a patch outcome into the session's collector, if any.
    fn emit_patch(&self, outcome: &PatchOutcome) {
        let Some(collector) = &self.engine.config.collector else {
            return;
        };
        let obs = Obs::new(Some(collector.as_ref()));
        obs.counter(
            "engine.warm.patched_facts",
            (outcome.facts_added + outcome.facts_removed) as u64,
            fields!["warm" => outcome.warm],
        );
        obs.counter(
            "engine.warm.strata_skipped",
            outcome.strata_skipped as u64,
            vec![],
        );
        obs.counter(
            "engine.warm.reused_index_bytes",
            if outcome.warm {
                self.db.index_footprint_bytes() as u64
            } else {
                0
            },
            vec![],
        );
        obs.counter(
            "engine.warm.fallback_cold",
            u64::from(!outcome.warm),
            vec![],
        );
    }
}

/// Serialize one database: null counter, then relations sorted by name
/// (rows in insertion order — warm/cold equivalence depends on replaying
/// them in the same order), each followed by its index recipes.
fn encode_database(out: &mut Vec<u8>, db: &Database) {
    wire::put_u64(out, db.nulls_minted());
    let mut names: Vec<&str> = db.relation_names().collect();
    names.sort_unstable();
    let rels: Vec<_> = names
        .into_iter()
        .filter_map(|n| db.relation(n).map(|r| (n, r)))
        .collect();
    wire::put_u32(out, rels.len() as u32);
    for (name, rel) in rels {
        wire::put_str(out, name);
        wire::put_u32(out, rel.len() as u32);
        for row in rel.iter() {
            wire::put_u32(out, row.len() as u32);
            for v in row.iter() {
                wire::put_value(out, v);
            }
        }
        let bounds = rel.index_bounds();
        wire::put_u32(out, bounds.len() as u32);
        for bound in &bounds {
            wire::put_u32(out, bound.len() as u32);
            for &pos in bound {
                wire::put_u32(out, pos as u32);
            }
        }
    }
}

/// Total inverse of [`encode_database`]: every malformation returns
/// `Err(reason)`. Index recipes are returned separately so the caller can
/// replay them through `ensure_index` after the rows are in place.
#[allow(clippy::type_complexity)]
fn decode_database(
    r: &mut wire::Reader<'_>,
) -> Result<(Database, Vec<(String, Vec<Vec<usize>>)>), String> {
    let nulls = r.u64()?;
    let nrels = r.u32()? as usize;
    if nrels > r.remaining() {
        return Err("relation count exceeds payload".into());
    }
    let mut db = Database::new();
    let mut recipes = Vec::new();
    for _ in 0..nrels {
        let name = r.string()?;
        let nrows = r.u32()? as usize;
        if nrows > r.remaining() {
            return Err("row count exceeds payload".into());
        }
        for _ in 0..nrows {
            let arity = r.u32()? as usize;
            if arity > r.remaining() {
                return Err("row arity exceeds payload".into());
            }
            let mut row = Vec::with_capacity(arity);
            for _ in 0..arity {
                row.push(r.value()?);
            }
            db.insert(&name, row);
        }
        let nidx = r.u32()? as usize;
        if nidx > r.remaining() {
            return Err("index count exceeds payload".into());
        }
        let mut bounds = Vec::with_capacity(nidx);
        for _ in 0..nidx {
            let blen = r.u32()? as usize;
            if blen > r.remaining() {
                return Err("index width exceeds payload".into());
            }
            let mut bound = Vec::with_capacity(blen);
            for _ in 0..blen {
                bound.push(r.u32()? as usize);
            }
            bounds.push(bound);
        }
        if !bounds.is_empty() {
            recipes.push((name, bounds));
        }
    }
    db.ensure_null_floor(nulls);
    Ok((db, recipes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::EngineConfig;
    use crate::parser::parse_program;

    fn ints(pred: &str, rows: &[(i64, i64)]) -> Vec<(String, Vec<Value>)> {
        rows.iter()
            .map(|&(a, b)| (pred.to_string(), vec![Value::Int(a), Value::Int(b)]))
            .collect()
    }

    fn tc_session(threads: usize) -> EngineSession {
        let program = parse_program(
            "path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- edge(X, Y), path(Y, Z).",
        )
        .unwrap();
        let mut input = Database::new();
        for (a, b) in [(1, 2), (2, 3)] {
            input.insert("edge", vec![Value::Int(a), Value::Int(b)]);
        }
        Engine::with_config(EngineConfig {
            threads,
            ..EngineConfig::default()
        })
        .session(program, input)
        .unwrap()
    }

    #[test]
    fn warm_patch_extends_closure() {
        let mut s = tc_session(1);
        assert_eq!(s.db().rows("path").len(), 3);
        let outcome = s
            .patch(FactPatch::additions(ints("edge", &[(3, 4)])))
            .unwrap();
        assert!(outcome.warm, "positive program must stay warm");
        assert_eq!(outcome.facts_added, 1);
        // 1→4, 2→4, 3→4 are new
        assert_eq!(s.db().rows("path").len(), 6);
        assert_eq!(outcome.facts_derived, 3);
        assert_eq!(s.termination(), &Termination::Fixpoint);
    }

    #[test]
    fn warm_patch_matches_cold_rerun_across_threads() {
        for threads in [1, 4] {
            let mut s = tc_session(threads);
            s.patch(FactPatch::additions(ints("edge", &[(3, 4), (4, 1)])))
                .unwrap();
            let program = parse_program(
                "path(X, Y) :- edge(X, Y).\n\
                 path(X, Z) :- edge(X, Y), path(Y, Z).",
            )
            .unwrap();
            let mut input = Database::new();
            for (a, b) in [(1, 2), (2, 3), (3, 4), (4, 1)] {
                input.insert("edge", vec![Value::Int(a), Value::Int(b)]);
            }
            let cold = Engine::new().run(&program, input).unwrap();
            let mut warm_rows = s.db().rows("path");
            let mut cold_rows = cold.db.rows("path");
            warm_rows.sort();
            cold_rows.sort();
            assert_eq!(warm_rows, cold_rows, "threads={threads}");
        }
    }

    #[test]
    fn duplicate_addition_is_a_noop() {
        let mut s = tc_session(1);
        let facts_before = s.stats().facts_derived;
        let outcome = s
            .patch(FactPatch::additions(ints("edge", &[(1, 2)])))
            .unwrap();
        assert!(outcome.warm);
        assert_eq!(outcome.facts_added, 0);
        assert_eq!(outcome.facts_derived, 0);
        assert_eq!(s.stats().facts_derived, facts_before);
    }

    #[test]
    fn removal_triggers_cold_fallback() {
        let mut s = tc_session(1);
        let outcome = s
            .patch(FactPatch {
                removals: ints("edge", &[(2, 3)]),
                additions: vec![],
            })
            .unwrap();
        assert!(!outcome.warm);
        assert!(outcome
            .fallback_reason
            .as_deref()
            .unwrap()
            .contains("retraction"));
        // 2→3 and 1→3 are gone
        assert_eq!(s.db().rows("path").len(), 1);
        assert_eq!(s.session_stats().cold_fallbacks, 1);
    }

    #[test]
    fn negated_predicate_patch_triggers_cold_fallback() {
        let program = parse_program(
            "tc(X, Y) :- edge(X, Y).\n\
             tc(X, Z) :- edge(X, Y), tc(Y, Z).\n\
             gap(X, Y) :- cand(X, Y), not tc(X, Y).",
        )
        .unwrap();
        let mut input = Database::new();
        input.insert("edge", vec![Value::Int(1), Value::Int(2)]);
        input.insert("cand", vec![Value::Int(1), Value::Int(3)]);
        let mut s = Engine::new().session(program, input).unwrap();
        assert_eq!(s.db().rows("gap").len(), 1);
        // Adding an edge grows `tc`, which sits under `not` — warm seeding
        // could leave a stale `gap` fact, so the session must go cold.
        let outcome = s
            .patch(FactPatch::additions(ints("edge", &[(2, 3)])))
            .unwrap();
        assert!(!outcome.warm, "negation-affected patch must fall back");
        assert!(outcome
            .fallback_reason
            .as_deref()
            .unwrap()
            .contains("negation"));
        // 1→3 is now derivable, so gap(1, 3) must be retracted.
        assert_eq!(s.db().rows("gap").len(), 0);
    }

    #[test]
    fn negation_on_unaffected_predicate_stays_warm() {
        let program = parse_program(
            "path(X, Y) :- edge(X, Y).\n\
             path(X, Z) :- edge(X, Y), path(Y, Z).\n\
             odd(X, Y) :- other(X, Y), not blocked(X, Y).",
        )
        .unwrap();
        let mut input = Database::new();
        input.insert("edge", vec![Value::Int(1), Value::Int(2)]);
        input.insert("other", vec![Value::Int(9), Value::Int(9)]);
        let mut s = Engine::new().session(program, input).unwrap();
        // `edge` does not reach `blocked`, so the patch is warm-safe even
        // though the program contains negation elsewhere.
        let outcome = s
            .patch(FactPatch::additions(ints("edge", &[(2, 3)])))
            .unwrap();
        assert!(outcome.warm);
        assert_eq!(s.db().rows("path").len(), 3);
    }

    #[test]
    fn aggregate_input_patch_triggers_cold_fallback() {
        let program = parse_program(
            "t(X, Y) :- e(X, Y).\n\
             cnt(X, C) :- t(X, Y), C = mcount(<Y>).",
        )
        .unwrap();
        let mut input = Database::new();
        input.insert("e", vec![Value::Int(1), Value::Int(10)]);
        let mut s = Engine::new().session(program, input).unwrap();
        assert_eq!(s.db().rows("cnt"), vec![vec![Value::Int(1), Value::Int(1)]]);
        let outcome = s
            .patch(FactPatch::additions(ints("e", &[(1, 11)])))
            .unwrap();
        assert!(!outcome.warm);
        assert!(outcome
            .fallback_reason
            .as_deref()
            .unwrap()
            .contains("aggregate"));
        // The count must be *updated*, which monotone seeding cannot do.
        let rows = s.db().rows("cnt");
        assert!(rows.contains(&vec![Value::Int(1), Value::Int(2)]));
    }

    #[test]
    fn unreachable_strata_are_skipped() {
        // Two independent components: patching `e` must not re-touch the
        // strata that only serve `f`-derived predicates.
        let program = parse_program(
            "a(X, Y) :- e(X, Y).\n\
             b(X, Y) :- f(X, Y).\n\
             c(X, Y) :- b(X, Y), not miss(X, Y).",
        )
        .unwrap();
        let mut input = Database::new();
        input.insert("e", vec![Value::Int(1), Value::Int(2)]);
        input.insert("f", vec![Value::Int(5), Value::Int(6)]);
        let mut s = Engine::new().session(program, input).unwrap();
        let outcome = s.patch(FactPatch::additions(ints("e", &[(3, 4)]))).unwrap();
        assert!(outcome.warm);
        assert!(
            outcome.strata_skipped >= 1,
            "expected the f-only stratum to be skipped, got {outcome:?}"
        );
        assert_eq!(s.db().rows("a").len(), 2);
        assert_eq!(
            s.session_stats().strata_skipped,
            outcome.strata_skipped as u64
        );
    }

    #[test]
    fn session_reuses_indexes_across_patches() {
        let mut s = tc_session(1);
        s.patch(FactPatch::additions(ints("edge", &[(3, 4)])))
            .unwrap();
        let stats = s.session_stats();
        assert_eq!(stats.warm_patches, 1);
        assert!(
            stats.reused_index_bytes > 0,
            "warm patch should report reused index bytes, got {stats:?}"
        );
    }

    #[test]
    fn goal_query_leaves_warm_state_untouched_and_tracks_patches() {
        let mut s = tc_session(1);
        let before = s.db().rows("path");
        let goal = crate::query::parse_goal("path(1, ?)").unwrap();
        let run = s
            .evaluate_goals(
                std::slice::from_ref(&goal),
                crate::magic::MagicOptions::default(),
            )
            .unwrap();
        assert!(run.magic.applied);
        let mut sliced = crate::query::goal_slice(&run.result.db, &goal);
        sliced.sort();
        assert_eq!(
            sliced,
            vec![
                vec![Value::Int(1), Value::Int(2)],
                vec![Value::Int(1), Value::Int(3)],
            ]
        );
        // the warm database is untouched by the side query
        assert_eq!(s.db().rows("path"), before);
        assert_eq!(s.session_stats().goal_evals, 1);
        assert_eq!(s.session_stats().goal_fallbacks, 0);

        // a later patch is visible to subsequent goal queries
        s.patch(FactPatch::additions(ints("edge", &[(3, 4)])))
            .unwrap();
        let run = s
            .evaluate_goals(
                std::slice::from_ref(&goal),
                crate::magic::MagicOptions::default(),
            )
            .unwrap();
        assert_eq!(crate::query::goal_slice(&run.result.db, &goal).len(), 3);
        assert_eq!(s.session_stats().goal_evals, 2);
    }

    #[test]
    fn goal_query_slice_matches_full_run_slice() {
        let mut s = tc_session(2);
        let goal = crate::query::parse_goal("path(2, ?)").unwrap();
        let run = s
            .evaluate_goals(
                std::slice::from_ref(&goal),
                crate::magic::MagicOptions::default(),
            )
            .unwrap();
        let mut magic_slice = crate::query::goal_slice(&run.result.db, &goal);
        magic_slice.sort();
        let mut full_slice = crate::query::goal_slice(s.db(), &goal);
        full_slice.sort();
        assert_eq!(magic_slice, full_slice);
    }

    #[test]
    fn empty_patch_is_warm_and_cheap() {
        let mut s = tc_session(1);
        let outcome = s.patch(FactPatch::default()).unwrap();
        assert!(outcome.warm);
        assert_eq!(outcome.facts_added + outcome.facts_removed, 0);
        assert_eq!(outcome.facts_derived, 0);
    }

    const TC_PROGRAM: &str = "path(X, Y) :- edge(X, Y).\n\
                              path(X, Z) :- edge(X, Y), path(Y, Z).";

    #[test]
    fn warm_session_roundtrips_through_mem_backend() {
        let mut store = crate::backend::MemBackend::new();
        let mut original = tc_session(1);
        let bytes = original.save_warm(&mut store).unwrap();
        assert!(bytes > 0);
        let program = parse_program(TC_PROGRAM).unwrap();
        let mut restored = EngineSession::load_warm(Engine::new(), program, &store).unwrap();
        // bit-identical warm state: same rows in the same order
        assert_eq!(restored.db().rows("path"), original.db().rows("path"));
        assert_eq!(restored.termination(), &Termination::Fixpoint);
        // and the restored session patches warm, to the same result
        let o1 = original
            .patch(FactPatch::additions(ints("edge", &[(3, 4)])))
            .unwrap();
        let o2 = restored
            .patch(FactPatch::additions(ints("edge", &[(3, 4)])))
            .unwrap();
        assert!(o1.warm && o2.warm, "restored session must patch warm");
        assert_eq!(restored.db().rows("path"), original.db().rows("path"));
    }

    #[test]
    fn warm_session_survives_a_restart_on_disk() {
        let dir = std::env::temp_dir().join(format!("vadasa-warm-restart-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        {
            let mut store = crate::backend::FileBackend::create(&dir).unwrap();
            tc_session(1).save_warm(&mut store).unwrap();
        }
        // "new process": reopen the directory cold
        let store = crate::backend::FileBackend::create(&dir).unwrap();
        let program = parse_program(TC_PROGRAM).unwrap();
        let restored = EngineSession::load_warm(Engine::new(), program, &store).unwrap();
        assert_eq!(restored.db().rows("path"), tc_session(1).db().rows("path"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_fixpoint_session_refuses_to_persist() {
        let program = parse_program(TC_PROGRAM).unwrap();
        let mut input = Database::new();
        for i in 0..20 {
            input.insert("edge", vec![Value::Int(i), Value::Int(i + 1)]);
        }
        let s = Engine::with_config(EngineConfig {
            budget: crate::governor::Budget {
                max_facts: Some(3),
                ..Default::default()
            },
            ..EngineConfig::default()
        })
        .session(program, input)
        .unwrap();
        assert_ne!(s.termination(), &Termination::Fixpoint);
        let mut store = crate::backend::MemBackend::new();
        assert!(matches!(
            s.save_warm(&mut store),
            Err(StorageError::NotPersistable { .. })
        ));
    }

    #[test]
    fn load_refuses_a_different_program() {
        let mut store = crate::backend::MemBackend::new();
        tc_session(1).save_warm(&mut store).unwrap();
        let other = parse_program("reach(X, Y) :- edge(X, Y).").unwrap();
        assert!(matches!(
            EngineSession::load_warm(Engine::new(), other, &store),
            Err(StorageError::Fingerprint { .. })
        ));
    }

    #[test]
    fn load_reports_a_missing_artifact() {
        let store = crate::backend::MemBackend::new();
        let program = parse_program(TC_PROGRAM).unwrap();
        assert!(matches!(
            EngineSession::load_warm(Engine::new(), program, &store),
            Err(StorageError::Missing { .. })
        ));
    }
}
