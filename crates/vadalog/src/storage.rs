//! Fact storage: insertion-ordered, deduplicated relations with prebuilt
//! hash indexes over bound argument positions.
//!
//! Indexes are keyed by the *set of bound positions* a join probe uses
//! (e.g. `[0]` for `p(X, ?)` with `X` bound). They are built on demand by
//! [`Relation::ensure_index`] — the engine calls it once per semi-naive
//! round for every (predicate, bound-set) pair its join plans need — and
//! extended incrementally as rows arrive. Probing ([`Relation::probe`])
//! is a pure `&self` hash lookup returning a borrowed posting list, so
//! relations are `Sync` and many rules can probe the same relation from
//! parallel evaluation threads without locks.

use crate::ast::Fact;
use crate::value::{NullId, Value};
use std::borrow::Borrow;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A stored tuple (shared so index buckets and deltas stay cheap).
pub type Row = Arc<Vec<Value>>;

/// Dedup key wrapping a shared row so membership can be probed with a
/// borrowed `&[Value]` — no allocation on the contains/insert path.
#[derive(Debug, Clone)]
struct RowKey(Row);

impl Borrow<[Value]> for RowKey {
    fn borrow(&self) -> &[Value] {
        self.0.as_slice()
    }
}

impl Hash for RowKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Must agree with the `[Value]` slice hash used for borrowed probes.
        <[Value] as Hash>::hash(self.0.as_slice(), state)
    }
}

impl PartialEq for RowKey {
    fn eq(&self, other: &Self) -> bool {
        self.0.as_slice() == other.0.as_slice()
    }
}
impl Eq for RowKey {}

/// Secondary hash index over a fixed set of bound positions.
#[derive(Debug, Default, Clone)]
struct Index {
    /// How many of the relation's rows this index has absorbed.
    absorbed: usize,
    /// Key values (in bound-position order) → row indices.
    map: HashMap<Vec<Value>, Vec<u32>>,
}

/// One relation: a deduplicated, insertion-ordered set of rows plus
/// prebuilt secondary indexes keyed by a set of bound positions.
#[derive(Debug, Default, Clone)]
pub struct Relation {
    rows: Vec<Row>,
    dedup: HashSet<RowKey>,
    /// bound-position set → incremental index over those positions.
    indexes: HashMap<Vec<usize>, Index>,
}

impl Relation {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Insert a row; returns `true` if it was new. Duplicate rows are
    /// rejected with a borrowed membership probe — no allocation.
    pub fn insert(&mut self, row: Vec<Value>) -> bool {
        self.insert_shared(Arc::new(row)).is_some()
    }

    /// Insert a shared row; returns the stored handle if it was new so
    /// callers (the semi-naive delta) can alias it instead of cloning.
    pub fn insert_shared(&mut self, row: Row) -> Option<Row> {
        if self.dedup.contains(row.as_slice()) {
            return None;
        }
        self.dedup.insert(RowKey(row.clone()));
        self.rows.push(row.clone());
        Some(row)
    }

    /// Does the relation contain this exact row? Borrow-only.
    pub fn contains(&self, row: &[Value]) -> bool {
        self.dedup.contains(row)
    }

    /// Iterate all rows in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Row> {
        self.rows.iter()
    }

    /// Row at a given insertion index.
    pub fn row(&self, idx: usize) -> &Row {
        &self.rows[idx]
    }

    /// Build the index over `bound` positions (sorted, deduplicated by the
    /// caller) or extend it to cover rows inserted since the last call.
    pub fn ensure_index(&mut self, bound: &[usize]) {
        if bound.is_empty() {
            return;
        }
        let idx = match self.indexes.get_mut(bound) {
            Some(i) => i,
            None => self.indexes.entry(bound.to_vec()).or_default(),
        };
        while idx.absorbed < self.rows.len() {
            let row = &self.rows[idx.absorbed];
            if bound.iter().all(|&i| i < row.len()) {
                let key: Vec<Value> = bound.iter().map(|&i| row[i].clone()).collect();
                idx.map.entry(key).or_default().push(idx.absorbed as u32);
            }
            idx.absorbed += 1;
        }
    }

    /// Probe a prebuilt index: row indices whose `bound` positions equal
    /// `key`. Returns `None` when no *fully absorbed* index over `bound`
    /// exists — the caller must fall back to a scan (a partially absorbed
    /// index would silently miss rows).
    pub fn probe(&self, bound: &[usize], key: &[Value]) -> Option<&[u32]> {
        let idx = self.indexes.get(bound)?;
        if idx.absorbed != self.rows.len() {
            return None;
        }
        Some(idx.map.get(key).map(|v| v.as_slice()).unwrap_or(&[]))
    }

    /// Indices of rows matching `pattern` (None = wildcard), building the
    /// index over the bound positions on demand. Retained for callers that
    /// hold `&mut` and probe ad-hoc patterns (e.g. the restricted-chase
    /// witness lookup); the planned join path uses
    /// [`ensure_index`](Self::ensure_index) + [`probe`](Self::probe).
    pub fn select_indices(&mut self, pattern: &[Option<Value>]) -> Vec<usize> {
        let bound: Vec<usize> = pattern
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_ref().map(|_| i))
            .collect();
        if bound.is_empty() {
            return (0..self.rows.len()).collect();
        }
        let key: Vec<Value> = bound.iter().filter_map(|&i| pattern[i].clone()).collect();
        self.ensure_index(&bound);
        match self.probe(&bound, &key) {
            Some(hits) => hits.iter().map(|&i| i as usize).collect(),
            None => Vec::new(),
        }
    }

    /// Replace the whole row set (used by EGD substitution). Drops indexes.
    pub fn replace_rows(&mut self, new_rows: Vec<Vec<Value>>) {
        self.rows.clear();
        self.dedup.clear();
        self.indexes.clear();
        for r in new_rows {
            self.insert(r);
        }
    }

    /// Remove a row; returns `true` if it was present. Row order of the
    /// survivors is preserved; indexes are dropped (their posting lists
    /// hold positional row ids) and will be rebuilt lazily on the next
    /// `ensure_index`.
    pub fn remove(&mut self, row: &[Value]) -> bool {
        if !self.dedup.remove(row) {
            return false;
        }
        self.rows.retain(|r| r.as_slice() != row);
        self.indexes.clear();
        true
    }

    /// The bound-position sets of every prebuilt index, sorted. These are
    /// the *recipes* warm-session persistence stores on disk: a restored
    /// session replays them through [`ensure_index`](Self::ensure_index)
    /// so a disk-warm session probes the same indexes an uninterrupted
    /// one would.
    pub fn index_bounds(&self) -> Vec<Vec<usize>> {
        let mut bounds: Vec<Vec<usize>> = self.indexes.keys().cloned().collect();
        bounds.sort();
        bounds
    }

    /// Approximate heap footprint of this relation's prebuilt hash
    /// indexes, in bytes. Used by warm-start telemetry to report how much
    /// index state a resumed session kept alive instead of rebuilding.
    pub fn index_footprint_bytes(&self) -> usize {
        use std::mem::size_of;
        self.indexes
            .iter()
            .map(|(bound, idx)| {
                let keys: usize = idx
                    .map
                    .iter()
                    .map(|(k, postings)| {
                        k.len() * size_of::<Value>() + postings.len() * size_of::<u32>()
                    })
                    .sum();
                bound.len() * size_of::<usize>() + keys
            })
            .sum()
    }
}

/// A database: named relations plus the labelled-null counter.
#[derive(Debug, Default, Clone)]
pub struct Database {
    relations: HashMap<String, Relation>,
    next_null: NullId,
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a fact; returns `true` if new. Null labels occurring in the
    /// fact advance the internal counter so freshly invented nulls never
    /// collide with caller-provided ones.
    pub fn insert(&mut self, pred: impl AsRef<str>, row: Vec<Value>) -> bool {
        self.insert_shared(pred, row).is_some()
    }

    /// Insert a fact and, when it is new, hand back the stored shared row.
    /// This is the engine's hot path: the returned [`Row`] is aliased into
    /// the semi-naive delta (and the trace) without re-cloning the values.
    pub fn insert_shared(&mut self, pred: impl AsRef<str>, row: Vec<Value>) -> Option<Row> {
        for v in &row {
            if let Value::Null(n) = v {
                if *n >= self.next_null {
                    self.next_null = n + 1;
                }
            }
        }
        let pred = pred.as_ref();
        match self.relations.get_mut(pred) {
            Some(rel) => rel.insert_shared(Arc::new(row)),
            None => self
                .relations
                .entry(pred.to_string())
                .or_default()
                .insert_shared(Arc::new(row)),
        }
    }

    /// Insert a [`Fact`].
    pub fn insert_fact(&mut self, fact: Fact) -> bool {
        self.insert(fact.pred, fact.args)
    }

    /// Mint a fresh labelled null.
    pub fn fresh_null(&mut self) -> Value {
        let id = self.next_null;
        self.next_null += 1;
        Value::Null(id)
    }

    /// Number of labelled nulls minted so far.
    pub fn nulls_minted(&self) -> NullId {
        self.next_null
    }

    /// Raise the labelled-null counter to at least `floor`. Restoring a
    /// persisted database must reinstate the counter even when it sits
    /// beyond every null still *mentioned* in a row (nulls can be minted
    /// and then unified away by EGDs), or a resumed run would re-mint
    /// colliding labels.
    pub fn ensure_null_floor(&mut self, floor: NullId) {
        if floor > self.next_null {
            self.next_null = floor;
        }
    }

    /// Access a relation (empty relation if absent).
    pub fn relation(&self, pred: &str) -> Option<&Relation> {
        self.relations.get(pred)
    }

    /// Mutable access, creating the relation if needed.
    pub fn relation_mut(&mut self, pred: &str) -> &mut Relation {
        self.relations.entry(pred.to_string()).or_default()
    }

    /// All relation names.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(|s| s.as_str())
    }

    /// Rows of a relation as plain vectors (empty if the relation is absent).
    pub fn rows(&self, pred: &str) -> Vec<Vec<Value>> {
        self.relations
            .get(pred)
            .map(|r| r.iter().map(|row| (**row).clone()).collect())
            .unwrap_or_default()
    }

    /// Total number of facts across all relations.
    pub fn total_facts(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// Drop a whole relation (rows, dedup set and indexes); returns
    /// `true` if it existed. Goal-directed evaluation uses this to strip
    /// the internal `magic#…` relations before handing results back.
    pub fn remove_relation(&mut self, pred: &str) -> bool {
        self.relations.remove(pred).is_some()
    }

    /// Remove a fact; returns `true` if it was present. Empty relations
    /// are kept (cheap, and keeps relation names stable for reporting).
    pub fn remove(&mut self, pred: &str, row: &[Value]) -> bool {
        self.relations
            .get_mut(pred)
            .is_some_and(|rel| rel.remove(row))
    }

    /// Approximate heap footprint of all prebuilt hash indexes, in bytes
    /// (see [`Relation::index_footprint_bytes`]).
    pub fn index_footprint_bytes(&self) -> usize {
        self.relations
            .values()
            .map(Relation::index_footprint_bytes)
            .sum()
    }

    /// Apply a null-substitution: every occurrence of `Null(from)` becomes
    /// `to` across all relations. Used by EGD enforcement.
    pub fn substitute_null(&mut self, from: NullId, to: &Value) {
        fn subst(v: &Value, from: NullId, to: &Value) -> Value {
            match v {
                Value::Null(n) if *n == from => to.clone(),
                Value::Set(s) => Value::set(s.iter().map(|x| subst(x, from, to))),
                Value::Tuple(t) => {
                    Value::Tuple(Arc::new(t.iter().map(|x| subst(x, from, to)).collect()))
                }
                other => other.clone(),
            }
        }
        for rel in self.relations.values_mut() {
            let needs = rel
                .iter()
                .any(|row| row.iter().any(|v| contains_null(v, from)));
            if needs {
                let new_rows: Vec<Vec<Value>> = rel
                    .iter()
                    .map(|row| row.iter().map(|v| subst(v, from, to)).collect())
                    .collect();
                rel.replace_rows(new_rows);
            }
        }
    }
}

/// Does `v` contain the labelled null `id` (recursively)?
pub fn contains_null(v: &Value, id: NullId) -> bool {
    match v {
        Value::Null(n) => *n == id,
        Value::Set(s) => s.iter().any(|x| contains_null(x, id)),
        Value::Tuple(t) => t.iter().any(|x| contains_null(x, id)),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_deduplicates() {
        let mut db = Database::new();
        assert!(db.insert("p", vec![Value::Int(1)]));
        assert!(!db.insert("p", vec![Value::Int(1)]));
        assert_eq!(db.relation("p").unwrap().len(), 1);
    }

    #[test]
    fn contains_is_borrow_only_and_exact() {
        let mut rel = Relation::default();
        rel.insert(vec![Value::Int(1), Value::str("a")]);
        assert!(rel.contains(&[Value::Int(1), Value::str("a")]));
        assert!(!rel.contains(&[Value::Int(1)]));
        assert!(!rel.contains(&[Value::Int(1), Value::str("b")]));
    }

    #[test]
    fn insert_shared_aliases_the_stored_row() {
        let mut rel = Relation::default();
        let stored = rel.insert_shared(Arc::new(vec![Value::Int(7)])).unwrap();
        assert!(Arc::ptr_eq(&stored, rel.row(0)));
        assert!(rel.insert_shared(Arc::new(vec![Value::Int(7)])).is_none());
    }

    #[test]
    fn select_with_index() {
        let mut rel = Relation::default();
        for i in 0..100 {
            rel.insert(vec![Value::Int(i % 10), Value::Int(i)]);
        }
        let hits = rel.select_indices(&[Some(Value::Int(3)), None]);
        assert_eq!(hits.len(), 10);
        for h in hits {
            assert_eq!(rel.row(h)[0], Value::Int(3));
        }
    }

    #[test]
    fn index_extends_incrementally() {
        let mut rel = Relation::default();
        rel.insert(vec![Value::Int(1)]);
        assert_eq!(rel.select_indices(&[Some(Value::Int(1))]).len(), 1);
        rel.insert(vec![Value::Int(1), Value::Int(2)]); // different arity row ignored by index probe
        rel.insert(vec![Value::Int(1)]); // duplicate
        let mut rel2 = Relation::default();
        rel2.insert(vec![Value::Int(1)]);
        assert_eq!(rel2.select_indices(&[Some(Value::Int(1))]).len(), 1);
        rel2.insert(vec![Value::Int(2)]);
        rel2.insert(vec![Value::Int(1)]); // dup, not inserted
        assert_eq!(rel2.select_indices(&[Some(Value::Int(1))]).len(), 1);
        assert_eq!(rel2.select_indices(&[Some(Value::Int(2))]).len(), 1);
    }

    #[test]
    fn probe_requires_fully_absorbed_index() {
        let mut rel = Relation::default();
        rel.insert(vec![Value::Int(1)]);
        rel.ensure_index(&[0]);
        assert_eq!(rel.probe(&[0], &[Value::Int(1)]).unwrap(), &[0u32]);
        // a new row makes the index stale: probe must refuse
        rel.insert(vec![Value::Int(2)]);
        assert!(rel.probe(&[0], &[Value::Int(1)]).is_none());
        rel.ensure_index(&[0]);
        assert_eq!(rel.probe(&[0], &[Value::Int(2)]).unwrap(), &[1u32]);
        // missing key in a fresh index: empty postings, not a scan
        assert!(rel.probe(&[0], &[Value::Int(9)]).unwrap().is_empty());
    }

    #[test]
    fn fresh_nulls_never_collide_with_inserted() {
        let mut db = Database::new();
        db.insert("p", vec![Value::Null(41)]);
        let n = db.fresh_null();
        assert_eq!(n, Value::Null(42));
    }

    #[test]
    fn substitute_null_rewrites_composites() {
        let mut db = Database::new();
        db.insert(
            "t",
            vec![Value::set([Value::pair(Value::str("a"), Value::Null(7))])],
        );
        db.substitute_null(7, &Value::str("gone"));
        let rows = db.rows("t");
        let set = rows[0][0].as_set().unwrap();
        let pair = set.iter().next().unwrap().as_tuple().unwrap();
        assert_eq!(pair[1], Value::str("gone"));
    }

    #[test]
    fn substitution_can_merge_rows() {
        let mut db = Database::new();
        db.insert("p", vec![Value::Null(1), Value::Int(9)]);
        db.insert("p", vec![Value::Int(5), Value::Int(9)]);
        db.substitute_null(1, &Value::Int(5));
        assert_eq!(db.relation("p").unwrap().len(), 1);
    }
}
