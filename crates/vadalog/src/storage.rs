//! Fact storage: insertion-ordered, deduplicated relations with on-demand
//! hash indexes over bound argument positions.

use crate::ast::Fact;
use crate::value::{NullId, Value};
use std::cell::RefCell;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::Arc;

/// A stored tuple (shared so index buckets stay cheap).
pub type Row = Arc<Vec<Value>>;

/// Lazily built secondary index: how many rows it has absorbed (so it can
/// be extended incrementally) plus key values → row indices.
type IndexState = (usize, HashMap<Vec<Value>, Vec<usize>>);

/// One relation: a deduplicated, insertion-ordered set of rows plus lazily
/// built secondary indexes keyed by a set of bound positions.
#[derive(Debug, Default)]
pub struct Relation {
    rows: Vec<Row>,
    dedup: HashMap<Row, usize>,
    /// bound-position mask → incremental index over those positions.
    indexes: RefCell<HashMap<Vec<usize>, IndexState>>,
}

impl Clone for Relation {
    fn clone(&self) -> Self {
        Relation {
            rows: self.rows.clone(),
            dedup: self.dedup.clone(),
            indexes: RefCell::new(HashMap::new()),
        }
    }
}

impl Relation {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Insert a row; returns `true` if it was new.
    pub fn insert(&mut self, row: Vec<Value>) -> bool {
        let row: Row = Arc::new(row);
        match self.dedup.entry(row.clone()) {
            Entry::Occupied(_) => false,
            Entry::Vacant(v) => {
                v.insert(self.rows.len());
                self.rows.push(row);
                true
            }
        }
    }

    /// Does the relation contain this exact row?
    pub fn contains(&self, row: &[Value]) -> bool {
        // Arc<Vec<Value>> only borrows as Vec<Value>, so the probe needs an
        // owned key; rows are short, the copy is cheap.
        #[allow(clippy::unnecessary_to_owned)]
        self.dedup.contains_key(&row.to_vec())
    }

    /// Iterate all rows in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Row> {
        self.rows.iter()
    }

    /// Row at a given insertion index.
    pub fn row(&self, idx: usize) -> &Row {
        &self.rows[idx]
    }

    /// Indices of rows matching `pattern` (None = wildcard). Uses a hash
    /// index over the bound positions, built or extended on demand.
    pub fn select_indices(&self, pattern: &[Option<Value>]) -> Vec<usize> {
        let bound: Vec<usize> = pattern
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_ref().map(|_| i))
            .collect();
        if bound.is_empty() {
            return (0..self.rows.len()).collect();
        }
        let key: Vec<Value> = bound.iter().map(|&i| pattern[i].clone().unwrap()).collect();

        let mut indexes = self.indexes.borrow_mut();
        let (absorbed, index) = indexes
            .entry(bound.clone())
            .or_insert_with(|| (0, HashMap::new()));
        while *absorbed < self.rows.len() {
            let row = &self.rows[*absorbed];
            if bound.iter().all(|&i| i < row.len()) {
                let k: Vec<Value> = bound.iter().map(|&i| row[i].clone()).collect();
                index.entry(k).or_default().push(*absorbed);
            }
            *absorbed += 1;
        }
        index.get(&key).cloned().unwrap_or_default()
    }

    /// Replace the whole row set (used by EGD substitution). Drops indexes.
    pub fn replace_rows(&mut self, new_rows: Vec<Vec<Value>>) {
        self.rows.clear();
        self.dedup.clear();
        self.indexes.borrow_mut().clear();
        for r in new_rows {
            self.insert(r);
        }
    }
}

/// A database: named relations plus the labelled-null counter.
#[derive(Debug, Default, Clone)]
pub struct Database {
    relations: HashMap<String, Relation>,
    next_null: NullId,
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a fact; returns `true` if new. Null labels occurring in the
    /// fact advance the internal counter so freshly invented nulls never
    /// collide with caller-provided ones.
    pub fn insert(&mut self, pred: impl AsRef<str>, row: Vec<Value>) -> bool {
        for v in &row {
            if let Value::Null(n) = v {
                if *n >= self.next_null {
                    self.next_null = n + 1;
                }
            }
        }
        self.relations
            .entry(pred.as_ref().to_string())
            .or_default()
            .insert(row)
    }

    /// Insert a [`Fact`].
    pub fn insert_fact(&mut self, fact: Fact) -> bool {
        self.insert(fact.pred, fact.args)
    }

    /// Mint a fresh labelled null.
    pub fn fresh_null(&mut self) -> Value {
        let id = self.next_null;
        self.next_null += 1;
        Value::Null(id)
    }

    /// Number of labelled nulls minted so far.
    pub fn nulls_minted(&self) -> NullId {
        self.next_null
    }

    /// Access a relation (empty relation if absent).
    pub fn relation(&self, pred: &str) -> Option<&Relation> {
        self.relations.get(pred)
    }

    /// Mutable access, creating the relation if needed.
    pub fn relation_mut(&mut self, pred: &str) -> &mut Relation {
        self.relations.entry(pred.to_string()).or_default()
    }

    /// All relation names.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(|s| s.as_str())
    }

    /// Rows of a relation as plain vectors (empty if the relation is absent).
    pub fn rows(&self, pred: &str) -> Vec<Vec<Value>> {
        self.relations
            .get(pred)
            .map(|r| r.iter().map(|row| (**row).clone()).collect())
            .unwrap_or_default()
    }

    /// Total number of facts across all relations.
    pub fn total_facts(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// Apply a null-substitution: every occurrence of `Null(from)` becomes
    /// `to` across all relations. Used by EGD enforcement.
    pub fn substitute_null(&mut self, from: NullId, to: &Value) {
        fn subst(v: &Value, from: NullId, to: &Value) -> Value {
            match v {
                Value::Null(n) if *n == from => to.clone(),
                Value::Set(s) => Value::set(s.iter().map(|x| subst(x, from, to))),
                Value::Tuple(t) => {
                    Value::Tuple(Arc::new(t.iter().map(|x| subst(x, from, to)).collect()))
                }
                other => other.clone(),
            }
        }
        for rel in self.relations.values_mut() {
            let needs = rel
                .iter()
                .any(|row| row.iter().any(|v| contains_null(v, from)));
            if needs {
                let new_rows: Vec<Vec<Value>> = rel
                    .iter()
                    .map(|row| row.iter().map(|v| subst(v, from, to)).collect())
                    .collect();
                rel.replace_rows(new_rows);
            }
        }
    }
}

/// Does `v` contain the labelled null `id` (recursively)?
pub fn contains_null(v: &Value, id: NullId) -> bool {
    match v {
        Value::Null(n) => *n == id,
        Value::Set(s) => s.iter().any(|x| contains_null(x, id)),
        Value::Tuple(t) => t.iter().any(|x| contains_null(x, id)),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_deduplicates() {
        let mut db = Database::new();
        assert!(db.insert("p", vec![Value::Int(1)]));
        assert!(!db.insert("p", vec![Value::Int(1)]));
        assert_eq!(db.relation("p").unwrap().len(), 1);
    }

    #[test]
    fn select_with_index() {
        let mut rel = Relation::default();
        for i in 0..100 {
            rel.insert(vec![Value::Int(i % 10), Value::Int(i)]);
        }
        let hits = rel.select_indices(&[Some(Value::Int(3)), None]);
        assert_eq!(hits.len(), 10);
        for h in hits {
            assert_eq!(rel.row(h)[0], Value::Int(3));
        }
    }

    #[test]
    fn index_extends_incrementally() {
        let mut rel = Relation::default();
        rel.insert(vec![Value::Int(1)]);
        assert_eq!(rel.select_indices(&[Some(Value::Int(1))]).len(), 1);
        rel.insert(vec![Value::Int(1), Value::Int(2)]); // different arity row ignored by index probe
        rel.insert(vec![Value::Int(1)]); // duplicate
        let mut rel2 = Relation::default();
        rel2.insert(vec![Value::Int(1)]);
        assert_eq!(rel2.select_indices(&[Some(Value::Int(1))]).len(), 1);
        rel2.insert(vec![Value::Int(2)]);
        rel2.insert(vec![Value::Int(1)]); // dup, not inserted
        assert_eq!(rel2.select_indices(&[Some(Value::Int(1))]).len(), 1);
        assert_eq!(rel2.select_indices(&[Some(Value::Int(2))]).len(), 1);
    }

    #[test]
    fn fresh_nulls_never_collide_with_inserted() {
        let mut db = Database::new();
        db.insert("p", vec![Value::Null(41)]);
        let n = db.fresh_null();
        assert_eq!(n, Value::Null(42));
    }

    #[test]
    fn substitute_null_rewrites_composites() {
        let mut db = Database::new();
        db.insert(
            "t",
            vec![Value::set([Value::pair(Value::str("a"), Value::Null(7))])],
        );
        db.substitute_null(7, &Value::str("gone"));
        let rows = db.rows("t");
        let set = rows[0][0].as_set().unwrap();
        let pair = set.iter().next().unwrap().as_tuple().unwrap();
        assert_eq!(pair[1], Value::str("gone"));
    }

    #[test]
    fn substitution_can_merge_rows() {
        let mut db = Database::new();
        db.insert("p", vec![Value::Null(1), Value::Int(9)]);
        db.insert("p", vec![Value::Int(5), Value::Int(9)]);
        db.substitute_null(1, &Value::Int(5));
        assert_eq!(db.relation("p").unwrap().len(), 1);
    }
}
