//! Stratification of programs over negation and aggregation.
//!
//! We build a predicate dependency graph: an edge `p → q` whenever a rule
//! with `q` in the head uses `p` in the body. Edges through negation or
//! through an aggregate are *constraining*: they must not occur inside a
//! strongly connected component, otherwise the program has no stratified
//! model and we reject it with a diagnostic.
//!
//! EGDs participate too: an EGD constrains every predicate in its body,
//! and is applied at the end of the stratum containing the highest of them.

use crate::ast::{Head, Literal, Program, Rule};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

/// Intensional predicates of `program`: every predicate derived by a
/// rule head. Predicates that only appear in facts or bodies are
/// extensional (EDB) and need no magic restriction — the goal-directed
/// rewrite ([`crate::magic`]) uses this split to decide what can be
/// guarded at all.
pub fn idb_predicates(program: &Program) -> BTreeSet<String> {
    let mut idb = BTreeSet::new();
    for rule in &program.rules {
        for p in rule.head_preds() {
            idb.insert(p.to_string());
        }
    }
    idb
}

/// Stratification failure: a negation/aggregation inside a recursive cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StratifyError {
    /// Human-readable cycle description.
    pub message: String,
}

impl fmt::Display for StratifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stratification error: {}", self.message)
    }
}

impl std::error::Error for StratifyError {}

/// The result of stratification: rules grouped into strata, bottom-up.
#[derive(Debug, Clone)]
pub struct Stratification {
    /// For each stratum (in evaluation order), the indices of the rules of
    /// the original program that belong to it.
    pub strata: Vec<Vec<usize>>,
    /// Stratum assigned to each predicate (predicates only in facts get 0).
    pub pred_stratum: HashMap<String, usize>,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum EdgeKind {
    Positive,
    Constraining, // negation or aggregation input
}

/// Compute a stratification of `program`, or explain why none exists.
pub fn stratify(program: &Program) -> Result<Stratification, StratifyError> {
    // Collect all predicates.
    let mut preds: HashSet<String> = HashSet::new();
    for f in &program.facts {
        preds.insert(f.pred.clone());
    }
    for r in &program.rules {
        for p in r.head_preds() {
            preds.insert(p.to_string());
        }
        for (p, _) in r.body_preds() {
            preds.insert(p.to_string());
        }
    }

    // Build edges body-pred -> head-pred.
    // A rule with an aggregate makes *all* its body edges constraining:
    // the aggregate value is only correct once its inputs are complete.
    let mut edges: Vec<(String, String, EdgeKind)> = Vec::new();
    for r in &program.rules {
        let heads: Vec<String> = match &r.head {
            Head::Atoms(atoms) => atoms.iter().map(|a| a.pred.clone()).collect(),
            // EGDs rewrite facts of their body predicates; model as
            // self-dependencies so they stay within one stratum.
            Head::Equality(_, _) => r
                .body
                .iter()
                .filter_map(|l| match l {
                    Literal::Pos(a) => Some(a.pred.clone()),
                    _ => None,
                })
                .collect(),
        };
        let has_agg = r.has_aggregate();
        for lit in &r.body {
            let (pred, kind) = match lit {
                Literal::Pos(a) => (
                    a.pred.clone(),
                    if has_agg {
                        EdgeKind::Constraining
                    } else {
                        EdgeKind::Positive
                    },
                ),
                Literal::Neg(a) => (a.pred.clone(), EdgeKind::Constraining),
                _ => continue,
            };
            for h in &heads {
                edges.push((pred.clone(), h.clone(), kind));
            }
        }
    }

    // Iteratively assign strata: stratum(h) >= stratum(b) for positive,
    // stratum(h) >= stratum(b) + 1 for constraining edges.
    let mut stratum: HashMap<String, usize> = preds.iter().map(|p| (p.clone(), 0usize)).collect();
    let n = preds.len().max(1);
    let mut changed = true;
    let mut iters = 0usize;
    while changed {
        changed = false;
        iters += 1;
        if iters > n + 1 {
            // A constraining edge lies on a cycle.
            let culprit = find_constraining_cycle(&edges);
            return Err(StratifyError {
                message: match culprit {
                    Some((a, b)) => format!(
                        "negation/aggregation between '{a}' and '{b}' occurs in a recursive cycle"
                    ),
                    None => "program is not stratifiable".to_string(),
                },
            });
        }
        for (b, h, kind) in &edges {
            let sb = stratum[b];
            let need = match kind {
                EdgeKind::Positive => sb,
                EdgeKind::Constraining => sb + 1,
            };
            let sh = stratum.get_mut(h).expect("head predicate registered");
            if *sh < need {
                *sh = need;
                changed = true;
            }
        }
    }

    // Assign rules to strata: a rule goes to the stratum of its head
    // (max over heads); EGDs go to the max stratum of their body preds.
    let max_stratum = stratum.values().copied().max().unwrap_or(0);
    let mut strata: Vec<Vec<usize>> = vec![Vec::new(); max_stratum + 1];
    for (i, r) in program.rules.iter().enumerate() {
        let s = match &r.head {
            Head::Atoms(atoms) => atoms
                .iter()
                .map(|a| stratum.get(&a.pred).copied().unwrap_or(0))
                .max()
                .unwrap_or(0),
            Head::Equality(_, _) => r
                .body
                .iter()
                .filter_map(|l| match l {
                    Literal::Pos(a) => stratum.get(&a.pred).copied(),
                    _ => None,
                })
                .max()
                .unwrap_or(0),
        };
        strata[s].push(i);
    }

    Ok(Stratification {
        strata,
        pred_stratum: stratum,
    })
}

/// Find a constraining edge that participates in a cycle, for diagnostics.
fn find_constraining_cycle(edges: &[(String, String, EdgeKind)]) -> Option<(String, String)> {
    // adjacency over all edges
    let mut adj: HashMap<&str, Vec<&str>> = HashMap::new();
    for (b, h, _) in edges {
        adj.entry(b.as_str()).or_default().push(h.as_str());
    }
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen = HashSet::new();
        let mut stack = vec![from];
        while let Some(cur) = stack.pop() {
            if cur == to {
                return true;
            }
            if seen.insert(cur) {
                if let Some(next) = adj.get(cur) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    };
    for (b, h, kind) in edges {
        if *kind == EdgeKind::Constraining && reaches(h.as_str(), b.as_str()) {
            return Some((b.clone(), h.clone()));
        }
    }
    None
}

/// Safety check: every head variable of a rule must be bound by the body
/// (or be existential), every negated / condition variable must be bound by
/// the time it is evaluated. Returns a description of the first violation.
pub fn check_safety(rule: &Rule) -> Result<(), String> {
    let mut bound: HashSet<String> = HashSet::new();
    for (i, lit) in rule.body.iter().enumerate() {
        match lit {
            Literal::Pos(_) => {}
            Literal::Neg(a) => {
                for v in a.vars() {
                    if !bound.contains(v) {
                        return Err(format!(
                            "variable {v} in negated atom {} (literal {i}) is not bound by a preceding positive literal",
                            a.pred
                        ));
                    }
                }
            }
            Literal::Cond(e) => {
                let mut vars = std::collections::BTreeSet::new();
                e.collect_vars(&mut vars);
                for v in vars {
                    if !bound.contains(&v) {
                        return Err(format!(
                            "variable {v} in condition (literal {i}) is not bound"
                        ));
                    }
                }
            }
            Literal::Let { expr, .. } => {
                let mut vars = std::collections::BTreeSet::new();
                expr.collect_vars(&mut vars);
                for v in vars {
                    if !bound.contains(&v) {
                        return Err(format!(
                            "variable {v} in assignment (literal {i}) is not bound"
                        ));
                    }
                }
            }
            Literal::Agg {
                arg, contributors, ..
            } => {
                let mut vars = std::collections::BTreeSet::new();
                arg.collect_vars(&mut vars);
                for c in contributors {
                    c.collect_vars(&mut vars);
                }
                for v in vars {
                    if !bound.contains(&v) {
                        return Err(format!(
                            "variable {v} in aggregate (literal {i}) is not bound"
                        ));
                    }
                }
            }
        }
        bound.extend(lit.bound_vars());
    }
    if let Head::Equality(a, b) = &rule.head {
        for t in [a, b] {
            if let Some(v) = t.as_var() {
                if !bound.contains(v) {
                    return Err(format!("EGD head variable {v} is not bound by the body"));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn plain_recursion_is_one_stratum() {
        let p = parse_program(
            "anc(X, Y) :- par(X, Y).\n\
             anc(X, Y) :- par(X, Z), anc(Z, Y).",
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.pred_stratum["anc"], s.pred_stratum["par"]);
    }

    #[test]
    fn negation_pushes_to_higher_stratum() {
        let p = parse_program(
            "reach(X) :- src(X).\n\
             reach(Y) :- reach(X), edge(X, Y).\n\
             unreach(X) :- node(X), not reach(X).",
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert!(s.pred_stratum["unreach"] > s.pred_stratum["reach"]);
    }

    #[test]
    fn negation_in_cycle_is_rejected() {
        let p = parse_program(
            "a(X) :- c(X), not b(X).\n\
             b(X) :- a(X).",
        )
        .unwrap();
        let err = stratify(&p).unwrap_err();
        assert!(err.message.contains("cycle"));
    }

    #[test]
    fn aggregate_input_must_be_complete() {
        let p = parse_program(
            "t(G, I, W) :- raw(G, I, W).\n\
             out(G, R) :- t(G, I, W), R = msum(W, <I>).",
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert!(s.pred_stratum["out"] > s.pred_stratum["t"]);
    }

    #[test]
    fn aggregate_through_recursion_rejected() {
        let p = parse_program("t(G, R) :- t(G, W), R = msum(W, <G>).").unwrap();
        assert!(stratify(&p).is_err());
    }

    #[test]
    fn safety_catches_unbound_negation() {
        let p = parse_program("bad(X) :- p(X), not q(Y).").unwrap();
        assert!(check_safety(&p.rules[0]).is_err());
        let p = parse_program("ok(X) :- p(X), not q(X).").unwrap();
        assert!(check_safety(&p.rules[0]).is_ok());
    }

    #[test]
    fn safety_catches_unbound_condition() {
        let p = parse_program("bad(X) :- p(X), Y > 2.").unwrap();
        assert!(check_safety(&p.rules[0]).is_err());
    }

    #[test]
    fn idb_split_separates_derived_from_extensional() {
        let p = parse_program(
            "e(1, 2).\n\
             path(X, Y) :- e(X, Y).\n\
             path(X, Z) :- e(X, Y), path(Y, Z).",
        )
        .unwrap();
        let idb = idb_predicates(&p);
        assert!(idb.contains("path"));
        assert!(!idb.contains("e"));
    }

    #[test]
    fn strata_cover_all_rules() {
        let p = parse_program(
            "a(X) :- b(X).\n\
             c(X) :- a(X), not d(X).\n\
             e(X) :- c(X).",
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        let total: usize = s.strata.iter().map(|v| v.len()).sum();
        assert_eq!(total, 3);
    }
}
