//! Ground values manipulated by the engine.
//!
//! Values form a total order (needed for deterministic iteration, set values
//! and aggregate tie-breaking) and are hashable. Floats are ordered with
//! [`f64::total_cmp`] and hashed by bit pattern, so `NaN` is a legitimate —
//! if unusual — value rather than a panic source.

use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Identifier of a labelled null (`⊥_n`), the engine-invented witnesses for
/// existentially quantified head variables. Two nulls are interchangeable iff
/// they carry the same label.
pub type NullId = u64;

/// A ground value: constant, labelled null, or a composite (set / tuple).
///
/// Composites are reference-counted so that facts carrying large `VSet`
/// collections (as in the Vada-SA encodings) can be copied cheaply.
#[derive(Debug, Clone)]
pub enum Value {
    /// Boolean constant.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// Double-precision float, totally ordered via `total_cmp`.
    Float(f64),
    /// Interned-ish string (shared, immutable).
    Str(Arc<str>),
    /// Labelled null `⊥_id`.
    Null(NullId),
    /// A set of values (deterministically ordered).
    Set(Arc<BTreeSet<Value>>),
    /// A fixed-arity tuple of values, e.g. an attribute-value pair.
    Tuple(Arc<Vec<Value>>),
}

impl Value {
    /// Convenience constructor for string values. The string is routed
    /// through the global interner ([`mod@crate::intern`]), so equal strings
    /// share one allocation and comparisons hit the pointer fast path.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(crate::intern::intern(s.as_ref()))
    }

    /// String constructor that bypasses the interner. Use for strings that
    /// are known to be transient or unbounded in variety (interned entries
    /// live for the process lifetime, up to the interner's capacity cap).
    pub fn str_uninterned(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Convenience constructor for a pair `(a, b)`.
    pub fn pair(a: Value, b: Value) -> Self {
        Value::Tuple(Arc::new(vec![a, b]))
    }

    /// Convenience constructor for a set value.
    pub fn set(items: impl IntoIterator<Item = Value>) -> Self {
        Value::Set(Arc::new(items.into_iter().collect()))
    }

    /// Is this value a labelled null?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null(_))
    }

    /// Numeric view of the value, if it is `Int` or `Float`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// String view, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Truthiness for use in rule conditions: only `Bool(true)` is true.
    pub fn is_true(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// Set view, if this is a `Set`.
    pub fn as_set(&self) -> Option<&BTreeSet<Value>> {
        match self {
            Value::Set(s) => Some(s),
            _ => None,
        }
    }

    /// Tuple view, if this is a `Tuple`.
    pub fn as_tuple(&self) -> Option<&[Value]> {
        match self {
            Value::Tuple(t) => Some(t),
            _ => None,
        }
    }

    /// Discriminant rank used to order values of different kinds.
    fn kind_rank(&self) -> u8 {
        match self {
            Value::Bool(_) => 0,
            Value::Int(_) => 1,
            Value::Float(_) => 1, // numbers compare with each other
            Value::Str(_) => 2,
            Value::Null(_) => 3,
            Value::Set(_) => 4,
            Value::Tuple(_) => 5,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            // Interned strings (and shared composites) alias: a pointer
            // match decides equality without touching the bytes.
            (Str(a), Str(b)) => {
                if Arc::ptr_eq(a, b) {
                    Ordering::Equal
                } else {
                    a.cmp(b)
                }
            }
            (Null(a), Null(b)) => a.cmp(b),
            (Set(a), Set(b)) => {
                if Arc::ptr_eq(a, b) {
                    Ordering::Equal
                } else {
                    a.cmp(b)
                }
            }
            (Tuple(a), Tuple(b)) => {
                if Arc::ptr_eq(a, b) {
                    Ordering::Equal
                } else {
                    a.cmp(b)
                }
            }
            _ => self.kind_rank().cmp(&other.kind_rank()),
        }
    }
}
impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Bool(b) => {
                0u8.hash(state);
                b.hash(state);
            }
            // Int and Float that compare equal must hash equal: hash every
            // number through the f64 bit pattern of its canonical form when
            // it is integral, otherwise the raw bits.
            Value::Int(i) => {
                1u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                1u8.hash(state);
                if f.fract() == 0.0
                    && f.is_finite()
                    && *f >= i64::MIN as f64
                    && *f <= i64::MAX as f64
                {
                    (*f).to_bits().hash(state);
                } else {
                    f.to_bits().hash(state);
                }
            }
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            Value::Null(n) => {
                3u8.hash(state);
                n.hash(state);
            }
            Value::Set(s) => {
                4u8.hash(state);
                for v in s.iter() {
                    v.hash(state);
                }
            }
            Value::Tuple(t) => {
                5u8.hash(state);
                for v in t.iter() {
                    v.hash(state);
                }
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Null(n) => write!(f, "⊥{n}"),
            Value::Set(s) => {
                write!(f, "{{")?;
                for (i, v) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            Value::Tuple(t) => {
                write!(f, "(")?;
                for (i, v) in t.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_float_equality_is_consistent_with_hash() {
        let a = Value::Int(42);
        let b = Value::Float(42.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn ordering_is_total_across_kinds() {
        let vs = vec![
            Value::Bool(false),
            Value::Int(1),
            Value::Float(1.5),
            Value::str("a"),
            Value::Null(0),
            Value::set([Value::Int(1)]),
            Value::pair(Value::Int(1), Value::Int(2)),
        ];
        for a in &vs {
            for b in &vs {
                // must not panic and must be antisymmetric
                let ab = a.cmp(b);
                let ba = b.cmp(a);
                assert_eq!(ab, ba.reverse());
            }
        }
    }

    #[test]
    fn nulls_with_distinct_labels_differ() {
        assert_ne!(Value::Null(1), Value::Null(2));
        assert_eq!(Value::Null(7), Value::Null(7));
    }

    #[test]
    fn set_value_deduplicates() {
        let s = Value::set([Value::Int(1), Value::Int(1), Value::Int(2)]);
        assert_eq!(s.as_set().unwrap().len(), 2);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Value::str("x").to_string(), "\"x\"");
        assert_eq!(Value::Null(3).to_string(), "⊥3");
        assert_eq!(
            Value::pair(Value::Int(1), Value::str("a")).to_string(),
            "(1, \"a\")"
        );
    }

    #[test]
    fn nan_is_ordered_not_panicking() {
        let nan = Value::Float(f64::NAN);
        let one = Value::Float(1.0);
        // total_cmp places NaN after all numbers; just ensure consistency.
        assert_eq!(nan.cmp(&one), one.cmp(&nan).reverse());
        assert_eq!(nan, nan.clone());
    }
}
