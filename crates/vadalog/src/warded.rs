//! Wardedness analysis for Datalog± programs.
//!
//! Warded Datalog± (the core of Vadalog) restricts how labelled nulls may
//! propagate through rules so that the chase terminates and reasoning is
//! PTIME in data complexity. The analysis here follows the standard
//! construction:
//!
//! 1. Compute the set of **affected positions** `aff(P[i])`: positions that
//!    may host labelled nulls. A position is affected if an existential
//!    variable appears there in some rule head, or if a *harmful* body
//!    variable (one appearing **only** in affected positions) propagates
//!    into it through a rule.
//! 2. A body variable is **harmless** if it occurs in at least one
//!    non-affected position, **harmful** otherwise, and **dangerous** if it
//!    is harmful *and* appears in the head.
//! 3. A rule is **warded** if all its dangerous variables appear together in
//!    a single body atom (the *ward*) that shares only harmless variables
//!    with the rest of the body.
//!
//! The check is a diagnostic: the engine still evaluates non-warded
//! programs (with a chase-depth guard), but `analyze` lets callers assert
//! that the programs they ship — e.g. the Vada-SA rule sets — stay inside
//! the tractable fragment.

use crate::ast::{Head, Literal, Program};
use std::collections::{HashMap, HashSet};

/// A predicate position `P[i]`.
pub type Position = (String, usize);

/// Result of the wardedness analysis.
#[derive(Debug, Clone)]
pub struct WardedReport {
    /// Positions that may carry labelled nulls.
    pub affected: HashSet<Position>,
    /// Rules (by index) that violate wardedness, with an explanation.
    pub violations: Vec<(usize, String)>,
}

impl WardedReport {
    /// True if every rule is warded.
    pub fn is_warded(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Compute affected positions and check every rule for wardedness.
pub fn analyze(program: &Program) -> WardedReport {
    let affected = affected_positions(program);
    let mut violations = Vec::new();

    for (idx, rule) in program.rules.iter().enumerate() {
        let Head::Atoms(head_atoms) = &rule.head else {
            continue; // EGDs have no existential propagation
        };
        let ex = rule.existential_vars();

        // Positions of each body variable (only positive atoms can bind).
        let mut var_positions: HashMap<&str, Vec<Position>> = HashMap::new();
        for lit in &rule.body {
            if let Literal::Pos(a) = lit {
                for (i, t) in a.args.iter().enumerate() {
                    if let Some(v) = t.as_var() {
                        var_positions
                            .entry(v)
                            .or_default()
                            .push((a.pred.clone(), i));
                    }
                }
            }
        }

        // Head variables (universally quantified ones).
        let mut head_vars: HashSet<&str> = HashSet::new();
        for a in head_atoms {
            for v in a.vars() {
                if !ex.contains(v) {
                    head_vars.insert(v);
                }
            }
        }

        // Harmful: occurs only in affected positions. Dangerous: harmful + in head.
        let mut dangerous: Vec<&str> = Vec::new();
        let mut harmless: HashSet<&str> = HashSet::new();
        for (v, positions) in &var_positions {
            let harmful = !positions.is_empty() && positions.iter().all(|p| affected.contains(p));
            if harmful {
                if head_vars.contains(v) {
                    dangerous.push(v);
                }
            } else {
                harmless.insert(v);
            }
        }

        if dangerous.is_empty() {
            continue;
        }

        // All dangerous variables must co-occur in one body atom (the ward)
        // that shares only harmless variables with the rest of the body.
        let mut found_ward = false;
        let pos_atoms: Vec<&crate::ast::Atom> = rule
            .body
            .iter()
            .filter_map(|l| match l {
                Literal::Pos(a) => Some(a),
                _ => None,
            })
            .collect();
        'atoms: for (ai, atom) in pos_atoms.iter().enumerate() {
            let atom_vars: HashSet<&str> = atom.vars().collect();
            if !dangerous.iter().all(|d| atom_vars.contains(d)) {
                continue;
            }
            // shared variables with other atoms must be harmless
            for (bi, other) in pos_atoms.iter().enumerate() {
                if ai == bi {
                    continue;
                }
                for v in other.vars() {
                    if atom_vars.contains(v) && !harmless.contains(v) {
                        continue 'atoms;
                    }
                }
            }
            found_ward = true;
            break;
        }

        if !found_ward {
            violations.push((
                idx,
                format!(
                    "dangerous variables [{}] are not confined to a single ward atom",
                    dangerous.join(", ")
                ),
            ));
        }
    }

    WardedReport {
        affected,
        violations,
    }
}

/// Fixpoint computation of affected positions.
fn affected_positions(program: &Program) -> HashSet<Position> {
    let mut affected: HashSet<Position> = HashSet::new();

    // Base: positions of existential head variables.
    for rule in &program.rules {
        if let Head::Atoms(atoms) = &rule.head {
            let ex = rule.existential_vars();
            for a in atoms {
                for (i, t) in a.args.iter().enumerate() {
                    if let Some(v) = t.as_var() {
                        if ex.contains(v) {
                            affected.insert((a.pred.clone(), i));
                        }
                    }
                }
            }
        }
    }

    // Propagation: if a body variable occurs only in affected positions,
    // its head positions become affected.
    let mut changed = true;
    while changed {
        changed = false;
        for rule in &program.rules {
            let Head::Atoms(atoms) = &rule.head else {
                continue;
            };
            let ex = rule.existential_vars();

            let mut var_positions: HashMap<&str, Vec<Position>> = HashMap::new();
            for lit in &rule.body {
                if let Literal::Pos(a) = lit {
                    for (i, t) in a.args.iter().enumerate() {
                        if let Some(v) = t.as_var() {
                            var_positions
                                .entry(v)
                                .or_default()
                                .push((a.pred.clone(), i));
                        }
                    }
                }
            }

            for a in atoms {
                for (i, t) in a.args.iter().enumerate() {
                    let Some(v) = t.as_var() else { continue };
                    if ex.contains(v) {
                        continue;
                    }
                    let Some(positions) = var_positions.get(v) else {
                        continue;
                    };
                    let harmful =
                        !positions.is_empty() && positions.iter().all(|p| affected.contains(p));
                    if harmful && affected.insert((a.pred.clone(), i)) {
                        changed = true;
                    }
                }
            }
        }
    }

    affected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn no_existentials_means_warded() {
        let p = parse_program(
            "anc(X, Y) :- par(X, Y).\n\
             anc(X, Y) :- par(X, Z), anc(Z, Y).",
        )
        .unwrap();
        let rep = analyze(&p);
        assert!(rep.is_warded());
        assert!(rep.affected.is_empty());
    }

    #[test]
    fn existential_position_is_affected() {
        let p = parse_program("person(Y) :- person(X).").unwrap();
        // Y is existential: person[0] is affected
        let rep = analyze(&p);
        assert!(rep.affected.contains(&("person".to_string(), 0)));
        // and the rule is warded (no dangerous vars: X is harmful only if
        // person[0] is affected — it is — but X does not appear in the head).
        assert!(rep.is_warded());
    }

    #[test]
    fn propagating_null_through_single_atom_is_warded() {
        // classic warded example: the null flows but stays confined to one atom
        let p = parse_program(
            "p(X, Y) :- q(X).\n\
             q(Y) :- p(X, Y).",
        )
        .unwrap();
        let rep = analyze(&p);
        assert!(rep.is_warded(), "violations: {:?}", rep.violations);
    }

    #[test]
    fn dangerous_join_across_atoms_is_flagged() {
        // Y may carry a null in both p[1] and s[0] (the second rule
        // propagates it), so in the third rule Y is dangerous and joins
        // across two body atoms — not warded.
        let p = parse_program(
            "p(X, Y) :- q(X).\n\
             s(Y, Y2) :- p(X, Y).\n\
             r(Y) :- p(X, Y), s(Y, Z).",
        )
        .unwrap();
        let rep = analyze(&p);
        assert!(rep.affected.contains(&("p".to_string(), 1)));
        assert!(rep.affected.contains(&("s".to_string(), 0)));
        assert!(
            !rep.is_warded(),
            "expected a violation, affected = {:?}",
            rep.affected
        );
    }

    #[test]
    fn vadasa_suda_combination_rules_are_warded() {
        // The existential-combination rules of Algorithm 6 (simplified):
        let p = parse_program(
            "comb(Z, I) :- tuplei(M, I, V).\n\
             isin(A, Z) :- comb(Z, I), tuplei(M, I, V), catq(M, A).",
        )
        .unwrap();
        let rep = analyze(&p);
        assert!(rep.is_warded(), "violations: {:?}", rep.violations);
    }
}
