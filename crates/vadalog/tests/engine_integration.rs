//! Engine integration tests: classic Datalog workloads, mutual and
//! non-linear recursion, negation stacks, every aggregate, and
//! chase/EGD interplay — exercised through the public parse-and-run API.

use vadalog::{parse_program, Database, Engine, EngineConfig, EngineError, Value};

fn run(src: &str) -> vadalog::ReasoningResult {
    Engine::new()
        .run(&parse_program(src).expect("parses"), Database::new())
        .expect("evaluates")
}

#[test]
fn same_generation() {
    // the classic: cousins at the same depth of a family tree
    let r = run("par(\"a1\", \"root\"). par(\"a2\", \"root\").\n\
         par(\"b1\", \"a1\"). par(\"b2\", \"a2\").\n\
         sg(X, X) :- par(X, P).\n\
         sg(X, X) :- par(C, X).\n\
         sg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP).");
    let sg = r.db.rows("sg");
    let has = |x: &str, y: &str| {
        sg.iter()
            .any(|row| row[0] == Value::str(x) && row[1] == Value::str(y))
    };
    assert!(has("a1", "a2"), "siblings are same-generation");
    assert!(has("b1", "b2"), "cousins are same-generation");
    assert!(!has("a1", "b1"), "different generations");
}

#[test]
fn non_linear_recursion() {
    // path via doubling: path(X,Y) :- path(X,Z), path(Z,Y)
    let mut src = String::new();
    for i in 0..32 {
        src.push_str(&format!("edge({}, {}).\n", i, i + 1));
    }
    src.push_str("path(X, Y) :- edge(X, Y).\npath(X, Y) :- path(X, Z), path(Z, Y).\n");
    let r = run(&src);
    assert_eq!(r.db.rows("path").len(), 32 * 33 / 2);
}

#[test]
fn mutual_recursion() {
    let r = run("num(0). succ(0, 1). succ(1, 2). succ(2, 3). succ(3, 4).\n\
         num(Y) :- num(X), succ(X, Y).\n\
         even(0).\n\
         odd(Y) :- even(X), succ(X, Y).\n\
         even(Y) :- odd(X), succ(X, Y).");
    let evens: Vec<Vec<Value>> = r.db.rows("even");
    let odds: Vec<Vec<Value>> = r.db.rows("odd");
    assert_eq!(evens.len(), 3); // 0, 2, 4
    assert_eq!(odds.len(), 2); // 1, 3
}

#[test]
fn layered_negation() {
    // three strata: reachable, blocked, and allowed = node ∖ blocked
    let r = run("node(1). node(2). node(3). node(4).\n\
         edge(1, 2). edge(2, 3).\n\
         reach(1).\n\
         reach(Y) :- reach(X), edge(X, Y).\n\
         unreach(X) :- node(X), not reach(X).\n\
         both(X) :- node(X), not unreach(X).");
    assert_eq!(r.db.rows("unreach").len(), 1); // node 4
    assert_eq!(r.db.rows("both").len(), 3); // 1, 2, 3
}

#[test]
fn all_aggregates_in_one_program() {
    let r = run("t(\"g\", 1, 10). t(\"g\", 2, 30). t(\"g\", 3, 20).\n\
         s(G, X) :- t(G, I, W), X = msum(W, <I>).\n\
         c(G, X) :- t(G, I, W), X = mcount(<I>).\n\
         mn(G, X) :- t(G, I, W), X = mmin(W, <I>).\n\
         mx(G, X) :- t(G, I, W), X = mmax(W, <I>).\n\
         u(G, X) :- t(G, I, W), X = munion(W, <W>).");
    assert_eq!(r.db.rows("s")[0][1], Value::Int(60));
    assert_eq!(r.db.rows("c")[0][1], Value::Int(3));
    assert_eq!(r.db.rows("mn")[0][1], Value::Int(10));
    assert_eq!(r.db.rows("mx")[0][1], Value::Int(30));
    assert_eq!(r.db.rows("u")[0][1].as_set().unwrap().len(), 3);
}

#[test]
fn mprod_risk_combination() {
    // the Algorithm 9 flavour: cluster risk 1 - ∏(1 - ρ)
    let r = run(
        "risk(\"c1\", \"e1\", 0.5). risk(\"c1\", \"e2\", 0.5). risk(\"c2\", \"e3\", 0.1).\n\
         safe(C, P) :- risk(C, E, R), S = 1.0 - R, P = mprod(S, <E>).\n\
         cluster(C, R) :- safe(C, P), R = 1.0 - P.",
    );
    let rows = r.db.rows("cluster");
    let of = |c: &str| {
        rows.iter()
            .find(|row| row[0] == Value::str(c))
            .and_then(|row| row[1].as_f64())
            .unwrap()
    };
    assert!((of("c1") - 0.75).abs() < 1e-9);
    assert!((of("c2") - 0.1).abs() < 1e-9);
}

#[test]
fn chase_feeds_recursion() {
    // nulls created by existentials participate in later joins
    let r = run("emp(\"ann\"). emp(\"bob\").\n\
         dept(E, D) :- emp(E).\n\
         hasdept(D) :- dept(E, D).\n\
         colleagues(E1, E2) :- dept(E1, D), dept(E2, D), E1 != E2.");
    assert_eq!(r.db.rows("hasdept").len(), 2);
    // each employee got a distinct department null → no colleagues
    assert_eq!(r.db.rows("colleagues").len(), 0);
}

#[test]
fn egd_merges_departments_enabling_joins() {
    // same as above, but an EGD declares the company has one department
    let r = run("emp(\"ann\"). emp(\"bob\").\n\
         dept(E, D) :- emp(E).\n\
         D1 = D2 :- dept(E1, D1), dept(E2, D2).\n\
         colleagues(E1, E2) :- dept(E1, D), dept(E2, D), E1 != E2.");
    assert_eq!(
        r.db.rows("colleagues").len(),
        2,
        "after unification ann and bob share the department"
    );
    assert!(r.stats.unifications >= 1);
}

#[test]
fn set_and_pair_machinery() {
    let r = run("item(\"a\", 1). item(\"b\", 2). item(\"c\", 3).\n\
         bag(S) :- item(K, V), S = munion(pair(K, V), <K>).\n\
         picked(V) :- bag(S), V = S[\"b\"].\n\
         ks(K2) :- bag(S), K2 = size(keys(S)).");
    assert_eq!(r.db.rows("picked")[0][0], Value::Int(2));
    assert_eq!(r.db.rows("ks")[0][0], Value::Int(3));
}

#[test]
fn arithmetic_and_case_pipeline() {
    let r = run("reading(1, 5). reading(2, 50). reading(3, 500).\n\
         scaled(I, S) :- reading(I, V), S = V * 2 + 1.\n\
         flagged(I, F) :- scaled(I, S), F = case S > 100 then \"high\" else \"low\".");
    let rows = r.db.rows("flagged");
    let of = |i: i64| {
        rows.iter()
            .find(|row| row[0] == Value::Int(i))
            .map(|row| row[1].clone())
            .unwrap()
    };
    assert_eq!(of(1), Value::str("low"));
    assert_eq!(of(3), Value::str("high"));
}

#[test]
fn facts_survive_and_merge_across_inputs() {
    // facts from the Database input and from the program text co-exist
    let program = parse_program(
        "base(\"from-text\").\n\
         all(X) :- base(X).",
    )
    .unwrap();
    let mut db = Database::new();
    db.insert("base", vec![Value::str("from-db")]);
    let r = Engine::new().run(&program, db).unwrap();
    assert_eq!(r.db.rows("all").len(), 2);
}

#[test]
fn resource_guard_stops_fact_explosions() {
    let program = parse_program(
        "n(0). n(1). n(2). n(3). n(4). n(5). n(6). n(7). n(8). n(9).\n\
         t(A, B, C, D, E) :- n(A), n(B), n(C), n(D), n(E).",
    )
    .unwrap();
    let engine = Engine::with_config(EngineConfig {
        max_facts: 1_000,
        ..Default::default()
    });
    match engine.run(&program, Database::new()) {
        Err(EngineError::ResourceLimit {
            facts_so_far,
            limit: 1_000,
            ..
        }) => {
            assert!(facts_so_far > 1_000);
        }
        other => panic!("expected resource limit, got {other:?}"),
    }
}

#[test]
fn unsafe_rules_are_rejected_up_front() {
    let program = parse_program("h(X, Y) :- p(X), Y > 3.").unwrap();
    match Engine::new().run(&program, Database::new()) {
        Err(EngineError::Unsafe { .. }) => {}
        other => panic!("expected safety rejection, got {other:?}"),
    }
}

#[test]
fn float_int_mixing_in_aggregates() {
    let r = run("t(\"g\", 1, 1). t(\"g\", 2, 0.5).\n\
         s(G, X) :- t(G, I, W), X = msum(W, <I>).");
    assert_eq!(r.db.rows("s")[0][1], Value::Float(1.5));
}

#[test]
fn deterministic_across_runs() {
    let src = "edge(1, 2). edge(2, 3). edge(1, 3).\n\
               w(X, Y, C) :- edge(X, Y), C = mcount(<Y>).\n\
               p(X, Y) :- edge(X, Y).\n\
               p(X, Y) :- edge(X, Z), p(Z, Y).";
    let mut outputs = Vec::new();
    for _ in 0..3 {
        let r = run(src);
        let mut rows = r.db.rows("p");
        rows.sort();
        outputs.push(rows);
    }
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[1], outputs[2]);
}
