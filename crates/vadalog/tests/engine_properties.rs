//! Property-based engine tests: the fixpoint results are compared against
//! straightforward reference implementations (reachability via iterative
//! closure, aggregation via fold), and structural invariants (printer
//! round-trips, delta vs naive equivalence, EGD idempotence) are checked
//! on randomized inputs.

use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use vadalog::{parse_program, print_program, Database, Engine, Value};

fn edges_strategy() -> impl Strategy<Value = Vec<(u8, u8)>> {
    proptest::collection::vec((0u8..7, 0u8..7), 0..20)
}

/// Reference reachability (non-reflexive unless on a cycle).
fn reference_closure(edges: &[(u8, u8)]) -> HashSet<(u8, u8)> {
    let mut reach: HashSet<(u8, u8)> = edges.iter().copied().collect();
    loop {
        let mut grew = false;
        let snapshot: Vec<(u8, u8)> = reach.iter().copied().collect();
        for &(a, b) in &snapshot {
            for &(c, d) in &snapshot {
                if b == c && reach.insert((a, d)) {
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }
    reach
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Transitive closure agrees with the quadratic reference.
    #[test]
    fn closure_matches_reference(edges in edges_strategy()) {
        let program = parse_program(
            "path(X, Y) :- edge(X, Y).\n\
             path(X, Y) :- edge(X, Z), path(Z, Y).",
        ).unwrap();
        let mut db = Database::new();
        for (a, b) in &edges {
            db.insert("edge", vec![Value::Int(*a as i64), Value::Int(*b as i64)]);
        }
        let result = Engine::new().run(&program, db).unwrap();
        let engine_paths: HashSet<(u8, u8)> = result
            .db
            .rows("path")
            .into_iter()
            .map(|r| match (&r[0], &r[1]) {
                (Value::Int(a), Value::Int(b)) => (*a as u8, *b as u8),
                _ => unreachable!(),
            })
            .collect();
        prop_assert_eq!(engine_paths, reference_closure(&edges));
    }

    /// msum / mcount / mmax agree with direct folds (per distinct
    /// contributor, keeping the extremal contribution).
    #[test]
    fn aggregates_match_reference(rows in proptest::collection::vec((0u8..4, 0u8..6, 1i64..100), 1..40)) {
        let program = parse_program(
            "s(G, X) :- t(G, I, W), X = msum(W, <I>).\n\
             c(G, X) :- t(G, I, W), X = mcount(<I>).\n\
             m(G, X) :- t(G, I, W), X = mmax(W, <I>).",
        ).unwrap();
        let mut db = Database::new();
        for (g, i, w) in &rows {
            db.insert("t", vec![Value::Int(*g as i64), Value::Int(*i as i64), Value::Int(*w)]);
        }
        let result = Engine::new().run(&program, db).unwrap();

        // reference: per group, per contributor keep max w; then fold
        let mut per_group: HashMap<i64, HashMap<i64, i64>> = HashMap::new();
        for (g, i, w) in &rows {
            let slot = per_group.entry(*g as i64).or_default().entry(*i as i64).or_insert(i64::MIN);
            *slot = (*slot).max(*w);
        }
        for (g, contribs) in &per_group {
            let expect_sum: i64 = contribs.values().sum();
            let expect_count = contribs.len() as i64;
            let expect_max = *contribs.values().max().unwrap();
            let find = |pred: &str| -> Value {
                result.db.rows(pred).into_iter()
                    .find(|r| r[0] == Value::Int(*g))
                    .map(|r| r[1].clone())
                    .unwrap()
            };
            prop_assert_eq!(find("s"), Value::Int(expect_sum));
            prop_assert_eq!(find("c"), Value::Int(expect_count));
            prop_assert_eq!(find("m"), Value::Int(expect_max));
        }
    }

    /// Parse ∘ print is the identity on randomly shaped fact/rule programs.
    #[test]
    fn printer_roundtrip_on_random_facts(
        facts in proptest::collection::vec((0u8..5, -50i64..50), 0..25),
        use_neg in proptest::bool::ANY,
    ) {
        let mut src = String::new();
        for (p, v) in &facts {
            src.push_str(&format!("p{p}({v}).\n"));
        }
        src.push_str("out(X) :- p0(X), X > -10.\n");
        if use_neg {
            src.push_str("only(X) :- p1(X), not p2(X).\n");
        }
        let p1 = parse_program(&src).unwrap();
        let p2 = parse_program(&print_program(&p1)).unwrap();
        prop_assert_eq!(p1, p2);
    }

    /// Running a program twice over its own output database is idempotent
    /// (the fixpoint is saturated).
    #[test]
    fn evaluation_is_idempotent(edges in edges_strategy()) {
        let program = parse_program(
            "path(X, Y) :- edge(X, Y).\n\
             path(X, Y) :- edge(X, Z), path(Z, Y).",
        ).unwrap();
        let mut db = Database::new();
        for (a, b) in &edges {
            db.insert("edge", vec![Value::Int(*a as i64), Value::Int(*b as i64)]);
        }
        let first = Engine::new().run(&program, db).unwrap();
        let before = first.db.total_facts();
        let second = Engine::new().run(&program, first.db).unwrap();
        prop_assert_eq!(second.db.total_facts(), before);
        prop_assert_eq!(second.stats.facts_derived, 0);
    }

    /// Stratified negation: complement sizes add up.
    #[test]
    fn negation_partitions_the_domain(nodes in proptest::collection::btree_set(0u8..10, 1..10),
                                      sources in proptest::collection::btree_set(0u8..10, 0..3),
                                      edges in edges_strategy()) {
        let mut src = String::new();
        for n in &nodes {
            src.push_str(&format!("node({n}).\n"));
        }
        for s in sources.iter().filter(|s| nodes.contains(s)) {
            src.push_str(&format!("src({s}).\n"));
        }
        for (a, b) in edges.iter().filter(|(a, b)| nodes.contains(a) && nodes.contains(b)) {
            src.push_str(&format!("edge({a}, {b}).\n"));
        }
        src.push_str(
            "reach(X) :- src(X).\n\
             reach(Y) :- reach(X), edge(X, Y).\n\
             unreach(X) :- node(X), not reach(X).\n\
             reachnode(X) :- node(X), reach(X).\n",
        );
        let r = Engine::new().run(&parse_program(&src).unwrap(), Database::new()).unwrap();
        let reach_nodes = r.db.rows("reachnode").len();
        let unreach = r.db.rows("unreach").len();
        prop_assert_eq!(reach_nodes + unreach, nodes.len());
    }
}

#[test]
fn egd_unification_is_idempotent() {
    // after a run with EGDs, re-running performs no further unifications
    let program = parse_program(
        "person(\"ann\"). person(\"bob\").\n\
         a(P, T) :- person(P).\n\
         b(P, T) :- person(P).\n\
         T1 = T2 :- a(P, T1), b(P, T2).",
    )
    .unwrap();
    let first = Engine::new().run(&program, Database::new()).unwrap();
    assert!(first.stats.unifications >= 2);
    let second = Engine::new().run(&program, first.db).unwrap();
    assert_eq!(second.stats.unifications, 0);
    assert_eq!(second.stats.facts_derived, 0);
}
