//! Equivalence suite for the planned / indexed / parallel join core.
//!
//! The optimized executor ([`JoinMode::Indexed`], possibly with
//! `threads > 1`) is a pure evaluation-strategy change: it must derive
//! *exactly* the same fact set, with the same [`Termination`], as the
//! reference nested-loop evaluator ([`JoinMode::Reference`]) on every
//! program. This suite generates random stratified programs — chain
//! joins over random EDBs, comparisons, `Let` bindings, recursion,
//! stratified negation and monotonic aggregation — and checks the three
//! configurations pairwise on each.
//!
//! Random cases deliberately avoid existentials: labelled-null *identity*
//! is mint-order dependent, so cross-strategy comparison of raw rows
//! would be flaky. Chase and EGD behaviour is instead covered by fixed
//! deterministic cases at the bottom, compared by shape (counts, nulls,
//! unifications) rather than by null IDs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};
use vadalog::{
    parse_program, Database, Engine, EngineConfig, JoinMode, ReasoningResult, Termination, Value,
};

/// Run `src` under the given join mode / thread count.
fn run(src: &str, join_mode: JoinMode, threads: usize) -> ReasoningResult {
    Engine::with_config(EngineConfig {
        join_mode,
        threads,
        ..EngineConfig::default()
    })
    .run(
        &parse_program(src).expect("generated program parses"),
        Database::new(),
    )
    .expect("generated program evaluates")
}

/// Canonical view of a result: every relation's rows as an ordered set.
fn fact_sets(r: &ReasoningResult) -> BTreeMap<String, BTreeSet<Vec<Value>>> {
    let mut out = BTreeMap::new();
    let names: Vec<String> = r.db.relation_names().map(str::to_string).collect();
    for name in names {
        out.insert(name.clone(), r.db.rows(&name).into_iter().collect());
    }
    out
}

/// Assert two runs are observably identical (facts + termination + stats).
fn assert_equivalent(label: &str, reference: &ReasoningResult, candidate: &ReasoningResult) {
    assert_eq!(
        fact_sets(reference),
        fact_sets(candidate),
        "{label}: derived fact sets differ"
    );
    assert_eq!(
        reference.termination, candidate.termination,
        "{label}: termination differs"
    );
    assert_eq!(
        reference.stats.facts_derived, candidate.stats.facts_derived,
        "{label}: facts_derived differs"
    );
}

/// Generate a random stratified program (facts + rules) as source text.
///
/// Shape: three binary EDB relations `e0..e2`; stratum-1 IDB predicates
/// `a0..a2` defined by random chain joins with optional comparison and
/// `Let` literals; a recursive closure `tc` over `a0` (forces multi-round
/// semi-naive deltas, exercising the delta-focused plans); a negation
/// rule over `tc` in a higher stratum; and, half the time, a monotonic
/// aggregate over `tc`.
fn random_program(rng: &mut StdRng) -> String {
    let mut src = String::new();
    let domain: i64 = rng.gen_range(3..8);

    for p in 0..3 {
        let n = rng.gen_range(2..12);
        for _ in 0..n {
            let a = rng.gen_range(0..domain);
            let b = rng.gen_range(0..domain);
            src.push_str(&format!("e{p}({a}, {b}).\n"));
        }
    }

    let vars = ["X", "Y", "Z", "W"];
    for p in 0..3 {
        for _ in 0..rng.gen_range(1..=2) {
            let len = rng.gen_range(2..=3);
            let mut body: Vec<String> = Vec::new();
            for s in 0..len {
                let e = rng.gen_range(0..3);
                body.push(format!("e{e}({}, {})", vars[s], vars[s + 1]));
            }
            if rng.gen_bool(0.4) {
                let op = if rng.gen_bool(0.5) { "<" } else { "!=" };
                body.push(format!("X {op} {}", rng.gen_range(0..domain)));
            }
            let head = if rng.gen_bool(0.3) {
                body.push(format!("S = X + {}", rng.gen_range(0..5)));
                format!("a{p}(S, {})", vars[len])
            } else {
                format!("a{p}(X, {})", vars[len])
            };
            src.push_str(&format!("{head} :- {}.\n", body.join(", ")));
        }
    }

    src.push_str("tc(X, Y) :- a0(X, Y).\n");
    src.push_str("tc(X, Z) :- a0(X, Y), tc(Y, Z).\n");
    src.push_str("only(X, Y) :- e0(X, Y), not tc(X, Y).\n");
    if rng.gen_bool(0.5) {
        src.push_str("cnt(X, C) :- tc(X, Y), C = mcount(<Y>).\n");
    }
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Indexed (1 and 4 threads) ≡ reference nested-loop on random
    /// stratified programs.
    #[test]
    fn indexed_and_parallel_match_reference(seed in 0u64..1_000_000) {
        let mut rng = <StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let src = random_program(&mut rng);
        let reference = run(&src, JoinMode::Reference, 1);
        prop_assert_eq!(&reference.termination, &Termination::Fixpoint);
        let indexed = run(&src, JoinMode::Indexed, 1);
        let parallel = run(&src, JoinMode::Indexed, 4);
        assert_equivalent("indexed/1", &reference, &indexed);
        assert_equivalent("indexed/4", &reference, &parallel);
    }

    /// The reference evaluator is also deterministic under threading: a
    /// parallel reference run (scans, no indexes) matches the sequential
    /// one — parallelism and indexing are independent switches.
    #[test]
    fn parallel_reference_matches_sequential(seed in 0u64..1_000_000) {
        let mut rng = <StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let src = random_program(&mut rng);
        let sequential = run(&src, JoinMode::Reference, 1);
        let threaded = run(&src, JoinMode::Reference, 4);
        assert_equivalent("reference/4", &sequential, &threaded);
    }
}

/// Existential chase: same *shape* (fact counts, nulls minted) across
/// strategies; null IDs themselves are not compared.
#[test]
fn chase_shape_matches_across_strategies() {
    let src = "emp(\"ann\"). emp(\"bob\"). emp(\"cyd\").\n\
               dept(E, D) :- emp(E).\n\
               head(D, H) :- dept(E, D).";
    let reference = run(src, JoinMode::Reference, 1);
    for (label, r) in [
        ("indexed/1", run(src, JoinMode::Indexed, 1)),
        ("indexed/4", run(src, JoinMode::Indexed, 4)),
    ] {
        assert_eq!(
            reference.db.rows("dept").len(),
            r.db.rows("dept").len(),
            "{label}: dept count"
        );
        assert_eq!(
            reference.db.rows("head").len(),
            r.db.rows("head").len(),
            "{label}: head count"
        );
        assert_eq!(
            reference.stats.nulls_created, r.stats.nulls_created,
            "{label}: nulls minted"
        );
        assert_eq!(reference.termination, r.termination, "{label}: termination");
    }
}

/// EGD unification: the same substitutions happen regardless of strategy.
#[test]
fn egd_shape_matches_across_strategies() {
    let src = "emp(\"ann\"). emp(\"bob\").\n\
               dept(E, D) :- emp(E).\n\
               D1 = D2 :- dept(E1, D1), dept(E2, D2).";
    let reference = run(src, JoinMode::Reference, 1);
    for (label, r) in [
        ("indexed/1", run(src, JoinMode::Indexed, 1)),
        ("indexed/4", run(src, JoinMode::Indexed, 4)),
    ] {
        assert_eq!(
            reference.stats.unifications, r.stats.unifications,
            "{label}: unifications"
        );
        // after unification both employees share one department null
        let depts: BTreeSet<Value> =
            r.db.rows("dept")
                .into_iter()
                .map(|row| row[1].clone())
                .collect();
        assert_eq!(depts.len(), 1, "{label}: departments not unified");
    }
}

/// Budgeted runs: a derived-fact cap must produce the same `Termination`
/// variant in every strategy (the partial prefixes may legitimately
/// differ, the stop classification may not).
#[test]
fn budget_termination_kind_matches() {
    let src = "e(1, 2). e(2, 3). e(3, 4). e(4, 1).\n\
               p(X, Y) :- e(X, Y).\n\
               p(X, Z) :- e(X, Y), p(Y, Z).";
    let budget = vadalog::Budget::unlimited().with_max_facts(5);
    let mut runs = Vec::new();
    for (label, join_mode, threads) in [
        ("reference/1", JoinMode::Reference, 1),
        ("indexed/1", JoinMode::Indexed, 1),
        ("indexed/4", JoinMode::Indexed, 4),
    ] {
        let r = Engine::with_config(EngineConfig {
            join_mode,
            threads,
            budget,
            ..EngineConfig::default()
        })
        .run(&parse_program(src).expect("parses"), Database::new())
        .expect("evaluates");
        assert!(
            matches!(
                r.termination,
                Termination::BudgetExceeded {
                    which: vadalog::BudgetKind::Facts,
                    ..
                }
            ),
            "{label}: expected fact-cap termination, got {:?}",
            r.termination
        );
        runs.push((label, r));
    }
    // The partial prefixes may differ (binding order depends on the join
    // strategy), but every prefix must be *sound*: a subset of the true
    // fixpoint.
    let fixpoint: BTreeSet<Vec<Value>> = run(src, JoinMode::Reference, 1)
        .db
        .rows("p")
        .into_iter()
        .collect();
    for (label, r) in &runs {
        for row in r.db.rows("p") {
            assert!(fixpoint.contains(&row), "{label}: unsound fact p{row:?}");
        }
    }
}
