//! Equivalence suite for goal-directed (magic-sets) evaluation.
//!
//! The magic rewrite ([`vadalog::magic`]) is an evaluation-strategy
//! change with a sliced contract: for every goal, the **goal slice** of
//! the goal-directed run (the goal predicate's rows filtered by the goal
//! constants, [`goal_slice`]) must equal the goal slice of the full
//! fixpoint — whether the rewrite applied, degenerated, or refused and
//! fell back. The unfiltered goal-pred relation of a magic run may be a
//! *superset* of the slice (magic sets widen transitively, e.g. over a
//! closure), which is why the comparison filters both sides.
//!
//! This suite generates random stratified programs — chain joins,
//! comparisons, `Let` bindings, recursion, stratified negation and
//! monotonic aggregation, the same family as `join_equivalence` — plus
//! random goals (bound, half-bound and unbound, on every stratum
//! including the negation and aggregate ones), and checks the contract
//! cold at 1 and 4 threads and warm through an [`EngineSession`] that
//! interleaves fact patches with goal queries.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeSet;
use vadalog::{
    goal_slice, parse_goal, parse_program, Atom, Database, Engine, EngineConfig, FactPatch,
    MagicOptions, Termination, Value,
};

/// Full (non-goal) run of `src` under the indexed join core.
fn run_full(src: &str, threads: usize) -> vadalog::ReasoningResult {
    Engine::with_config(EngineConfig {
        threads,
        ..EngineConfig::default()
    })
    .run(
        &parse_program(src).expect("generated program parses"),
        Database::new(),
    )
    .expect("generated program evaluates")
}

/// Goal-directed run of `src`.
fn run_goal(src: &str, goals: &[Atom], threads: usize, options: MagicOptions) -> vadalog::GoalRun {
    Engine::with_config(EngineConfig {
        threads,
        ..EngineConfig::default()
    })
    .run_with_goals(
        &parse_program(src).expect("generated program parses"),
        Database::new(),
        goals,
        options,
    )
    .expect("goal-directed run evaluates")
}

fn slice_set(db: &Database, goal: &Atom) -> BTreeSet<Vec<Value>> {
    goal_slice(db, goal).into_iter().collect()
}

/// Same generator family as `join_equivalence::random_program`: three
/// binary EDBs, chain-join IDBs, a recursive closure, a negation stratum
/// and (half the time) an aggregate stratum.
fn random_program(rng: &mut StdRng) -> (String, i64, bool) {
    let mut src = String::new();
    let domain: i64 = rng.gen_range(3..8);

    for p in 0..3 {
        let n = rng.gen_range(2..12);
        for _ in 0..n {
            let a = rng.gen_range(0..domain);
            let b = rng.gen_range(0..domain);
            src.push_str(&format!("e{p}({a}, {b}).\n"));
        }
    }

    let vars = ["X", "Y", "Z", "W"];
    for p in 0..3 {
        for _ in 0..rng.gen_range(1..=2) {
            let len = rng.gen_range(2..=3);
            let mut body: Vec<String> = Vec::new();
            for s in 0..len {
                let e = rng.gen_range(0..3);
                body.push(format!("e{e}({}, {})", vars[s], vars[s + 1]));
            }
            if rng.gen_bool(0.4) {
                let op = if rng.gen_bool(0.5) { "<" } else { "!=" };
                body.push(format!("X {op} {}", rng.gen_range(0..domain)));
            }
            let head = if rng.gen_bool(0.3) {
                body.push(format!("S = X + {}", rng.gen_range(0..5)));
                format!("a{p}(S, {})", vars[len])
            } else {
                format!("a{p}(X, {})", vars[len])
            };
            src.push_str(&format!("{head} :- {}.\n", body.join(", ")));
        }
    }

    src.push_str("tc(X, Y) :- a0(X, Y).\n");
    src.push_str("tc(X, Z) :- a0(X, Y), tc(Y, Z).\n");
    src.push_str("only(X, Y) :- e0(X, Y), not tc(X, Y).\n");
    let has_cnt = rng.gen_bool(0.5);
    if has_cnt {
        src.push_str("cnt(X, C) :- tc(X, Y), C = mcount(<Y>).\n");
    }
    (src, domain, has_cnt)
}

/// A random goal over the generated program's predicates: bound,
/// half-bound or unbound, deliberately including the negation stratum
/// (`only`) and the aggregate stratum (`cnt`) so refusal/demotion paths
/// get continuous coverage.
fn random_goal(rng: &mut StdRng, domain: i64, has_cnt: bool) -> Atom {
    let preds = if has_cnt {
        vec!["tc", "only", "a0", "a1", "a2", "cnt"]
    } else {
        vec!["tc", "only", "a0", "a1", "a2"]
    };
    let pred = preds[rng.gen_range(0..preds.len())];
    let c = rng.gen_range(0..domain + 2); // sometimes out of the domain
    let spec = match rng.gen_range(0..4) {
        0 => format!("{pred}({c}, ?)"),
        1 => format!("{pred}(?, {c})"),
        2 => format!("{pred}({c}, {})", rng.gen_range(0..domain)),
        _ => format!("{pred}(?, ?)"), // degenerate: must run the original
    };
    parse_goal(&spec).expect("generated goal parses")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cold contract: goal slice of the goal-directed run ≡ goal slice of
    /// the full fixpoint, at 1 and 4 threads, whatever path (rewrite /
    /// degenerate / fallback) the goals trigger.
    #[test]
    fn goal_slices_match_full_fixpoint(seed in 0u64..1_000_000) {
        let mut rng = <StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let (src, domain, has_cnt) = random_program(&mut rng);
        let goal = random_goal(&mut rng, domain, has_cnt);
        let full = run_full(&src, 1);
        prop_assert_eq!(&full.termination, &Termination::Fixpoint);
        let want = slice_set(&full.db, &goal);
        for threads in [1usize, 4] {
            let out = run_goal(&src, std::slice::from_ref(&goal), threads, MagicOptions::default());
            prop_assert_eq!(
                &out.result.termination,
                &Termination::Fixpoint,
                "threads={}: termination (magic: {:?})", threads, out.magic
            );
            let got = slice_set(&out.result.db, &goal);
            prop_assert_eq!(
                &want, &got,
                "threads={}: goal {} slice differs (magic: {:?})", threads, goal.pred, out.magic
            );
            // soundness beyond the slice: every goal-pred fact the magic
            // run derived is a fact of the full fixpoint
            let fixpoint: BTreeSet<Vec<Value>> = full.db.rows(&goal.pred).into_iter().collect();
            for row in out.result.db.rows(&goal.pred) {
                prop_assert!(
                    fixpoint.contains(&row),
                    "threads={}: unsound {}{:?}", threads, goal.pred, row
                );
            }
        }
    }

    /// Warm contract: an [`EngineSession`] interleaving fact patches with
    /// goal queries answers every query from its *current* inputs, and
    /// the warm state stays equivalent to a cold rerun.
    #[test]
    fn warm_goal_queries_match_cold_reruns(seed in 0u64..1_000_000) {
        let mut rng = <StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let (src, domain, has_cnt) = random_program(&mut rng);
        let goal = random_goal(&mut rng, domain, has_cnt);
        let program = parse_program(&src).expect("parses");
        let mut session = Engine::new()
            .session(program, Database::new())
            .expect("session starts");

        // a goal query before any patch ≡ the cold slice
        let cold = run_full(&src, 1);
        let out = session
            .evaluate_goals(std::slice::from_ref(&goal), MagicOptions::default())
            .expect("goal query evaluates");
        prop_assert_eq!(slice_set(&out.result.db, &goal), slice_set(&cold.db, &goal));

        // patch two fresh edges in, then re-query: the answer must match
        // a cold run over the extended fact set
        let extra: Vec<(i64, i64)> = (0..2)
            .map(|_| (rng.gen_range(0..domain), rng.gen_range(0..domain)))
            .collect();
        let patch = FactPatch::additions(
            extra
                .iter()
                .map(|&(a, b)| ("e0".to_string(), vec![Value::Int(a), Value::Int(b)]))
                .collect(),
        );
        session.patch(patch).expect("patch applies");
        let mut extended_src = src.clone();
        for (a, b) in &extra {
            extended_src.push_str(&format!("e0({a}, {b}).\n"));
        }
        let cold = run_full(&extended_src, 1);
        let out = session
            .evaluate_goals(std::slice::from_ref(&goal), MagicOptions::default())
            .expect("goal query evaluates after patch");
        prop_assert_eq!(
            slice_set(&out.result.db, &goal),
            slice_set(&cold.db, &goal),
            "post-patch goal slice differs (magic: {:?})", out.magic
        );
        // and the session's own warm database still matches the cold rerun
        prop_assert_eq!(
            slice_set(session.db(), &goal),
            slice_set(&cold.db, &goal),
            "session warm state diverged"
        );
    }
}

/// Closed-groups contract on a risk-shaped program (ALG2/ALG5 family):
/// goals covering a complete quasi-identifier group may keep the
/// aggregate inputs restricted and still reproduce the full run's risks
/// for those rows exactly.
#[test]
fn closed_group_risk_goals_match_full_run() {
    // rows 0-2 share one QI signature, rows 3-4 another
    let mut src = String::new();
    for (i, (area, weight)) in [
        ("\"roma\"", 10),
        ("\"roma\"", 20),
        ("\"roma\"", 30),
        ("\"milano\"", 40),
        ("\"milano\"", 50),
    ]
    .iter()
    .enumerate()
    {
        src.push_str(&format!("val(\"m\", {i}, \"area\", {area}).\n"));
        src.push_str(&format!("val(\"m\", {i}, \"w\", {weight}).\n"));
    }
    src.push_str("cat(\"m\", \"area\", \"quasi-identifier\").\n");
    src.push_str("cat(\"m\", \"w\", \"weight\").\n");
    src.push_str(
        "tuple(M, I, VSet) :- val(M, I, A, V), cat(M, A, \"quasi-identifier\"),\n\
         VSet = munion(pair(A, V), <A>).\n\
         wgt(I, W) :- val(M, I, A, W), cat(M, A, \"weight\").\n\
         tuplea(VSet, F, S) :- tuple(M, I, VSet), wgt(I, W),\n\
         F = mcount(<I>), S = msum(W, <I>).\n\
         riskOutput(I, R) :- tuple(M, I, VSet), tuplea(VSet, F, S), R = F / S.\n",
    );

    let full = run_full(&src, 1);
    // goal set = the complete "roma" group: closed under group equality
    let goals: Vec<Atom> = (0..3)
        .map(|i| parse_goal(&format!("riskOutput({i}, ?)")).expect("goal parses"))
        .collect();
    let out = run_goal(
        &src,
        &goals,
        1,
        MagicOptions {
            closed_groups: true,
        },
    );
    assert!(
        out.magic.applied,
        "closed-groups risk goals must rewrite, got {:?}",
        out.magic
    );
    for goal in &goals {
        assert_eq!(
            slice_set(&out.result.db, goal),
            slice_set(&full.db, goal),
            "risk slice differs for {goal:?}"
        );
    }
    // the restriction is real: the milano rows were never reified
    assert!(
        out.result.db.rows("tuple").len() < full.db.rows("tuple").len(),
        "expected fewer reified tuples under the goal restriction"
    );
}

/// Unbound goals degenerate: the engine must run the *original* program,
/// producing the identical fact set — not a rewritten variant of it.
#[test]
fn unbound_goal_is_byte_for_byte_the_full_run() {
    let src = "e0(1, 2). e0(2, 3).\n\
               tc(X, Y) :- e0(X, Y).\n\
               tc(X, Z) :- e0(X, Y), tc(Y, Z).";
    let goal = parse_goal("tc(?, ?)").expect("parses");
    let full = run_full(src, 1);
    let out = run_goal(src, &[goal], 1, MagicOptions::default());
    assert!(out.magic.degenerate);
    let names: Vec<String> = full.db.relation_names().map(str::to_string).collect();
    for name in names {
        assert_eq!(full.db.rows(&name), out.result.db.rows(&name), "{name}");
    }
    assert_eq!(
        full.stats.facts_derived, out.result.stats.facts_derived,
        "derivation effort must be identical"
    );
}
