//! The parser is total: for *any* byte soup it must return `Ok` or a
//! structured [`ParseError`] — never panic, never overflow the stack.
//! This is the front line of the robustness story: programs arrive from
//! files and network requests, so a hostile or corrupted input must not
//! take the process down.

use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use vadalog::parse_program;

/// Assert totality on one input: parsing must not panic.
fn never_panics(input: &str) {
    let owned = input.to_string();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let _ = parse_program(&owned);
    }));
    assert!(
        outcome.is_ok(),
        "parser panicked on input {:?}",
        &input[..input.len().min(120)]
    );
}

/// A corpus of valid programs to mutate: every syntactic feature the
/// grammar supports shows up at least once.
const CORPUS: &[&str] = &[
    "edge(1, 2). path(X, Y) :- edge(X, Y). path(X, Y) :- edge(X, Z), path(Z, Y).",
    "s(G, X) :- t(G, I, W), X = msum(W, <I>).",
    "o(I, R) :- t(I, N), R = case N < 3 then 1 else 0.",
    "D1 = D2 :- dept(E1, D1), dept(E2, D2).",
    "only(X) :- p(X), not q(X).",
    "o(V) :- t(S, K), V = S[K], size(S) > 2.",
    "o(X) :- t(A, B), X = {pair(A, B), pair(B, A)}.",
    "att(\"I&G\", \"Id\"). num(3). f(2.5). neg(-7).",
    "@module(\"m\"). r(X) :- b(X), X > 1 and X < 9 or X = 0.",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Arbitrary byte strings (interpreted as lossy UTF-8).
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(0u8..=255u8, 0..200)) {
        never_panics(&String::from_utf8_lossy(&bytes));
    }

    /// Printable-ASCII soup hits deeper parser paths than raw bytes,
    /// because more of it survives the lexer.
    #[test]
    fn ascii_soup_never_panics(bytes in proptest::collection::vec(32u8..=126u8, 0..200)) {
        never_panics(&String::from_utf8_lossy(&bytes));
    }

    /// Valid programs with random single-byte mutations: truncations,
    /// splices and overwrites that keep most of the structure intact.
    #[test]
    fn mutated_valid_programs_never_panic(
        (pick, cut, byte) in (0usize..9, 0usize..1000, 32u8..=126u8),
    ) {
        let base = CORPUS[pick % CORPUS.len()];
        let at = cut % (base.len() + 1);

        // truncation
        never_panics(&base[..at]);

        // overwrite one byte (keeping UTF-8 validity: corpus is ASCII)
        let mut overwritten = base.as_bytes().to_vec();
        if at < overwritten.len() {
            overwritten[at] = byte;
        }
        never_panics(&String::from_utf8_lossy(&overwritten));

        // splice a byte in
        let mut spliced = base.as_bytes().to_vec();
        spliced.insert(at, byte);
        never_panics(&String::from_utf8_lossy(&spliced));
    }
}

#[test]
fn deep_nesting_errors_instead_of_overflowing() {
    // regression: unbounded recursive descent used to ride arbitrarily
    // deep parenthesis towers straight into the stack guard
    let deep = format!(
        "o(X) :- p(X), Y = {}1{}.",
        "(".repeat(5000),
        ")".repeat(5000)
    );
    let err = parse_program(&deep).expect_err("must be rejected");
    assert!(err.to_string().contains("nesting"), "got: {err}");

    // unary towers recurse through a different path
    let minus = format!("o(X) :- p(X), Y = {}1.", "-".repeat(5000));
    assert!(parse_program(&minus).is_err());

    // not-towers too
    let nots = format!("o(X) :- p(X), Y = {}1.", "not ".repeat(5000));
    assert!(parse_program(&nots).is_err());

    // but reasonable nesting still parses
    let ok = format!("o(X) :- p(X), Y = {}1{}.", "(".repeat(50), ")".repeat(50));
    assert!(parse_program(&ok).is_ok());
}

#[test]
fn unterminated_strings_and_escapes_error_cleanly() {
    for src in [
        "a(\"",
        "a(\"abc",
        "a(\"abc\\",
        "a(\"abc\\x\")",
        "a(\"héllo", // multi-byte char then EOF
        "a(\"héllo\").",
    ] {
        never_panics(src);
    }
    assert!(parse_program("a(\"héllo\").").is_ok());
}
