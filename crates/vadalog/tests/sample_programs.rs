//! The `.vada` sample programs shipped under `programs/` must parse, pass
//! the wardedness check where expected, and produce the documented
//! results. These are also the programs the `vadalog` CLI demonstrates.

use std::path::PathBuf;
use vadalog::{parse_program, warded_analyze, Database, Engine, Value};

fn load(name: &str) -> vadalog::Program {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("programs")
        .join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    parse_program(&text).unwrap_or_else(|e| panic!("{name}: {e}"))
}

fn run(name: &str) -> vadalog::ReasoningResult {
    Engine::new().run(&load(name), Database::new()).expect(name)
}

#[test]
fn transitive_closure_program() {
    let r = run("transitive_closure.vada");
    // 4 nodes with a cycle 2→3→4→2: reachability is dense
    let paths = r.db.rows("path");
    assert!(paths.contains(&vec![Value::Int(1), Value::Int(4)]));
    assert!(paths.contains(&vec![Value::Int(2), Value::Int(2)])); // cycle
    assert_eq!(paths.len(), 12); // 3 targets reachable from each of the 4 nodes
}

#[test]
fn company_control_program() {
    let r = run("company_control.vada");
    let ctrl = r.db.rows("ctrl");
    let has = |x: &str, y: &str| {
        ctrl.iter()
            .any(|row| row[0] == Value::str(x) && row[1] == Value::str(y))
    };
    assert!(has("alpha", "beta"), "direct majority");
    assert!(has("alpha", "gamma"), "joint control 0.3 + 0.25");
    assert!(has("delta", "alpha"), "direct majority");
    assert!(!has("beta", "gamma"), "0.25 alone is not control");
}

#[test]
fn kanonymity_program() {
    let r = run("kanonymity.vada");
    let risks = r.db.rows("riskOutput");
    let risk_of = |i: i64| {
        risks
            .iter()
            .find(|row| row[0] == Value::Int(i))
            .map(|row| row[1].clone())
            .unwrap()
    };
    assert_eq!(risk_of(1), Value::Float(1.0)); // North/Textiles is unique
    assert_eq!(risk_of(2), Value::Float(0.0));
    assert_eq!(risk_of(3), Value::Float(0.0));
}

#[test]
fn skolem_identity_program() {
    let r = run("skolem_identity.vada");
    // per person, taxid and regid were unified by the EGD
    for person in ["ann", "bob"] {
        let tax =
            r.db.rows("taxid")
                .into_iter()
                .find(|row| row[0] == Value::str(person))
                .unwrap();
        let reg =
            r.db.rows("regid")
                .into_iter()
                .find(|row| row[0] == Value::str(person))
                .unwrap();
        assert_eq!(tax[1], reg[1], "{person}'s ids should be unified");
        assert!(tax[1].is_null());
    }
    // distinct people keep distinct nulls
    let ids: std::collections::HashSet<Value> =
        r.db.rows("taxid")
            .into_iter()
            .map(|row| row[1].clone())
            .collect();
    assert_eq!(ids.len(), 2);
    assert!(r.violations.is_empty());
    assert!(r.stats.unifications >= 2);
}

#[test]
fn all_sample_programs_are_warded() {
    for name in [
        "transitive_closure.vada",
        "company_control.vada",
        "kanonymity.vada",
        "skolem_identity.vada",
    ] {
        let report = warded_analyze(&load(name));
        assert!(
            report.is_warded(),
            "{name} should be warded: {:?}",
            report.violations
        );
    }
}

#[test]
fn cli_binary_runs_the_samples() {
    // run the actual binary end-to-end on one program
    let exe = env!("CARGO_BIN_EXE_vadalog");
    let program = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("programs")
        .join("transitive_closure.vada");
    let out = std::process::Command::new(exe)
        .arg(&program)
        .args(["--output", "path", "--stats"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("path(1, 2)"));
    assert!(stdout.contains("facts derived"));
}

#[test]
fn cli_reports_parse_errors() {
    let exe = env!("CARGO_BIN_EXE_vadalog");
    let dir = std::env::temp_dir().join("vadalog-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.vada");
    std::fs::write(&bad, "broken(X :- q(X).").unwrap();
    let out = std::process::Command::new(exe)
        .arg(&bad)
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("parse error"), "stderr: {stderr}");
}
