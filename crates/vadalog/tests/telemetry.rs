//! Telemetry integration tests: exact hand-checked values for the
//! engine's evaluation counters ([`EngineProfile`] / `EvalStats`), and a
//! full JSON-lines round-trip through the [`vadasa_obs`] collector layer.

use std::io::Write;
use std::sync::{Arc, Mutex};
use vadalog::obs::{json, Collector, JsonLinesWriter, Recorder};
use vadalog::{parse_program, Database, Engine, EngineConfig, JoinMode};

/// Run under [`JoinMode::Reference`]: the hand-traced candidate counts in
/// these tests assume classic nested-loop scans in source literal order.
/// (The default indexed executor examines *fewer* rows — see
/// `indexed_join_examines_no_more_candidates` below.)
fn run(src: &str) -> vadalog::ReasoningResult {
    Engine::with_config(EngineConfig {
        join_mode: JoinMode::Reference,
        ..EngineConfig::default()
    })
    .run(&parse_program(src).expect("parses"), Database::new())
    .expect("evaluates")
}

fn run_with_collector(src: &str, collector: Arc<dyn Collector>) -> vadalog::ReasoningResult {
    let config = EngineConfig {
        collector: Some(collector),
        ..EngineConfig::default()
    };
    Engine::with_config(config)
        .run(&parse_program(src).expect("parses"), Database::new())
        .expect("evaluates")
}

/// Linear transitive closure over a 3-edge chain, hand-traced round by
/// round under semi-naive evaluation:
///
/// ```text
/// round 0 (full): r0 scans 3 edges → 3 firings, path {12,23,34};
///                 r1 scans 3 edges, path empty → 3 candidates, 0 firings.
/// round 1 (Δ=3 path rows): r1 focus on path: 3 edges + 3×3 delta rows
///                 = 12 candidates, fires edge(1,2)∙path(2,3) and
///                 edge(2,3)∙path(3,4) → path {13,24}.
/// round 2 (Δ=2): r1: 3 + 3×2 = 9 candidates, fires edge(1,2)∙path(2,4)
///                 → path {14}.
/// round 3 (Δ=1): r1: 3 + 3×1 = 6 candidates, nothing joins → Δ=0, stop.
/// ```
#[test]
fn transitive_closure_counters_are_exact() {
    let r = run("edge(1, 2). edge(2, 3). edge(3, 4).\n\
         path(X, Y) :- edge(X, Y).\n\
         path(X, Z) :- edge(X, Y), path(Y, Z).");
    assert_eq!(r.db.rows("path").len(), 6);

    // EvalStats: 6 derived facts over 4 semi-naive rounds, no chase/EGDs.
    assert_eq!(r.stats.facts_derived, 6);
    assert_eq!(r.stats.iterations, 4);
    assert_eq!(r.stats.nulls_created, 0);
    assert_eq!(r.stats.unifications, 0);

    // EngineProfile mirrors the stats...
    assert_eq!(r.profile.facts_derived, 6);
    assert_eq!(r.profile.iterations, 4);
    assert_eq!(r.profile.nulls_created, 0);
    assert_eq!(r.profile.violations, 0);

    // ...and adds the per-stratum / per-round / per-rule breakdown.
    assert_eq!(r.profile.strata.len(), 1, "both rules share one stratum");
    let stratum = &r.profile.strata[0];
    assert_eq!(stratum.passes, 1);
    assert_eq!(stratum.facts_derived, 6);
    let deltas: Vec<u64> = stratum.rounds.iter().map(|round| round.delta).collect();
    assert_eq!(deltas, vec![3, 2, 1, 0]);

    let base = &r.profile.rules[0]; // path(X,Y) :- edge(X,Y)
    assert_eq!(base.firings, 3);
    assert_eq!(base.facts_derived, 3);
    assert_eq!(base.join_candidates, 3, "edge scanned once, then Δ-empty");

    let step = &r.profile.rules[1]; // path(X,Z) :- edge(X,Y), path(Y,Z)
    assert_eq!(step.firings, 3);
    assert_eq!(step.facts_derived, 3);
    assert_eq!(step.join_candidates, 3 + 12 + 9 + 6);
}

/// The default (indexed, planned) executor must reach the same result
/// while examining no more join candidates than the reference
/// nested-loop path — and its new profile counters must be live.
#[test]
fn indexed_join_examines_no_more_candidates() {
    let src = "edge(1, 2). edge(2, 3). edge(3, 4).\n\
         path(X, Y) :- edge(X, Y).\n\
         path(X, Z) :- edge(X, Y), path(Y, Z).";
    let reference = run(src);
    let indexed = Engine::new()
        .run(&parse_program(src).expect("parses"), Database::new())
        .expect("evaluates");
    assert_eq!(
        indexed.db.rows("path").len(),
        reference.db.rows("path").len()
    );
    let cands = |r: &vadalog::ReasoningResult| -> u64 {
        r.profile.rules.iter().map(|rp| rp.join_candidates).sum()
    };
    assert!(
        cands(&indexed) <= cands(&reference),
        "indexed examined {} candidates, reference {}",
        cands(&indexed),
        cands(&reference)
    );
    assert!(indexed.profile.index_probes > 0, "no index probes recorded");
    assert!(
        indexed.profile.planner_reorders > 0,
        "recursive TC rule should be reordered (delta first)"
    );
    assert_eq!(reference.profile.index_probes, 0);
    assert_eq!(reference.profile.planner_reorders, 0);
}

/// The restricted chase mints one labelled null per employee (skolem
/// memoization: re-deriving the same frontier re-uses the null), and the
/// one-department EGD unifies the two nulls with a single substitution.
#[test]
fn chase_and_egd_counters_are_exact() {
    let chase = run("emp(\"ann\"). emp(\"bob\").\n\
         dept(E, D) :- emp(E).");
    assert_eq!(chase.stats.nulls_created, 2);
    assert_eq!(chase.profile.nulls_created, 2);
    assert_eq!(chase.stats.unifications, 0);

    let egd = run("emp(\"ann\"). emp(\"bob\").\n\
         dept(E, D) :- emp(E).\n\
         D1 = D2 :- dept(E1, D1), dept(E2, D2).");
    assert_eq!(egd.stats.nulls_created, 2);
    assert_eq!(egd.stats.unifications, 1, "one null absorbed the other");
    assert_eq!(egd.profile.unifications, 1);
    assert_eq!(egd.profile.violations, 0);
    // the unification is attributed to the EGD rule (index 1)
    assert_eq!(egd.profile.rules[1].unifications, 1);
    assert_eq!(r_unifications_total(&egd.profile), egd.profile.unifications);
}

fn r_unifications_total(profile: &vadalog::EngineProfile) -> u64 {
    profile.rules.iter().map(|r| r.unifications).sum()
}

/// An attached [`Recorder`] sees exactly the aggregate counters the
/// profile reports — the replayed event stream and the in-band profile
/// cannot drift apart.
#[test]
fn recorder_totals_match_profile() {
    let recorder = Arc::new(Recorder::new());
    let r = run_with_collector(
        "edge(1, 2). edge(2, 3). edge(3, 4).\n\
         path(X, Y) :- edge(X, Y).\n\
         path(X, Z) :- edge(X, Y), path(Y, Z).",
        recorder.clone(),
    );
    assert_eq!(recorder.counter_total("engine.facts_derived"), 6);
    assert_eq!(recorder.counter_total("engine.iterations"), 4);
    assert_eq!(
        recorder.counter_total("engine.rule.join_candidates"),
        r.profile.rules.iter().map(|rp| rp.join_candidates).sum()
    );
    // one engine.round span per semi-naive round
    assert_eq!(
        recorder.events_named("engine.round").len(),
        r.profile.total_rounds()
    );
    assert_eq!(recorder.events_named("engine.run").len(), 1);
}

/// A `Write` sink the test can keep a handle on while the engine owns the
/// collector.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().write(buf)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Every line the JSON-lines writer emits parses back with the in-tree
/// JSON parser, carries the mandatory envelope fields, and sequence
/// numbers are gapless.
#[test]
fn json_lines_round_trip() {
    let buf = SharedBuf::default();
    let sink = Arc::new(JsonLinesWriter::new(buf.clone()));
    run_with_collector(
        "edge(1, 2). edge(2, 3).\n\
         path(X, Y) :- edge(X, Y).\n\
         path(X, Z) :- edge(X, Y), path(Y, Z).",
        sink,
    );

    let bytes = buf.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).expect("utf-8");
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty(), "collector saw no events");

    let mut saw_round_span = false;
    for (i, line) in lines.iter().enumerate() {
        let value = json::parse(line).unwrap_or_else(|e| panic!("line {i} invalid: {e:?}"));
        let kind = value.get("type").and_then(|v| v.as_str()).expect("type");
        assert!(matches!(kind, "span" | "counter" | "observe"), "{kind}");
        assert!(value.get("name").and_then(|v| v.as_str()).is_some());
        assert_eq!(
            value.get("seq").and_then(|v| v.as_f64()),
            Some(i as f64),
            "seq numbers must be gapless"
        );
        assert!(value.get("t_ns").and_then(|v| v.as_f64()).is_some());
        if value.get("name").and_then(|v| v.as_str()) == Some("engine.round") {
            saw_round_span = true;
            let fields = value.get("fields").expect("fields");
            assert!(fields.get("delta").and_then(|v| v.as_f64()).is_some());
            assert!(fields.get("stratum").and_then(|v| v.as_f64()).is_some());
        }
    }
    assert!(saw_round_span, "expected at least one engine.round span");
}
