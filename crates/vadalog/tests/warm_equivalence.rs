//! Warm-start ≡ cold-start equivalence (the PR-4 tentpole pin).
//!
//! An [`EngineSession`] that absorbs a fact patch must leave the database
//! in *exactly* the state a cold full run over the post-patch inputs
//! produces: identical fact sets and identical [`Termination`], at 1 and
//! 4 threads. This holds both when the patch is applied warm
//! (delta-seeded re-derivation of only the affected strata) and when the
//! session's dependency analysis forces the documented cold fallback
//! (retractions, negation, aggregation, EGDs): the fallback is a
//! correctness valve, not a different semantics.
//!
//! Random cases avoid existentials for the same reason as
//! `join_equivalence.rs`: labelled-null identity is mint-order dependent.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};
use vadalog::{
    parse_program, Database, Engine, EngineConfig, EngineSession, FactPatch, JoinMode, Program,
    Termination, Value,
};

fn engine(threads: usize) -> Engine {
    Engine::with_config(EngineConfig {
        join_mode: JoinMode::Indexed,
        threads,
        ..EngineConfig::default()
    })
}

fn db_of(facts: &[(String, Vec<Value>)]) -> Database {
    let mut db = Database::new();
    for (p, row) in facts {
        db.insert(p, row.clone());
    }
    db
}

/// Canonical view of a database: every relation's rows as an ordered set.
fn fact_sets(db: &Database) -> BTreeMap<String, BTreeSet<Vec<Value>>> {
    let mut out = BTreeMap::new();
    let names: Vec<String> = db.relation_names().map(str::to_string).collect();
    for name in names {
        let rows: BTreeSet<Vec<Value>> = db.rows(&name).into_iter().collect();
        if !rows.is_empty() {
            out.insert(name, rows);
        }
    }
    out
}

/// Random rule set over binary EDBs `e0..e2`: chain joins into `a0..a2`,
/// recursion (`tc`), and optionally stratified negation and a monotonic
/// aggregate (both of which force the patch path to fall back cold).
fn random_rules(rng: &mut StdRng, with_negation: bool, with_aggregate: bool) -> String {
    let mut src = String::new();
    let vars = ["X", "Y", "Z", "W"];
    for p in 0..3 {
        for _ in 0..rng.gen_range(1..=2) {
            let len = rng.gen_range(2..=3);
            let mut body: Vec<String> = Vec::new();
            for s in 0..len {
                let e = rng.gen_range(0..3);
                body.push(format!("e{e}({}, {})", vars[s], vars[s + 1]));
            }
            if rng.gen_bool(0.4) {
                let op = if rng.gen_bool(0.5) { "<" } else { "!=" };
                body.push(format!("X {op} {}", rng.gen_range(0..6)));
            }
            src.push_str(&format!("a{p}(X, {}) :- {}.\n", vars[len], body.join(", ")));
        }
    }
    src.push_str("tc(X, Y) :- a0(X, Y).\n");
    src.push_str("tc(X, Z) :- a0(X, Y), tc(Y, Z).\n");
    if with_negation {
        src.push_str("only(X, Y) :- e0(X, Y), not tc(X, Y).\n");
    }
    if with_aggregate {
        src.push_str("cnt(X, C) :- tc(X, Y), C = mcount(<Y>).\n");
    }
    src
}

/// Random EDB facts for `e0..e2`, split into a base load and a patch.
#[allow(clippy::type_complexity)]
fn random_facts(rng: &mut StdRng) -> (Vec<(String, Vec<Value>)>, Vec<(String, Vec<Value>)>) {
    let domain: i64 = rng.gen_range(3..8);
    let mut base = Vec::new();
    let mut added = Vec::new();
    for p in 0..3 {
        for i in 0..rng.gen_range(2..12) {
            let fact = (
                format!("e{p}"),
                vec![
                    Value::Int(rng.gen_range(0..domain)),
                    Value::Int(rng.gen_range(0..domain)),
                ],
            );
            // the first fact of each relation stays in the base so the
            // cold start and the retraction picker always have material
            if i > 0 && rng.gen_bool(0.25) {
                added.push(fact);
            } else {
                base.push(fact);
            }
        }
    }
    (base, added)
}

/// Session(base) + patch(added, removed) must equal a cold run over the
/// final fact set, for the given thread count. Returns the session for
/// further inspection.
fn assert_patch_equals_cold(
    label: &str,
    program: &Program,
    base: &[(String, Vec<Value>)],
    added: &[(String, Vec<Value>)],
    removed: &[(String, Vec<Value>)],
    threads: usize,
) -> (EngineSession, bool) {
    let mut session = engine(threads)
        .session(program.clone(), db_of(base))
        .expect("session cold start evaluates");
    let outcome = session
        .patch(FactPatch {
            removals: removed.to_vec(),
            additions: added.to_vec(),
        })
        .expect("patch evaluates");

    let mut final_facts: Vec<(String, Vec<Value>)> = base
        .iter()
        .filter(|f| !removed.contains(f))
        .cloned()
        .collect();
    final_facts.extend(added.iter().cloned());
    let cold = engine(threads)
        .run(program, db_of(&final_facts))
        .expect("cold run evaluates");

    assert_eq!(
        fact_sets(session.db()),
        fact_sets(&cold.db),
        "{label}: patched session diverged from cold run"
    );
    assert_eq!(
        session.termination(),
        &cold.termination,
        "{label}: termination differs"
    );
    (session, outcome.warm)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Positive-only programs: the patch must be absorbed *warm* and the
    /// result must match a cold run, at 1 and 4 threads.
    #[test]
    fn warm_patch_matches_cold_on_positive_programs(seed in 0u64..1_000_000) {
        let mut rng = <StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let src = random_rules(&mut rng, false, false);
        let program = parse_program(&src).expect("generated program parses");
        let (base, added) = random_facts(&mut rng);
        for threads in [1usize, 4] {
            let (session, warm) = assert_patch_equals_cold(
                &format!("positive/threads={threads}"),
                &program, &base, &added, &[], threads,
            );
            prop_assert!(warm, "positive-program patch must stay warm");
            prop_assert_eq!(session.termination(), &Termination::Fixpoint);
        }
    }

    /// Programs with negation and/or aggregation: the session may fall
    /// back cold (documented rule) but the observable result must still
    /// match a cold run, at 1 and 4 threads.
    #[test]
    fn guarded_patch_matches_cold_on_stratified_programs(seed in 0u64..1_000_000) {
        let mut rng = <StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let with_negation = rng.gen_bool(0.7);
        let with_aggregate = rng.gen_bool(0.5);
        let src = random_rules(&mut rng, with_negation, with_aggregate);
        let program = parse_program(&src).expect("generated program parses");
        let (base, added) = random_facts(&mut rng);
        for threads in [1usize, 4] {
            assert_patch_equals_cold(
                &format!("stratified/threads={threads}"),
                &program, &base, &added, &[], threads,
            );
        }
    }

    /// Retractions always trigger the cold fallback; the re-run must
    /// equal a cold run over the reduced fact set.
    #[test]
    fn retraction_matches_cold(seed in 0u64..1_000_000) {
        let mut rng = <StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let with_negation = rng.gen_bool(0.5);
        let src = random_rules(&mut rng, with_negation, false);
        let program = parse_program(&src).expect("generated program parses");
        let (base, added) = random_facts(&mut rng);
        let victim = base[rng.gen_range(0..base.len())].clone();
        let removed = vec![victim];
        for threads in [1usize, 4] {
            let (_, warm) = assert_patch_equals_cold(
                &format!("retraction/threads={threads}"),
                &program, &base, &added, &removed, threads,
            );
            prop_assert!(!warm, "retractions must force the cold fallback");
        }
    }
}

/// A second patch on the same session reuses the already-saturated state:
/// chained patches must match a cold run over the accumulated facts.
#[test]
fn chained_patches_match_cold() {
    let src = "a(X, Y) :- e0(X, Y).\n\
               tc(X, Y) :- a(X, Y).\n\
               tc(X, Z) :- a(X, Y), tc(Y, Z).";
    let program = parse_program(src).unwrap();
    let base = vec![("e0".to_string(), vec![Value::Int(1), Value::Int(2)])];
    let mut session = engine(1).session(program.clone(), db_of(&base)).unwrap();
    let mut all = base.clone();
    for step in 2..6i64 {
        let fact = (
            "e0".to_string(),
            vec![Value::Int(step), Value::Int(step + 1)],
        );
        all.push(fact.clone());
        let outcome = session.patch(FactPatch::additions(vec![fact])).unwrap();
        assert!(outcome.warm, "chain-extension patch must stay warm");
    }
    let cold = engine(1).run(&program, db_of(&all)).unwrap();
    assert_eq!(fact_sets(session.db()), fact_sets(&cold.db));
    assert_eq!(session.termination(), &cold.termination);
    assert_eq!(session.session_stats().warm_patches, 4);
    assert_eq!(session.session_stats().cold_fallbacks, 0);
}
