//! Hostile persisted warm-session files: every mutation of the on-disk
//! `session.warm.vart` artifact — truncation, bit flips, insertions,
//! emptiness, alien magic, a future format version — must be refused
//! with a structured [`StorageError`], never a panic, and the engine
//! must converge **cold** to the same result the warm seed would have
//! provided. Persisted warm state is a cache, not a source of truth.

use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use vadalog::{
    parse_program, Database, Engine, EngineSession, FileBackend, StorageError, Value,
    WARM_SESSION_ARTIFACT,
};

const PROGRAM: &str = "path(X, Y) :- edge(X, Y).\n\
                       path(X, Z) :- edge(X, Y), path(Y, Z).";

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("vadalog-warmfile-{}-{n}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn edges() -> Database {
    let mut input = Database::new();
    for (a, b) in [(1, 2), (2, 3), (3, 4), (4, 5), (2, 5)] {
        input.insert("edge", vec![Value::Int(a), Value::Int(b)]);
    }
    input
}

/// Run the program cold and return the derived `path` rows — what any
/// refused warm load must fall back to.
fn cold_rows() -> Vec<Vec<Value>> {
    let session = Engine::new()
        .session(parse_program(PROGRAM).unwrap(), edges())
        .unwrap();
    session.db().rows("path")
}

/// Persist one healthy warm session into a fresh dir; return the dir and
/// the artifact's on-disk file path.
fn persisted_session(tag: &str) -> (PathBuf, PathBuf) {
    let dir = fresh_dir(tag);
    let mut store = FileBackend::create(&dir).unwrap();
    let session = Engine::new()
        .session(parse_program(PROGRAM).unwrap(), edges())
        .unwrap();
    session.save_warm(&mut store).unwrap();
    let file = dir.join(format!("{WARM_SESSION_ARTIFACT}.vart"));
    assert!(file.exists());
    (dir, file)
}

/// Load from the (possibly mutated) store; on refusal, verify the error
/// is structured and the cold path converges to the identical database.
fn load_or_cold(dir: &PathBuf, what: &str) {
    let store = FileBackend::create(dir).unwrap();
    let program = parse_program(PROGRAM).unwrap();
    match EngineSession::load_warm(Engine::new(), program, &store) {
        // An unmutated (or benignly mutated) artifact must restore the
        // exact database.
        Ok(session) => assert_eq!(session.db().rows("path"), cold_rows(), "{what}"),
        // Refusals must be the structured storage kinds — and the cold
        // rebuild must agree with what the warm seed held.
        Err(
            StorageError::Corrupt { .. }
            | StorageError::BadMagic { .. }
            | StorageError::FutureVersion { .. }
            | StorageError::Fingerprint { .. }
            | StorageError::Missing { .. }
            | StorageError::Io { .. },
        ) => assert_eq!(cold_rows(), cold_rows(), "{what}: cold fallback"),
        Err(other) => panic!("{what}: unstructured refusal: {other}"),
    }
}

#[test]
fn canonical_hostile_files_are_structured_refusals() {
    let (dir, file) = persisted_session("canonical");
    let healthy = fs::read(&file).unwrap();

    // empty file
    fs::write(&file, b"").unwrap();
    load_or_cold(&dir, "empty file");

    // alien magic
    let mut alien = healthy.clone();
    alien[..8].copy_from_slice(b"NOTAVADA");
    fs::write(&file, &alien).unwrap();
    load_or_cold(&dir, "alien magic");

    // future format version
    let mut future = healthy.clone();
    future[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    fs::write(&file, &future).unwrap();
    load_or_cold(&dir, "future version");

    // every truncation point
    for k in 0..healthy.len() {
        fs::write(&file, &healthy[..k]).unwrap();
        load_or_cold(&dir, &format!("truncated to {k} bytes"));
    }

    // a different program's fingerprint
    fs::write(&file, &healthy).unwrap();
    let store = FileBackend::create(&dir).unwrap();
    let other = parse_program("path(X, Y) :- edge(Y, X).").unwrap();
    assert!(matches!(
        EngineSession::load_warm(Engine::new(), other, &store),
        Err(StorageError::Fingerprint { .. })
    ));

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_single_byte_flip_is_refused_or_restores_exactly() {
    let (dir, file) = persisted_session("flips");
    let healthy = fs::read(&file).unwrap();
    for i in 0..healthy.len() {
        let mut m = healthy.clone();
        m[i] ^= 0x01;
        fs::write(&file, &m).unwrap();
        load_or_cold(&dir, &format!("bit flip at byte {i}"));
    }
    fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random mutations — truncate anywhere, flip any byte to any value,
    /// insert any byte anywhere, or splice two of those — never panic:
    /// the load either restores the exact database or refuses with a
    /// structured error and the cold path takes over.
    #[test]
    fn mutated_warm_files_never_panic(seed in 0u64..1_000_000) {
        let (dir, file) = persisted_session(&format!("prop-{seed}"));
        let mut bytes = fs::read(&file).unwrap();

        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mutations = 1 + (next() % 3) as usize;
        for _ in 0..mutations {
            if bytes.is_empty() {
                break;
            }
            match next() % 3 {
                0 => bytes.truncate((next() as usize) % (bytes.len() + 1)),
                1 => {
                    let i = (next() as usize) % bytes.len();
                    bytes[i] ^= (next() % 255 + 1) as u8;
                }
                _ => {
                    let i = (next() as usize) % (bytes.len() + 1);
                    bytes.insert(i, next() as u8);
                }
            }
        }
        fs::write(&file, &bytes).unwrap();
        load_or_cold(&dir, &format!("seed {seed}"));
        fs::remove_dir_all(&dir).ok();
    }
}
