//! Simulating the attack Vada-SA defends against (paper §2.2, Figure 2):
//! a record-linkage adversary blocks the identity oracle on each released
//! tuple's quasi-identifiers and guesses the respondent. Anonymization
//! must blow up the candidate clusters — "with large clusters, exhaustive
//! comparison is both computationally expensive, and yields an overly
//! uncertain result, making the attack ineffective".
//!
//! Run with `cargo run --example attack_simulation`.

use vadasa_core::prelude::*;
use vadasa_datagen::fixtures::inflation_growth_fig1;
use vadasa_datagen::oracle::IdentityOracle;
use vadasa_linkage::attack;

fn main() {
    let (db, dict) = inflation_growth_fig1();

    // Simulate the identity oracle: each survey tuple has `weight`
    // population look-alikes sharing its quasi-identifier combination.
    let oracle = IdentityOracle::from_microdata(&db, &dict, "Id", 42, 500).expect("oracle builds");
    println!(
        "identity oracle: {} records covering {} survey respondents\n",
        oracle.len(),
        db.len()
    );

    // --- attack on the raw release ---
    let before = attack(&db, &dict, &oracle, "Id").expect("attack runs");
    println!("attack on the RAW microdata:");
    println!("  mean success probability: {:.4}", before.mean_success);
    println!("  median candidate block:   {}", before.median_block_size);
    println!(
        "  certain re-identifications: {}\n",
        before.certain_reidentifications
    );

    // the attack's success equals the re-identification risk model: 1/W
    let view = MicrodataView::from_db(&db, &dict).expect("view");
    let risks = ReIdentification.evaluate(&view).expect("risk");
    let max_gap = before
        .tuples
        .iter()
        .zip(risks.risks.iter())
        .map(|(t, r)| (t.success_probability - r).abs())
        .fold(0.0f64, f64::max);
    println!(
        "empirical attack success matches the re-identification risk measure (max gap {max_gap:.6})\n"
    );

    // --- anonymize, then attack again ---
    let risk = ReIdentification;
    let anonymizer = LocalSuppression::default();
    let cycle = AnonymizationCycle::new(
        &risk,
        &anonymizer,
        CycleConfig {
            threshold: 0.02, // tolerate at most 1-in-50 odds
            ..CycleConfig::default()
        },
    );
    let outcome = cycle.run(&db, &dict).expect("cycle converges");
    println!(
        "anonymization cycle at T = 0.02 injected {} labelled null(s):",
        outcome.nulls_injected
    );
    print!("{}", outcome.audit.render());

    let after = attack(&outcome.db, &dict, &oracle, "Id").expect("attack runs");
    println!("\nattack on the ANONYMIZED microdata:");
    println!("  mean success probability: {:.4}", after.mean_success);
    println!("  median candidate block:   {}", after.median_block_size);
    println!(
        "  certain re-identifications: {}",
        after.certain_reidentifications
    );
    println!(
        "\nattack success dropped by {:.1}% — anonymization works.",
        (1.0 - after.mean_success / before.mean_success) * 100.0
    );
    assert!(after.mean_success < before.mean_success);
}
