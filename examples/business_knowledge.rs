//! Business knowledge in action (paper §4.4, Algorithm 9): company-control
//! relationships propagate disclosure risk across clusters — re-identifying
//! one company of a group makes re-identifying the others easy, so all
//! members inherit the combined risk `1 − ∏(1 − ρ)`.
//!
//! Run with `cargo run --example business_knowledge`.

use vadalog::Value;
use vadasa_core::business::{combined_cluster_risk, ClusterMap, ClusterRisk, OwnershipGraph};
use vadasa_core::prelude::*;

fn main() {
    // --- a small corporate survey ---
    let mut db = MicrodataDb::new("corp", ["id", "area", "sector", "weight"]).expect("schema");
    let rows = [
        ("alpha", "North", "Energy", 4),          // rare combination → risky
        ("alpha-sub", "North", "Commerce", 200),  // safe on its own…
        ("alpha-sub2", "South", "Commerce", 200), // …and so is this
        ("beta", "South", "Commerce", 200),
        ("gamma", "Center", "Commerce", 180),
    ];
    for (id, area, sector, w) in rows {
        db.push_row(vec![
            Value::str(id),
            Value::str(area),
            Value::str(sector),
            Value::Int(w),
        ])
        .expect("row");
    }
    let mut dict = MetadataDictionary::new();
    for a in ["id", "area", "sector", "weight"] {
        dict.register_attr("corp", a, "");
    }
    dict.set_category("corp", "id", Category::Identifier)
        .unwrap();
    dict.set_category("corp", "area", Category::QuasiIdentifier)
        .unwrap();
    dict.set_category("corp", "sector", Category::QuasiIdentifier)
        .unwrap();
    dict.set_category("corp", "weight", Category::Weight)
        .unwrap();

    // --- ownership graph: alpha controls its subsidiaries ---
    // direct majority + joint control through the controlled set (the
    // recursive msum rule of §4.4)
    let mut graph = OwnershipGraph::new();
    graph.add_edge(Value::str("alpha"), Value::str("alpha-sub"), 0.7);
    graph.add_edge(Value::str("alpha"), Value::str("alpha-sub2"), 0.3);
    graph.add_edge(Value::str("alpha-sub"), Value::str("alpha-sub2"), 0.25);

    let controls = graph.control_closure();
    println!("inferred control relationships:");
    for (x, y) in &controls {
        println!("  {x} controls {y}");
    }
    // alpha's 0.3 direct + 0.25 via alpha-sub = 0.55 > 0.5: joint control
    assert!(controls.contains(&(Value::str("alpha"), Value::str("alpha-sub2"))));

    // --- the declarative encoding agrees ---
    let edges: Vec<(Value, Value, f64)> = vec![
        (Value::str("alpha"), Value::str("alpha-sub"), 0.7),
        (Value::str("alpha"), Value::str("alpha-sub2"), 0.3),
        (Value::str("alpha-sub"), Value::str("alpha-sub2"), 0.25),
    ];
    let declarative = vadasa_core::programs::run_control_program(&edges).expect("engine runs");
    println!(
        "\nthe Vadalog control program derives the same {} ctrl facts",
        declarative.len()
    );
    assert_eq!(
        declarative.len(),
        controls.len(),
        "declarative and native closures agree"
    );

    // --- risk propagation ---
    let base = KAnonymity::new(2);
    let view = MicrodataView::from_db(&db, &dict).expect("view");
    let solo = base.evaluate(&view).expect("base risk");
    println!(
        "\nper-tuple risk without business knowledge: {:?}",
        solo.risks
    );

    let clusters = ClusterMap::from_graph(&graph, &db, "id").expect("cluster map");
    let lifted = ClusterRisk::new(&base, clusters)
        .evaluate(&view)
        .expect("cluster risk");
    println!(
        "per-tuple risk with cluster propagation:  {:?}",
        lifted.risks
    );
    println!(
        "(cluster formula: risks [1, 0, 0] combine to {})",
        combined_cluster_risk(&[1.0, 0.0, 0.0])
    );

    // alpha is risky → its whole group is now risky
    assert_eq!(lifted.risks[1], 1.0);
    assert_eq!(lifted.risks[2], 1.0);
    // beta / gamma are unaffected
    assert_eq!(lifted.risks[3], 0.0);

    // --- anonymize with the enhanced cycle (Algorithm 9) ---
    let clusters = ClusterMap::from_graph(&graph, &db, "id").expect("cluster map");
    let risk = ClusterRisk::new(&base, clusters);
    let anonymizer = LocalSuppression::default();
    let cycle = AnonymizationCycle::new(&risk, &anonymizer, CycleConfig::default());
    let outcome = cycle.run(&db, &dict).expect("cycle converges");
    println!(
        "\nenhanced anonymization cycle: {} nulls injected across the alpha group",
        outcome.nulls_injected
    );
    print!("{}", outcome.audit.render());
}
