//! The heart of the paper: statistical disclosure control expressed as
//! *declarative Vadalog rules* and executed by a Datalog± reasoning engine.
//! This example runs the paper's algorithm listings on the bundled engine:
//! tuple reification (Algorithm 2 Rule 1), k-anonymity (Algorithm 4),
//! local suppression with existential labelled nulls (Algorithm 7), and
//! the recursive company-control rules of §4.4 — and shows the engine's
//! chase, EGDs and wardedness analysis at work.
//!
//! Run with `cargo run --example declarative_vadalog`.

use vadalog::{parse_program, warded_analyze, Database, Engine, EngineConfig, Value};
use vadasa_core::dictionary::{Category, MetadataDictionary};
use vadasa_core::model::MicrodataDb;
use vadasa_core::programs::{
    self, alg4_kanonymity, microdata_to_facts, run_risk_program, ALG2_TUPLE_REIFICATION,
    ALG7_LOCAL_SUPPRESSION,
};

fn figure5_db() -> (MicrodataDb, MetadataDictionary) {
    let mut db = MicrodataDb::new("fig5", ["Id", "Area", "Sector", "W"]).expect("schema");
    for (id, a, s, w) in [
        ("t1", "Roma", "Textiles", 10),
        ("t2", "Roma", "Commerce", 20),
        ("t3", "Roma", "Commerce", 20),
        ("t4", "Milano", "Financial", 30),
        ("t5", "Milano", "Financial", 30),
    ] {
        db.push_row(vec![
            Value::str(id),
            Value::str(a),
            Value::str(s),
            Value::Int(w),
        ])
        .expect("row");
    }
    let mut dict = MetadataDictionary::new();
    for a in ["Id", "Area", "Sector", "W"] {
        dict.register_attr("fig5", a, "");
    }
    dict.set_category("fig5", "Id", Category::Identifier)
        .unwrap();
    dict.set_category("fig5", "Area", Category::QuasiIdentifier)
        .unwrap();
    dict.set_category("fig5", "Sector", Category::QuasiIdentifier)
        .unwrap();
    dict.set_category("fig5", "W", Category::Weight).unwrap();
    (db, dict)
}

fn main() {
    let (db, dict) = figure5_db();

    // --- 1. a pure Datalog± warm-up: recursion + existentials + EGD ---
    println!("=== engine warm-up: chase with labelled nulls and an EGD ===");
    let warmup = parse_program(
        r#"
        person("ann"). person("bob").
        % every person has some (unknown) tax id: existential head variable
        taxid(P, T) :- person(P).
        % two registries invented ids independently; the EGD unifies them
        taxid2(P, T) :- person(P).
        T1 = T2 :- taxid(P, T1), taxid2(P, T2).
        "#,
    )
    .expect("parses");
    let result = Engine::new().run(&warmup, Database::new()).expect("runs");
    println!(
        "  {} labelled nulls minted, {} unified by the EGD",
        result.stats.nulls_created, result.stats.unifications
    );
    for row in result.db.rows("taxid") {
        println!("  taxid({}, {})", row[0], row[1]);
    }

    // --- 2. wardedness: the tractability guarantee Vadalog relies on ---
    println!("\n=== wardedness analysis of the suppression program ===");
    let mut source = String::from(ALG2_TUPLE_REIFICATION);
    source.push_str(ALG7_LOCAL_SUPPRESSION);
    let program = parse_program(&source).expect("parses");
    let report = warded_analyze(&program);
    println!(
        "  affected positions: {:?}",
        report.affected.iter().collect::<Vec<_>>()
    );
    println!(
        "  program is {}",
        if report.is_warded() {
            "WARDED ✓"
        } else {
            "not warded"
        }
    );

    // --- 3. Algorithm 4 as rules: declarative k-anonymity ---
    println!("\n=== declarative k-anonymity (Algorithm 4) on Figure 5 ===");
    let risks = run_risk_program(&alg4_kanonymity(2), &db, &dict).expect("program runs");
    for (i, r) in risks.iter().enumerate() {
        println!("  riskOutput(tuple {}, {r})", i + 1);
    }
    assert_eq!(risks[0], 1.0, "Roma/Textiles is sample-unique");

    // --- 4. Algorithm 7: local suppression via the chase ---
    println!("\n=== declarative local suppression (Algorithm 7) ===");
    let facts = {
        let mut f = microdata_to_facts(&db, &dict).expect("facts");
        f.insert("anonymize", vec![Value::Int(0)]);
        f.insert("suppressattr", vec![Value::Int(0), Value::str("Sector")]);
        f
    };
    let engine = Engine::with_config(EngineConfig {
        trace: true,
        ..Default::default()
    });
    let result = engine.run(&program, facts).expect("runs");
    for row in result.db.rows("tuple") {
        if row[1] == Value::Int(0) {
            println!("  tuple(fig5, 1, {})", row[2]);
        }
    }
    println!("  (the version carrying ⊥ was derived by the chase; provenance below)");
    for t in result.trace.iter().filter(|t| t.rule.starts_with("alg7")) {
        println!("  derived by [{}]", t.rule);
    }

    // --- 5. §4.4 control closure: recursion + monotonic aggregation ---
    println!("\n=== recursive company control (§4.4) ===");
    let edges = vec![
        (Value::str("alpha"), Value::str("beta"), 0.6),
        (Value::str("alpha"), Value::str("gamma"), 0.3),
        (Value::str("beta"), Value::str("gamma"), 0.25),
    ];
    let ctrl = programs::run_control_program(&edges).expect("program runs");
    for (x, y) in &ctrl {
        println!("  ctrl({x}, {y})");
    }
    assert!(
        ctrl.contains(&(Value::str("alpha"), Value::str("gamma"))),
        "joint control through beta: 0.3 + 0.25 > 0.5"
    );
    // --- 6. the fully declarative anonymization cycle ---
    println!("\n=== fully declarative anonymization cycle (Algorithm 2) ===");
    let outcome =
        programs::run_declarative_cycle(&db, &dict, 2, 20).expect("declarative cycle runs");
    println!(
        "  engine-evaluated risk + engine-chased suppression: {} null(s) in {} iteration(s)",
        outcome.nulls_injected, outcome.iterations
    );
    for (i, row) in outcome.anonymized_rows.iter().enumerate() {
        let cells: Vec<String> = row.iter().map(|(a, v)| format!("{a}={v}")).collect();
        println!("  tuple {}: {}", i + 1, cells.join(", "));
    }
    assert!(outcome.final_risks.iter().all(|&r| r <= 0.5));

    // --- 7. what the attacker can still ask: certain vs possible answers ---
    println!("\n=== query answering over the anonymized instance ===");
    use vadalog::{answers, AnswerMode, Atom, Term};
    let mut released = Database::new();
    for (i, row) in outcome.anonymized_rows.iter().enumerate() {
        let mut args = vec![Value::Int(i as i64)];
        args.extend(row.iter().map(|(_, v)| v.clone()));
        released.insert("released", args);
    }
    let who_is_in_textiles = Atom::new(
        "released",
        vec![
            Term::Var("I".into()),
            Term::Var("A".into()),
            Term::Const(Value::str("Textiles")),
        ],
    );
    let certain = answers(&released, &who_is_in_textiles, AnswerMode::Certain);
    let possible = answers(&released, &who_is_in_textiles, AnswerMode::Possible);
    println!(
        "  \"who is in Textiles?\" — certain answers: {}, possible answers: {}",
        certain.len(),
        possible.len()
    );
    assert!(
        certain.is_empty(),
        "suppression removed every certain Textiles witness"
    );
    assert!(!possible.is_empty());
    println!("  suppression turned the certain answer into mere possibility —");
    println!("  exactly the uncertainty §2.2's attack analysis asks for.");

    println!("\nall declarative encodings agree with the native implementations —");
    println!("see crates/core/src/programs.rs for the equivalence test suite.");
}
