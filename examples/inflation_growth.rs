//! The paper's running example end to end: the Figure 1 Inflation & Growth
//! survey fragment through risk estimation (all four measures) and the
//! anonymization cycle, reproducing the §2.2 worked numbers along the way.
//!
//! Run with `cargo run --example inflation_growth`.

use vadasa_core::maybe_match::NullSemantics;
use vadasa_core::prelude::*;
use vadasa_datagen::fixtures::inflation_growth_fig1;

fn main() {
    let (db, dict) = inflation_growth_fig1();
    println!(
        "loaded the Figure 1 fragment: {} tuples, quasi-identifiers {:?}\n",
        db.len(),
        dict.quasi_identifiers("I&G").expect("categorized")
    );

    let view = MicrodataView::from_db_with(&db, &dict, NullSemantics::Standard, None)
        .expect("view builds");

    // --- §2.2 worked numbers ---
    let reid = ReIdentification.evaluate(&view).expect("re-identification");
    println!("re-identification risk (Algorithm 3):");
    println!("  tuple 15: {:.3}  (paper: 0.03)", reid.risks[14]);
    println!("  tuple  7: {:.4} (paper: 0.003)", reid.risks[6]);
    println!("  tuple  4: {:.3}  (paper: 1/60 ≈ 0.016)\n", reid.risks[3]);

    // --- k-anonymity (Algorithm 4) ---
    let kanon = KAnonymity::new(2).evaluate(&view).expect("k-anonymity");
    let risky = kanon.risky_tuples(0.5);
    println!(
        "k-anonymity, k = 2: {} of {} tuples are sample-unique on the full QI set",
        risky.len(),
        db.len()
    );

    // --- individual risk (Algorithm 5, Benedetti–Franconi) ---
    let ir = IndividualRisk::new(IrEstimator::PosteriorMean)
        .evaluate(&view)
        .expect("individual risk");
    let (max_i, max_r) = ir
        .risks
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty");
    println!(
        "individual risk: highest posterior-mean risk is tuple {} at {:.4}",
        max_i + 1,
        max_r
    );

    // --- SUDA (Algorithm 6): the paper's tuple-20 example ---
    use vadasa_core::risk::minimal_sample_uniques;
    // restrict to the four QIs of the §4.2 example
    let restricted = [
        "Area".to_string(),
        "Sector".to_string(),
        "Employees".to_string(),
        "ResidentialRev".to_string(),
    ];
    let suda_view =
        MicrodataView::from_db_with(&db, &dict, NullSemantics::Standard, Some(&restricted))
            .expect("restricted view");
    let msus = minimal_sample_uniques(&suda_view, None);
    println!(
        "SUDA: tuple 20 has {} minimal sample uniques of sizes {:?} (paper: 2 MSUs — {{Sector}} and {{Employees, Res.Rev.}})",
        msus[19].masks.len(),
        msus[19].sizes()
    );

    // --- the anonymization cycle ---
    let risk = KAnonymity::new(2);
    let anonymizer = LocalSuppression::default();
    let cycle = AnonymizationCycle::new(&risk, &anonymizer, CycleConfig::default());
    let outcome = cycle.run(&db, &dict).expect("cycle converges");
    println!(
        "\nanonymization cycle (k=2, T=0.5, local suppression): {} nulls in {} iterations, information loss {:.1}%",
        outcome.nulls_injected,
        outcome.iterations,
        outcome.information_loss * 100.0
    );
    println!("every decision is explainable:");
    print!("{}", outcome.audit.render());
    assert_eq!(outcome.final_risky, 0);
}
