use std::sync::Arc;
use vadalog::Value;
use vadasa_core::obs::Recorder;
use vadasa_core::pipeline::Vadasa;
use vadasa_core::report::render_profile;

fn main() {
    let mut db = vadasa_core::model::MicrodataDb::new("s", ["id", "area", "weight"]).unwrap();
    for (id, area, w) in [(1, "North", 9), (2, "North", 9), (3, "Lilliput", 2)] {
        db.push_row(vec![Value::Int(id), Value::str(area), Value::Int(w)])
            .unwrap();
    }
    let rec = Arc::new(Recorder::new());
    let release = Vadasa::new()
        .k_anonymity(2)
        .collector(rec.clone())
        .run(&db)
        .unwrap();
    print!("{}", render_profile(&release.outcome.profile));
    println!(
        "collector saw {} cycle.iteration spans",
        rec.events_named("cycle.iteration").len()
    );
}
