//! Observability tour: live gauges polled from a monitor thread while
//! the cycle runs, the recorded span tree exported as a Chrome
//! `trace_event` timeline and as collapsed flamegraph stacks, and the
//! JSON-lines stream shown to reassemble into the same tree.
//!
//! Run with `cargo run --release --example observability`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use vadalog::Value;
use vadasa_core::obs::metrics::MetricsRegistry;
use vadasa_core::obs::trace::TraceBuilder;
use vadasa_core::obs::{Collector, Fanout, JsonLinesWriter, Recorder};
use vadasa_core::pipeline::Vadasa;
use vadasa_core::report::render_profile;

fn main() {
    let mut db = vadasa_core::model::MicrodataDb::new("s", ["id", "area", "weight"]).unwrap();
    for (id, area, w) in [(1, "North", 9), (2, "North", 9), (3, "Lilliput", 2)] {
        db.push_row(vec![Value::Int(id), Value::str(area), Value::Int(w)])
            .unwrap();
    }

    // --- live gauges: poll the registry from another thread mid-run ---
    let metrics = Arc::new(MetricsRegistry::new());
    let done = Arc::new(AtomicBool::new(false));
    let monitor = {
        let (metrics, done) = (metrics.clone(), done.clone());
        std::thread::spawn(move || {
            let mut polls = 0u32;
            while !done.load(Ordering::Relaxed) {
                let _ = metrics.gauge("cycle.rows_at_risk");
                polls += 1;
                std::thread::yield_now();
            }
            polls
        })
    };

    // --- collectors: an in-process recorder + a JSON-lines sink ---
    let rec = Arc::new(Recorder::new());
    let sink = Arc::new(JsonLinesWriter::new(Vec::<u8>::new()));
    let fanout = Arc::new(Fanout::new(vec![
        rec.clone() as Arc<dyn Collector>,
        sink.clone(),
    ]));

    let release = Vadasa::new()
        .k_anonymity(2)
        .collector(fanout)
        .metrics(metrics.clone())
        .run(&db)
        .unwrap();
    done.store(true, Ordering::Relaxed);
    let polls = monitor.join().unwrap();

    print!("{}", render_profile(&release.outcome.profile));
    println!(
        "monitor thread polled the registry {polls} time(s) during the run; \
         final gauges: iteration {:?}, rows at risk {:?}",
        metrics.gauge("cycle.iteration"),
        metrics.gauge("cycle.rows_at_risk"),
    );
    println!("metrics snapshot: {}", metrics.snapshot_json());

    // --- the recorded events reassemble into a span tree ---
    let tree = TraceBuilder::from_recorder(&rec);
    println!(
        "\nspan tree: {} span(s), {} root(s)",
        tree.nodes.len(),
        tree.roots.len()
    );
    println!("chrome trace (open in chrome://tracing or Perfetto):");
    println!("{}", tree.chrome_trace_json());
    println!("collapsed stacks (pipe into a flamegraph renderer):");
    print!("{}", tree.collapsed_stacks());

    // --- the JSON-lines stream carries the same tree ---
    let Ok(sink) = Arc::try_unwrap(sink) else {
        panic!("sink still shared");
    };
    let text = String::from_utf8(sink.into_inner()).unwrap();
    let from_lines = TraceBuilder::from_json_lines(&text);
    assert_eq!(
        from_lines.collapsed_stacks(),
        tree.collapsed_stacks(),
        "offline reassembly from the JSON-lines stream matches the recorder"
    );
    println!(
        "\nJSON-lines stream: {} line(s); offline reassembly matches the in-process tree",
        text.lines().count()
    );
}
