//! Quickstart: categorize a microdata DB, measure disclosure risk, and
//! anonymize it to 2-anonymity with local suppression.
//!
//! Run with `cargo run --example quickstart`.

use vadalog::Value;
use vadasa_core::prelude::*;

fn main() {
    // 1. A small survey table. In Vada-SA terms this is the extensional
    //    component: plain rows, no hard-coded meaning.
    let mut db = MicrodataDb::new(
        "salary-survey",
        ["id", "region", "occupation", "age band", "salary", "weight"],
    )
    .expect("schema is well formed");
    let rows = [
        (1, "North", "engineer", "30-39", 52_000, 45),
        (2, "North", "engineer", "30-39", 61_000, 45),
        (3, "North", "teacher", "40-49", 38_000, 120),
        (4, "South", "teacher", "40-49", 36_000, 110),
        (5, "South", "miner", "50-59", 41_000, 8), // rare occupation!
        (6, "North", "teacher", "30-39", 39_000, 95),
    ];
    for (id, region, occupation, age, salary, w) in rows {
        db.push_row(vec![
            Value::Int(id),
            Value::str(region),
            Value::str(occupation),
            Value::str(age),
            Value::Int(salary),
            Value::Int(w),
        ])
        .expect("row matches schema");
    }

    // 2. Categorize attributes with Algorithm 1: the experience base knows
    //    what ids, regions and weights look like; similar names inherit
    //    their categories.
    let mut dict = MetadataDictionary::new();
    for attr in db.attributes() {
        dict.register_attr("salary-survey", attr, "");
    }
    let mut experience = ExperienceBase::financial_defaults();
    experience.add("occupation", Category::QuasiIdentifier);
    experience.add("salary", Category::NonIdentifying);
    let mut categorizer = Categorizer::new(experience);
    categorizer.threshold = 0.6;
    let report = categorizer
        .categorize(&mut dict, "salary-survey")
        .expect("categorization runs");
    println!("categories inferred by Algorithm 1:");
    for (attr, meta) in dict.attrs("salary-survey").expect("registered") {
        println!(
            "  {attr:<12} -> {}",
            meta.category.map(|c| c.to_string()).unwrap_or("?".into())
        );
    }
    if !report.conflicts.is_empty() {
        println!("conflicts for human review: {:?}", report.conflicts);
    }

    // 3. Preemptive risk scoring (desideratum iii): who is exposed?
    let risk = KAnonymity::new(2);
    let view = MicrodataView::from_db(&db, &dict).expect("view builds");
    let before = risk.evaluate(&view).expect("risk evaluates");
    println!(
        "\nrisky tuples before anonymization: {:?}",
        before.risky_tuples(0.5)
    );

    // 4. Active anonymization (desideratum iv): run the cycle.
    let anonymizer = LocalSuppression::default();
    let cycle = AnonymizationCycle::new(&risk, &anonymizer, CycleConfig::default());
    let outcome = cycle.run(&db, &dict).expect("cycle converges");

    println!(
        "\ncycle finished in {} iteration(s): {} null(s) injected, information loss {:.1}%",
        outcome.iterations,
        outcome.nulls_injected,
        outcome.information_loss * 100.0
    );
    println!("\nfull explainability — the audit trail:");
    print!("{}", outcome.audit.render());

    println!("\nanonymized table:");
    for i in 0..outcome.db.len() {
        println!("  {:?}", outcome.db.row(i).expect("row exists"));
    }
    assert_eq!(outcome.final_risky, 0, "everything is 2-anonymous now");
}
