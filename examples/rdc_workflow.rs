//! A Research Data Center workflow end to end: a survey extract arrives as
//! CSV, is categorized, screened with two complementary risk measures
//! (re-identification *and* the DP-inspired membership-disclosure measure),
//! anonymized with the hybrid recode-then-suppress strategy, and written
//! back out as CSV ready for exchange — with the audit trail an
//! accountability-bound institution has to archive.
//!
//! Run with `cargo run --example rdc_workflow`.

use vadasa_core::anonymize::italian_geography;
use vadasa_core::io::{read_csv, write_csv};
use vadasa_core::prelude::*;

const INCOMING_CSV: &str = "\
firm_id,Area,Sector,Employees,growth,weight
70001,Milano,Commerce,50-200,4,180
70002,Torino,Commerce,50-200,2,180
70003,Roma,Commerce,201-1000,-1,210
70004,Roma,Commerce,201-1000,7,210
70005,Napoli,Energy,1000+,12,2
70006,Bari,Commerce,50-200,3,160
70007,Roma,Textiles,50-200,1,150
70008,Firenze,Textiles,50-200,-4,150
";

fn main() {
    // --- 1. ingest ---
    let db = read_csv("firm-survey", INCOMING_CSV).expect("CSV parses");
    println!(
        "ingested '{}': {} tuples × {} attributes",
        db.name,
        db.len(),
        db.attributes().len()
    );

    // --- 2. categorize with the experience base (Algorithm 1) ---
    let mut dict = MetadataDictionary::new();
    for attr in db.attributes() {
        dict.register_attr(&db.name, attr, "");
    }
    let mut experience = ExperienceBase::financial_defaults();
    experience.add("firm id", Category::Identifier);
    let mut categorizer = Categorizer::new(experience);
    categorizer.threshold = 0.6;
    categorizer
        .categorize(&mut dict, &db.name)
        .expect("categorizes");
    println!("\ninferred categories:");
    for (attr, meta) in dict.attrs(&db.name).expect("registered") {
        println!(
            "  {attr:<10} {}",
            meta.category.map(|c| c.to_string()).unwrap_or("?".into())
        );
    }

    // --- 3. preemptive screening with two measures ---
    let view = MicrodataView::from_db(&db, &dict).expect("view builds");
    let reid = ReIdentification.evaluate(&view).expect("re-identification");
    let presence = PresenceRisk.evaluate(&view).expect("presence risk");
    println!("\npre-exchange screening (risk per tuple):");
    println!("  tuple | re-ident | membership");
    for i in 0..db.len() {
        println!(
            "    {:>2}  |  {:.4}  |  {:.4}",
            i + 1,
            reid.risks[i],
            presence.risks[i]
        );
    }
    // tuple 5 (the 1000+-employee Energy firm with weight 2) is critical
    // under both measures
    assert!(reid.risks[4] > 0.4 && presence.risks[4] > 0.4);

    // --- 4. anonymize: recode where geography allows, suppress otherwise ---
    let risk = ReIdentification;
    let anonymizer = HybridAnonymizer::new(GlobalRecoding::new(italian_geography()));
    let cycle = AnonymizationCycle::new(
        &risk,
        &anonymizer,
        CycleConfig {
            threshold: 0.05, // the RDC tolerates at most 1-in-20 linkage odds
            ..CycleConfig::default()
        },
    );
    let outcome = cycle.run(&db, &dict).expect("cycle converges");
    println!(
        "\nanonymization: {} recodings, {} suppressions in {} iteration(s)",
        outcome.recodings, outcome.nulls_injected, outcome.iterations
    );
    println!("audit trail (to be archived with the release):");
    print!("{}", outcome.audit.render());

    // --- 5. export ---
    let released = write_csv(&outcome.db);
    println!("\noutgoing CSV:\n{released}");
    assert_eq!(outcome.final_report.risky_tuples(0.05).len(), 0);

    // the file round-trips: a later audit can re-screen the release as-is
    let reimported = read_csv("firm-survey", &released).expect("round-trips");
    let view2 = MicrodataView::from_db(&reimported, &dict).expect("view builds");
    let recheck = ReIdentification.evaluate(&view2).expect("re-screens");
    assert!(recheck.risky_tuples(0.05).is_empty());
    println!("re-screening the released file confirms: no tuple above T = 0.05");
}
