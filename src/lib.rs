//! # vadasa-suite — umbrella crate for the Vada-SA reproduction
//!
//! Re-exports the four member crates so the examples and the cross-crate
//! integration tests under `tests/` have a single dependency surface:
//!
//! - [`vadalog`] — the Warded Datalog± style reasoning engine;
//! - [`vadasa_core`] — the SDC framework (risk measures, anonymization,
//!   the anonymization cycle, business knowledge, declarative programs);
//! - [`vadasa_datagen`] — paper fixtures, the Figure 6 catalogue and the
//!   identity-oracle simulation;
//! - [`vadasa_linkage`] — the record-linkage attacker.

#![warn(missing_docs)]

pub use vadalog;
pub use vadasa_core;
pub use vadasa_datagen;
pub use vadasa_linkage;
