//! Cross-crate integration tests: the full Vada-SA pipeline from synthetic
//! data generation through categorization, risk estimation, anonymization
//! and empirical attack validation.

use vadalog::Value;
use vadasa_core::categorize::{Categorizer, ExperienceBase};
use vadasa_core::maybe_match::NullSemantics;
use vadasa_core::prelude::*;
use vadasa_datagen::generator::{generate, DatasetSpec, Regime};
use vadasa_datagen::oracle::IdentityOracle;
use vadasa_linkage::attack;

fn small_u() -> (MicrodataDb, MetadataDictionary) {
    generate(&DatasetSpec::new(2_000, 4, Regime::U), 11)
}

#[test]
fn full_pipeline_generate_categorize_anonymize() {
    let (db, reference_dict) = small_u();

    // re-categorize from scratch with Algorithm 1 and verify it recovers
    // the generator's ground truth
    let mut dict = MetadataDictionary::new();
    for attr in db.attributes() {
        dict.register_attr(&db.name, attr, "");
    }
    let mut categorizer = Categorizer::new(ExperienceBase::financial_defaults());
    categorizer.threshold = 0.6;
    categorizer
        .categorize(&mut dict, &db.name)
        .expect("categorizes");
    for attr in db.attributes() {
        let truth = reference_dict.category(&db.name, attr).unwrap();
        let inferred = dict.category(&db.name, attr).unwrap();
        if let (Some(t), Some(i)) = (truth, inferred) {
            assert_eq!(t, i, "attribute {attr} categorized differently");
        }
    }

    // run the cycle with the recovered dictionary (fall back to the
    // reference for anything the experience base could not cover)
    let work_dict = if dict.fully_categorized(&db.name).unwrap() {
        dict
    } else {
        reference_dict.clone()
    };
    let risk = KAnonymity::new(2);
    let anonymizer = LocalSuppression::default();
    let cycle = AnonymizationCycle::new(&risk, &anonymizer, CycleConfig::default());
    let outcome = cycle.run(&db, &work_dict).expect("cycle converges");
    assert_eq!(outcome.final_risky, 0);
    assert!(outcome.nulls_injected > 0, "the U regime has risky tuples");
    assert!(outcome.information_loss > 0.0 && outcome.information_loss <= 1.0);
}

#[test]
fn every_risk_measure_drives_the_cycle_to_convergence() {
    let (db, dict) = small_u();
    let anonymizer = LocalSuppression::default();
    let measures: Vec<Box<dyn RiskMeasure>> = vec![
        Box::new(KAnonymity::new(2)),
        Box::new(ReIdentification),
        Box::new(IndividualRisk::new(IrEstimator::PosteriorMean)),
        Box::new(Suda {
            msu_threshold: 3,
            max_msu_size: Some(3),
        }),
    ];
    for measure in measures {
        let cycle = AnonymizationCycle::new(measure.as_ref(), &anonymizer, CycleConfig::default());
        let outcome = cycle.run(&db, &dict).expect("cycle converges");
        assert_eq!(
            outcome.final_risky,
            0,
            "{} left risky tuples",
            measure.name()
        );
        // post-condition: no tuple over the threshold in the final report
        assert!(outcome.final_report.risky_tuples(0.5).is_empty());
    }
}

#[test]
fn anonymization_defeats_the_linkage_attacker() {
    let (db, dict) = small_u();
    let oracle = IdentityOracle::from_microdata(&db, &dict, "Id", 3, 60).expect("oracle");

    let before = attack(&db, &dict, &oracle, "Id").expect("attack");
    let risk = KAnonymity::new(2);
    let anonymizer = LocalSuppression::default();
    let cycle = AnonymizationCycle::new(&risk, &anonymizer, CycleConfig::default());
    let outcome = cycle.run(&db, &dict).expect("cycle converges");
    let after = attack(&outcome.db, &dict, &oracle, "Id").expect("attack");

    assert!(
        after.mean_success <= before.mean_success,
        "attack got easier: {} -> {}",
        before.mean_success,
        after.mean_success
    );
    assert!(after.certain_reidentifications <= before.certain_reidentifications);
    // the tuples that were anonymized have strictly larger blocks
    let mut improved = 0;
    for (b, a) in before.tuples.iter().zip(after.tuples.iter()) {
        assert!(a.candidates >= b.candidates);
        if a.candidates > b.candidates {
            improved += 1;
        }
    }
    assert!(improved > 0, "suppressions must widen some blocks");
}

#[test]
fn global_recoding_cycle_on_geography() {
    use vadasa_core::anonymize::italian_geography;
    // a geography-keyed table where recoding (not suppression) resolves risk
    let mut db = MicrodataDb::new("geo", ["id", "Area", "sector", "w"]).expect("schema");
    let rows = [
        ("a", "Milano", "Commerce", 50),
        ("b", "Torino", "Commerce", 50),
        ("c", "Roma", "Commerce", 60),
        ("d", "Firenze", "Commerce", 60),
        ("e", "Napoli", "Commerce", 70),
        ("f", "Bari", "Commerce", 70),
    ];
    for (id, area, sector, w) in rows {
        db.push_row(vec![
            Value::str(id),
            Value::str(area),
            Value::str(sector),
            Value::Int(w),
        ])
        .expect("row");
    }
    let mut dict = MetadataDictionary::new();
    for a in ["id", "Area", "sector", "w"] {
        dict.register_attr("geo", a, "");
    }
    dict.set_category("geo", "id", Category::Identifier)
        .unwrap();
    dict.set_category("geo", "Area", Category::QuasiIdentifier)
        .unwrap();
    dict.set_category("geo", "sector", Category::QuasiIdentifier)
        .unwrap();
    dict.set_category("geo", "w", Category::Weight).unwrap();

    let risk = KAnonymity::new(2);
    let anonymizer = GlobalRecoding::new(italian_geography());
    let cycle = AnonymizationCycle::new(&risk, &anonymizer, CycleConfig::default());
    let outcome = cycle.run(&db, &dict).expect("cycle converges");
    assert_eq!(outcome.final_risky, 0);
    assert_eq!(outcome.nulls_injected, 0, "recoding never injects nulls");
    assert!(outcome.recodings > 0);
    // every city must have been rolled up to its region (or further)
    for i in 0..outcome.db.len() {
        let area = outcome.db.value(i, "Area").expect("cell");
        let s = area.as_str().expect("constant");
        assert!(
            ["North", "Center", "South", "Italy"].contains(&s),
            "unexpected area {s}"
        );
    }
}

#[test]
fn cycle_with_standard_semantics_exhausts_risky_tuples() {
    let (db, dict) = generate(&DatasetSpec::new(500, 4, Regime::V), 2);
    let risk = KAnonymity::new(2);
    let anonymizer = LocalSuppression::default();
    let config = CycleConfig {
        semantics: NullSemantics::Standard,
        ..CycleConfig::default()
    };
    let cycle = AnonymizationCycle::new(&risk, &anonymizer, config);
    let outcome = cycle.run(&db, &dict).expect("terminates");
    // under the standard semantics nulls never help: risky tuples are
    // suppressed to exhaustion (4 nulls each) and stay risky
    if outcome.initial_risky > 0 {
        assert!(outcome.final_risky > 0);
        assert_eq!(outcome.nulls_injected % 4, 0);
        assert!(outcome.nulls_injected >= outcome.final_risky * 4);
    }
}

#[test]
fn audit_log_covers_every_change() {
    let (db, dict) = small_u();
    let risk = KAnonymity::new(3);
    let anonymizer = LocalSuppression::default();
    let cycle = AnonymizationCycle::new(&risk, &anonymizer, CycleConfig::default());
    let outcome = cycle.run(&db, &dict).expect("converges");
    assert_eq!(outcome.audit.suppressions(), outcome.nulls_injected);
    // each suppressed cell in the output table corresponds to a decision
    let qis = dict.quasi_identifiers(&db.name).unwrap();
    assert_eq!(outcome.db.null_cells(&qis), outcome.nulls_injected);
}
