//! Declarative–native equivalence on the paper's real fixture: every risk
//! program of Section 4.2 must produce, on the Figure 1 microdata, exactly
//! the risks the native implementations compute. This is the crate-level
//! guarantee that the scalable native kernels implement the *same
//! semantics* as the Vadalog rule listings.

use vadalog::Value;
use vadasa_core::maybe_match::NullSemantics;
use vadasa_core::prelude::*;
use vadasa_core::programs::{
    alg4_kanonymity, alg6_suda, run_control_program, run_risk_program, ALG3_REIDENTIFICATION,
    ALG5_INDIVIDUAL_RISK,
};
use vadasa_core::risk::RiskMeasure;
use vadasa_datagen::fixtures::inflation_growth_fig1;

fn native_view() -> (MicrodataDb, MetadataDictionary, MicrodataView) {
    let (db, dict) = inflation_growth_fig1();
    let view = MicrodataView::from_db_with(&db, &dict, NullSemantics::Standard, None).unwrap();
    (db, dict, view)
}

#[test]
fn reidentification_agrees_on_figure1() {
    let (db, dict, view) = native_view();
    let declarative = run_risk_program(ALG3_REIDENTIFICATION, &db, &dict).unwrap();
    let native = ReIdentification.evaluate(&view).unwrap();
    for (i, (d, n)) in declarative.iter().zip(native.risks.iter()).enumerate() {
        assert!((d - n).abs() < 1e-9, "tuple {}: {d} vs {n}", i + 1);
    }
    // and both match the paper's numbers
    assert!((declarative[14] - 1.0 / 30.0).abs() < 1e-9);
    assert!((declarative[6] - 1.0 / 300.0).abs() < 1e-9);
}

#[test]
fn kanonymity_agrees_on_figure1() {
    let (db, dict, view) = native_view();
    for k in [2usize, 3, 5] {
        let declarative = run_risk_program(&alg4_kanonymity(k), &db, &dict).unwrap();
        let native = KAnonymity::new(k).evaluate(&view).unwrap();
        assert_eq!(declarative, native.risks, "k = {k}");
    }
}

#[test]
fn individual_risk_agrees_on_figure1() {
    let (db, dict, view) = native_view();
    let declarative = run_risk_program(ALG5_INDIVIDUAL_RISK, &db, &dict).unwrap();
    let native = IndividualRisk::new(IrEstimator::Simple)
        .evaluate(&view)
        .unwrap();
    for (i, (d, n)) in declarative.iter().zip(native.risks.iter()).enumerate() {
        assert!((d - n).abs() < 1e-9, "tuple {}: {d} vs {n}", i + 1);
    }
}

#[test]
fn suda_agrees_on_figure1_restricted_qis() {
    // restrict to 4 QIs (the §4.2 worked example) to keep the declarative
    // combination enumeration small
    let (db, dict) = inflation_growth_fig1();
    let mut restricted_dict = MetadataDictionary::new();
    for (attr, meta) in dict.attrs("I&G").unwrap() {
        restricted_dict.register_attr("I&G", attr, meta.description.clone());
        let cat = match attr.as_str() {
            "Id" => Category::Identifier,
            "Area" | "Sector" | "Employees" | "ResidentialRev" => Category::QuasiIdentifier,
            "Weight" => Category::Weight,
            _ => Category::NonIdentifying,
        };
        restricted_dict.set_category("I&G", attr, cat).unwrap();
    }
    let declarative = run_risk_program(&alg6_suda(3), &db, &restricted_dict).unwrap();
    let view =
        MicrodataView::from_db_with(&db, &restricted_dict, NullSemantics::Standard, None).unwrap();
    let native = Suda::new(3).evaluate(&view).unwrap();
    for (i, (d, n)) in declarative.iter().zip(native.risks.iter()).enumerate() {
        assert!((d - n).abs() < 1e-9, "tuple {}: {d} vs {n}", i + 1);
    }
    // tuple 20 has an MSU of size 1 (Sector = Financial) → dangerous
    assert_eq!(declarative[19], 1.0);
}

#[test]
fn control_closure_agrees_on_random_graphs() {
    use vadasa_core::business::OwnershipGraph;
    // a deterministic pseudo-random graph over 12 entities
    let mut edges: Vec<(Value, Value, f64)> = Vec::new();
    let mut state = 0x1234_5678u64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..20 {
        let a = next() % 12;
        let b = next() % 12;
        if a == b {
            continue;
        }
        let w = 0.1 + (next() % 80) as f64 / 100.0;
        edges.push((
            Value::str(format!("c{a}")),
            Value::str(format!("c{b}")),
            w.min(0.95),
        ));
    }
    let declarative: std::collections::HashSet<(Value, Value)> =
        run_control_program(&edges).unwrap().into_iter().collect();
    let mut g = OwnershipGraph::new();
    for (x, y, w) in &edges {
        g.add_edge(x.clone(), y.clone(), *w);
    }
    let native = g.control_closure();
    assert_eq!(declarative, native);
}

#[test]
fn declarative_categorization_matches_native_on_figure4() {
    use vadasa_core::categorize::{Categorizer, ExperienceBase};
    use vadasa_core::programs::run_categorization_program;

    let (_, reference) = inflation_growth_fig1();
    let mut experience = ExperienceBase::financial_defaults();
    experience.add("residential revenue", Category::QuasiIdentifier);

    // declarative run
    let mut fresh = MetadataDictionary::new();
    for (attr, meta) in reference.attrs("I&G").unwrap() {
        fresh.register_attr("I&G", attr, meta.description.clone());
    }
    let (declarative, _violations) =
        run_categorization_program(&fresh, "I&G", &experience, 0.8).unwrap();

    // native run with the matching similarity threshold
    let mut dict = MetadataDictionary::new();
    for (attr, meta) in reference.attrs("I&G").unwrap() {
        dict.register_attr("I&G", attr, meta.description.clone());
    }
    let mut categorizer = Categorizer::new(experience);
    categorizer.threshold = 0.8;
    categorizer.categorize(&mut dict, "I&G").unwrap();

    for (attr, cat) in &declarative {
        let native = dict.category("I&G", attr).unwrap();
        assert_eq!(native, Some(*cat), "attribute {attr}");
    }
}
