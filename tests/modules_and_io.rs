//! Cross-crate tests for the plug-in architecture and the file round-trip:
//! the paper's module story (off-the-shelf risk plug-ins, user-swappable)
//! realized with the engine's `ModuleRegistry`, and a full
//! generate → anonymize → export → re-import → re-screen loop.

use vadalog::{Database, Engine, Module, ModuleRegistry, Value};
use vadasa_core::io::{read_csv, write_csv};
use vadasa_core::maybe_match::NullSemantics;
use vadasa_core::prelude::*;
use vadasa_core::programs::{
    alg4_kanonymity, microdata_to_facts, ALG2_TUPLE_REIFICATION, ALG3_REIDENTIFICATION,
};
use vadasa_datagen::fixtures::inflation_growth_fig1;
use vadasa_datagen::generator::{generate, DatasetSpec, Regime};

/// The Vada-SA architecture in module form: the reification module is
/// off-the-shelf, the risk slot is filled by exactly one plug-in.
#[test]
fn risk_plugins_compose_and_swap() {
    let mut registry = ModuleRegistry::new();
    registry
        .declare_extensional("val")
        .declare_extensional("cat")
        .declare_extensional("microdb");
    registry.register(Module::from_source("reify", ALG2_TUPLE_REIFICATION).unwrap());
    registry.register(Module::from_source("risk", &alg4_kanonymity(2)).unwrap());

    let (db, dict) = inflation_growth_fig1();
    let facts = microdata_to_facts(&db, &dict).unwrap();

    // k-anonymity plug-in
    let program = registry.compose(&["reify", "risk"]).unwrap();
    let result = Engine::new().run(&program, facts.clone()).unwrap();
    let kanon_rows = result.db.rows("riskOutput").len();
    assert_eq!(kanon_rows, db.len());

    // a business expert swaps the risk plug-in for re-identification
    registry.register(Module::from_source("risk", ALG3_REIDENTIFICATION).unwrap());
    let program = registry.compose(&["reify", "risk"]).unwrap();
    let result = Engine::new().run(&program, facts).unwrap();
    // the swapped plug-in reports 1/Σw risks — compare against native
    let view = MicrodataView::from_db_with(&db, &dict, NullSemantics::Standard, None).unwrap();
    let native = ReIdentification.evaluate(&view).unwrap();
    for row in result.db.rows("riskOutput") {
        let (Value::Int(i), r) = (&row[0], &row[1]) else {
            panic!("unexpected row {row:?}")
        };
        let r = r.as_f64().unwrap();
        assert!(
            (r - native.risks[*i as usize]).abs() < 1e-9,
            "tuple {i}: {r} vs {}",
            native.risks[*i as usize]
        );
    }
}

/// A module missing its inputs is rejected with a named predicate — the
/// wiring check a business expert sees when a plug-in is incomplete.
#[test]
fn incomplete_plugin_wiring_is_diagnosed() {
    let mut registry = ModuleRegistry::new();
    registry.register(Module::from_source("risk", &alg4_kanonymity(2)).unwrap());
    let err = registry.compose(&["risk"]).unwrap_err();
    assert!(err.to_string().contains("tuple"), "err: {err}");
}

/// Full file loop: synthesize, anonymize, export to CSV, re-import, and
/// verify the re-imported release carries identical residual risk.
#[test]
fn export_reimport_preserves_release_risk() {
    let (db, dict) = generate(&DatasetSpec::new(1_500, 4, Regime::U), 21);
    let risk = KAnonymity::new(2);
    let anonymizer = LocalSuppression::default();
    let outcome = AnonymizationCycle::new(&risk, &anonymizer, CycleConfig::default())
        .run(&db, &dict)
        .unwrap();
    assert!(outcome.nulls_injected > 0);

    let text = write_csv(&outcome.db);
    let back = read_csv(&db.name, &text).unwrap();
    assert_eq!(back.len(), outcome.db.len());

    let v1 = MicrodataView::from_db(&outcome.db, &dict).unwrap();
    let v2 = MicrodataView::from_db(&back, &dict).unwrap();
    let r1 = risk.evaluate(&v1).unwrap();
    let r2 = risk.evaluate(&v2).unwrap();
    assert_eq!(r1.risks, r2.risks);
    // the labelled-null structure survived
    let qis = dict.quasi_identifiers(&db.name).unwrap();
    assert_eq!(back.null_cells(&qis), outcome.nulls_injected);
}

/// The engine can consume a CSV-imported table end to end: facts from the
/// re-imported release feed the declarative risk program.
#[test]
fn reimported_release_feeds_the_engine() {
    let (db, dict) = generate(&DatasetSpec::new(300, 4, Regime::V), 4);
    let risk = KAnonymity::new(2);
    let anonymizer = LocalSuppression::default();
    let outcome = AnonymizationCycle::new(&risk, &anonymizer, CycleConfig::default())
        .run(&db, &dict)
        .unwrap();
    let back = read_csv(&db.name, &write_csv(&outcome.db)).unwrap();

    let mut source = String::from(ALG2_TUPLE_REIFICATION);
    source.push_str(&alg4_kanonymity(2));
    let program = vadalog::parse_program(&source).unwrap();
    let facts: Database = microdata_to_facts(&back, &dict).unwrap();
    let result = Engine::new().run(&program, facts).unwrap();
    assert_eq!(result.db.rows("riskOutput").len(), back.len());
}
