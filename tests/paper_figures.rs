//! Regression net for the paper's evaluation claims, at test-friendly
//! scale: every qualitative statement EXPERIMENTS.md reports as reproduced
//! is asserted here, so a regression in the cycle, the semantics or the
//! generator shows up as a failing test and not as a silently drifted
//! figure.

use vadasa_bench::{paper_cycle_config, run_paper_cycle, synthetic_ownership_focused};
use vadasa_core::business::{ClusterMap, ClusterRisk};
use vadasa_core::cycle::AnonymizationCycle;
use vadasa_core::maybe_match::NullSemantics;
use vadasa_core::prelude::*;
use vadasa_datagen::generator::{generate, DatasetSpec, Regime};

const N: usize = 5_000;
const SEED: u64 = 20210323;

fn dataset(regime: Regime) -> (MicrodataDb, MetadataDictionary) {
    generate(&DatasetSpec::new(N, 4, regime), SEED)
}

/// Figure 7a: nulls grow monotonically with k and with the regime.
#[test]
fn fig7a_shape_nulls_monotone_in_k_and_regime() {
    let mut per_regime: Vec<Vec<usize>> = Vec::new();
    for regime in [Regime::W, Regime::U, Regime::V] {
        let (db, dict) = dataset(regime);
        let mut series = Vec::new();
        for k in [2usize, 3, 4] {
            let risk = KAnonymity::new(k);
            let out = run_paper_cycle(&db, &dict, &risk, paper_cycle_config());
            series.push(out.nulls_injected);
        }
        assert!(
            series.windows(2).all(|w| w[0] <= w[1]),
            "{regime:?}: {series:?} not monotone in k"
        );
        per_regime.push(series);
    }
    for i in 0..3 {
        assert!(
            per_regime[0][i] < per_regime[1][i] && per_regime[1][i] < per_regime[2][i],
            "W < U < V violated at k index {i}: {per_regime:?}"
        );
    }
}

/// Figure 7b: information loss stays bounded and well under the naive
/// one-null-per-risky-tuple ceiling (the sharing effect).
#[test]
fn fig7b_shape_information_loss_band() {
    let (db, dict) = dataset(Regime::U);
    for k in [2usize, 4] {
        let risk = KAnonymity::new(k);
        let out = run_paper_cycle(&db, &dict, &risk, paper_cycle_config());
        assert!(out.information_loss > 0.0);
        assert!(
            out.information_loss < 0.30,
            "k={k}: loss {:.3} out of band",
            out.information_loss
        );
        // sharing: strictly fewer nulls than initially-risky tuples would
        // naively require
        assert!(out.nulls_injected < out.initial_risky * 2);
    }
}

/// Figure 7c: the standard labelled-null semantics proliferates symbols.
#[test]
fn fig7c_shape_standard_semantics_proliferates() {
    let (db, dict) = dataset(Regime::U);
    let risk = KAnonymity::new(2);
    let maybe = run_paper_cycle(&db, &dict, &risk, paper_cycle_config());
    let mut config = paper_cycle_config();
    config.semantics = NullSemantics::Standard;
    let standard = run_paper_cycle(&db, &dict, &risk, config);
    assert!(
        standard.nulls_injected >= maybe.nulls_injected * 3,
        "standard {} vs maybe-match {}",
        standard.nulls_injected,
        maybe.nulls_injected
    );
    // under the standard semantics risky tuples exhaust all 4 QIs
    assert_eq!(standard.nulls_injected % 4, 0);
}

/// Figure 7d: risk propagation over control clusters increases the work.
#[test]
fn fig7d_shape_relationships_increase_nulls() {
    let (db, dict) = dataset(Regime::U);
    let view = MicrodataView::from_db(&db, &dict).unwrap();
    let baseline = KAnonymity::new(2).evaluate(&view).unwrap();
    let risky_rows = baseline.risky_tuples(0.5);

    let mut series = Vec::new();
    for rels in [0usize, 60, 120] {
        let graph = synthetic_ownership_focused(&db, "Id", rels, 77, &risky_rows, 0.2);
        let clusters = ClusterMap::from_graph(&graph, &db, "Id").unwrap();
        let base = KAnonymity::new(2);
        let risk = ClusterRisk::new(&base, clusters);
        let anonymizer = LocalSuppression::default();
        let out = AnonymizationCycle::new(&risk, &anonymizer, paper_cycle_config())
            .run(&db, &dict)
            .unwrap();
        series.push(out.nulls_injected);
    }
    assert!(
        series[0] < series[2],
        "relationships should increase nulls: {series:?}"
    );
}

/// Figure 7e ordering at equal input: k-anonymity risk evaluation is
/// cheaper than the simulated-library individual risk.
#[test]
fn fig7e_shape_library_dominates_individual_risk() {
    let (db, dict) = dataset(Regime::U);
    let kanon = KAnonymity::new(2);
    let out_k = run_paper_cycle(&db, &dict, &kanon, paper_cycle_config());
    let ir = IndividualRisk::new(IrEstimator::SimulatedLibrary { samples: 2_000 });
    let out_ir = run_paper_cycle(&db, &dict, &ir, paper_cycle_config());
    assert!(
        out_ir.risk_eval_seconds() > out_k.risk_eval_seconds(),
        "IR {}s should exceed k-anon {}s",
        out_ir.risk_eval_seconds(),
        out_k.risk_eval_seconds()
    );
}

/// Figure 7f flavour: SUDA enumerates more as the QI count grows, the
/// full-combination measures stay flat in risky-set size.
#[test]
fn fig7f_shape_suda_work_grows_with_width() {
    let narrow = generate(&DatasetSpec::new(2_000, 4, Regime::W), SEED);
    let wide = generate(&DatasetSpec::new(2_000, 8, Regime::W), SEED);
    let suda = Suda {
        msu_threshold: 3,
        max_msu_size: Some(3),
    };
    let t_narrow = {
        let view = MicrodataView::from_db(&narrow.0, &narrow.1).unwrap();
        let t0 = std::time::Instant::now();
        suda.evaluate(&view).unwrap();
        t0.elapsed()
    };
    let t_wide = {
        let view = MicrodataView::from_db(&wide.0, &wide.1).unwrap();
        let t0 = std::time::Instant::now();
        suda.evaluate(&view).unwrap();
        t0.elapsed()
    };
    // C(8,≤3)=92 masks vs C(4,≤3)=14: meaningfully more work
    assert!(
        t_wide > t_narrow,
        "wide {t_wide:?} should exceed narrow {t_narrow:?}"
    );
}

/// The attack simulation backs the risk model (the §2.2 link): with an
/// uncapped oracle the empirical success probability equals the modelled
/// re-identification risk up to weight rounding.
#[test]
fn attack_success_tracks_reidentification_risk() {
    use vadasa_datagen::oracle::IdentityOracle;
    use vadasa_linkage::attack;
    let (db, dict) = generate(&DatasetSpec::new(300, 4, Regime::V), SEED);
    let oracle = IdentityOracle::from_microdata(&db, &dict, "Id", 5, 1_000_000).unwrap();
    let report = attack(&db, &dict, &oracle, "Id").unwrap();
    let view = MicrodataView::from_db(&db, &dict).unwrap();
    let risks = ReIdentification.evaluate(&view).unwrap();
    for (t, r) in report.tuples.iter().zip(risks.risks.iter()) {
        let rel = (t.success_probability - r).abs() / r.max(1e-12);
        assert!(
            rel < 0.05,
            "tuple {}: attack {} vs modelled risk {} (rel gap {:.3})",
            t.row,
            t.success_probability,
            r,
            rel
        );
    }
}
