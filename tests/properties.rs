//! Property-based tests for the invariants listed in DESIGN.md §6:
//! maybe-match dominance, suppression monotonicity, MSU soundness and
//! minimality, cycle convergence, cluster-risk bounds, and aggregate
//! order-independence in the engine.

use proptest::prelude::*;
use vadalog::Value;
use vadasa_core::business::combined_cluster_risk;
use vadasa_core::maybe_match::{group_stats, rows_match, NullSemantics};
use vadasa_core::metrics::information_loss;
use vadasa_core::prelude::*;
use vadasa_core::risk::minimal_sample_uniques;

/// Strategy: a small categorical table, optionally with labelled nulls.
fn qi_table(
    max_rows: usize,
    cols: usize,
    with_nulls: bool,
) -> impl Strategy<Value = Vec<Vec<Value>>> {
    let cell = if with_nulls {
        prop_oneof![
            3 => (0u8..4).prop_map(|v| Value::str(format!("v{v}"))),
            1 => (0u64..8).prop_map(Value::Null),
        ]
        .boxed()
    } else {
        (0u8..4).prop_map(|v| Value::str(format!("v{v}"))).boxed()
    };
    proptest::collection::vec(proptest::collection::vec(cell, cols), 1..=max_rows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariant 3: maybe-match group sizes dominate standard ones.
    #[test]
    fn maybe_match_counts_dominate_standard(rows in qi_table(24, 3, true)) {
        let mm = group_stats(&rows, None, NullSemantics::MaybeMatch);
        let st = group_stats(&rows, None, NullSemantics::Standard);
        for (m, s) in mm.count.iter().zip(st.count.iter()) {
            prop_assert!(m >= s);
        }
    }

    /// group_stats agrees with the O(n²) definition of =⊥ matching.
    #[test]
    fn group_stats_matches_naive_quadratic(rows in qi_table(18, 3, true)) {
        for sem in [NullSemantics::MaybeMatch, NullSemantics::Standard] {
            let fast = group_stats(&rows, None, sem);
            for (i, target) in rows.iter().enumerate() {
                let naive = rows.iter().filter(|r| rows_match(target, r, sem)).count();
                prop_assert_eq!(fast.count[i], naive, "row {} under {:?}", i, sem);
            }
        }
    }

    /// Invariant 2: a suppression never increases any tuple's k-anonymity
    /// or re-identification risk under maybe-match.
    #[test]
    fn suppression_is_risk_monotone(
        rows in qi_table(16, 3, false),
        target in 0usize..16,
        col in 0usize..3,
    ) {
        let target = target % rows.len();
        let qi_names: Vec<String> = vec!["a".into(), "b".into(), "c".into()];
        let view_before = MicrodataView::from_rows(
            qi_names.clone(),
            rows.clone(),
            None,
            NullSemantics::MaybeMatch,
        );
        let mut after_rows = rows.clone();
        after_rows[target][col] = Value::Null(99);
        let view_after =
            MicrodataView::from_rows(qi_names, after_rows, None, NullSemantics::MaybeMatch);

        let before = KAnonymity::new(2).evaluate(&view_before).unwrap();
        let after = KAnonymity::new(2).evaluate(&view_after).unwrap();
        for (b, a) in before.risks.iter().zip(after.risks.iter()) {
            prop_assert!(a <= b, "k-anonymity risk increased");
        }
        let before = ReIdentification.evaluate(&view_before).unwrap();
        let after = ReIdentification.evaluate(&view_after).unwrap();
        for (b, a) in before.risks.iter().zip(after.risks.iter()) {
            prop_assert!(*a <= *b + 1e-12, "re-identification risk increased");
        }
    }

    /// Invariant 4: every reported MSU is sample-unique and minimal.
    #[test]
    fn msus_are_sound_and_minimal(rows in qi_table(14, 4, false)) {
        use vadasa_core::maybe_match::group_stats_on;
        let view = MicrodataView::from_rows(
            (0..4).map(|i| format!("q{i}")).collect(),
            rows.clone(),
            None,
            NullSemantics::Standard,
        );
        let msus = minimal_sample_uniques(&view, None);
        for (row, set) in msus.iter().enumerate() {
            for &mask in &set.masks {
                let positions: Vec<usize> = (0..4).filter(|c| mask & (1 << c) != 0).collect();
                let stats = group_stats_on(&rows, &positions, None, NullSemantics::Standard);
                prop_assert_eq!(stats.count[row], 1, "MSU not unique");
                let mut sub = (mask.wrapping_sub(1)) & mask;
                while sub != 0 {
                    let sub_pos: Vec<usize> = (0..4).filter(|c| sub & (1 << c) != 0).collect();
                    let s = group_stats_on(&rows, &sub_pos, None, NullSemantics::Standard);
                    prop_assert!(s.count[row] > 1, "MSU not minimal");
                    sub = (sub.wrapping_sub(1)) & mask;
                }
            }
        }
    }

    /// Invariant 4 (completeness side): a row unique on the full QI set
    /// has at least one MSU.
    #[test]
    fn unique_rows_have_an_msu(rows in qi_table(14, 3, false)) {
        let view = MicrodataView::from_rows(
            (0..3).map(|i| format!("q{i}")).collect(),
            rows.clone(),
            None,
            NullSemantics::Standard,
        );
        let stats = group_stats(&rows, None, NullSemantics::Standard);
        let msus = minimal_sample_uniques(&view, None);
        for (i, &c) in stats.count.iter().enumerate() {
            if c == 1 {
                prop_assert!(!msus[i].masks.is_empty(), "unique row {i} has no MSU");
            } else {
                prop_assert!(msus[i].masks.is_empty(), "non-unique row {i} has an MSU");
            }
        }
    }

    /// Invariant 8: cluster risk bounds.
    #[test]
    fn cluster_risk_is_bounded(risks in proptest::collection::vec(0.0f64..=1.0, 1..8)) {
        let combined = combined_cluster_risk(&risks);
        let max = risks.iter().copied().fold(0.0f64, f64::max);
        prop_assert!(combined <= 1.0 + 1e-12);
        prop_assert!(combined >= max - 1e-12);
    }

    /// Invariant 9: information loss stays in the unit interval.
    #[test]
    fn information_loss_bounded(nulls in 0usize..1000, risky in 0usize..300, qi in 0usize..10) {
        let loss = information_loss(nulls, risky, qi);
        prop_assert!((0.0..=1.0).contains(&loss));
    }

    /// Invariant 1: the anonymization cycle terminates with every tuple at
    /// or below the threshold (or exhausted).
    #[test]
    fn cycle_converges_on_random_tables(rows in qi_table(20, 3, false), k in 2usize..4) {
        let mut db = MicrodataDb::new("prop", ["id", "a", "b", "c", "w"]).unwrap();
        for (i, r) in rows.iter().enumerate() {
            let mut cells = vec![Value::Int(i as i64)];
            cells.extend(r.iter().cloned());
            cells.push(Value::Int(5));
            db.push_row(cells).unwrap();
        }
        let mut dict = MetadataDictionary::new();
        for a in ["id", "a", "b", "c", "w"] {
            dict.register_attr("prop", a, "");
        }
        dict.set_category("prop", "id", Category::Identifier).unwrap();
        for a in ["a", "b", "c"] {
            dict.set_category("prop", a, Category::QuasiIdentifier).unwrap();
        }
        dict.set_category("prop", "w", Category::Weight).unwrap();

        let risk = KAnonymity::new(k);
        let anonymizer = LocalSuppression::default();
        let cycle = AnonymizationCycle::new(&risk, &anonymizer, CycleConfig::default());
        let outcome = cycle.run(&db, &dict).unwrap();
        // Post-condition: every tuple either satisfies the threshold or was
        // exhausted. With maybe-match and 3 QI columns a fully suppressed
        // row matches everything, so exhaustion is only possible when the
        // table itself is smaller than k.
        if rows.len() >= k {
            prop_assert_eq!(outcome.final_risky, 0);
        }
        prop_assert!(outcome.nulls_injected <= rows.len() * 3);
    }

    /// Invariant 7 (engine): monotonic aggregates are insertion-order
    /// independent.
    #[test]
    fn engine_aggregates_are_order_independent(mut pairs in proptest::collection::vec((0i64..5, 0i64..50, 1i64..20), 1..30)) {
        use vadalog::{parse_program, Database, Engine};
        let program = parse_program("out(G, S) :- t(G, I, W), S = msum(W, <I>).").unwrap();
        let run = |data: &[(i64, i64, i64)]| {
            let mut db = Database::new();
            for (g, i, w) in data {
                db.insert("t", vec![Value::Int(*g), Value::Int(*i), Value::Int(*w)]);
            }
            let mut rows = Engine::new().run(&program, db).unwrap().db.rows("out");
            rows.sort();
            rows
        };
        let forward = run(&pairs);
        pairs.reverse();
        let backward = run(&pairs);
        prop_assert_eq!(forward, backward);
    }

    /// Microaggregation preserves column totals and reaches k for every
    /// group, on arbitrary numeric columns.
    #[test]
    fn microaggregation_invariants(values in proptest::collection::vec(-1000i64..1000, 1..60), k in 1usize..6) {
        use vadasa_core::anonymize::microaggregate;
        let mut db = MicrodataDb::new("m", ["x"]).unwrap();
        for v in &values {
            db.push_row(vec![Value::Int(*v)]).unwrap();
        }
        let before: f64 = values.iter().map(|&v| v as f64).sum();
        let out = microaggregate(&mut db, "x", k).unwrap();
        let col = db.numeric_column("x").unwrap();
        let after: f64 = col.iter().sum();
        prop_assert!((before - after).abs() < 1e-6, "total moved: {before} -> {after}");
        prop_assert!(out.sse >= 0.0);
        // group sizes ≥ min(k, n)
        let k_eff = k.min(values.len());
        let rows: Vec<Vec<Value>> = col.into_iter().map(|v| vec![Value::Float(v)]).collect();
        let stats = group_stats(&rows, None, NullSemantics::Standard);
        prop_assert!(stats.count.iter().all(|&c| c >= k_eff));
    }

    /// Presence risk is a probability and never below the uniform share.
    #[test]
    fn presence_risk_bounds(weights in proptest::collection::vec(1.0f64..100.0, 1..20)) {
        let rows: Vec<Vec<Value>> = weights.iter().map(|_| vec![Value::str("same")]).collect();
        let view = MicrodataView::from_rows(
            vec!["q".into()],
            rows,
            Some(weights.clone()),
            NullSemantics::MaybeMatch,
        );
        let report = PresenceRisk.evaluate(&view).unwrap();
        let total: f64 = weights.iter().sum();
        for (r, w) in report.risks.iter().zip(weights.iter()) {
            prop_assert!((0.0..=1.0).contains(r));
            prop_assert!((r - w / total).abs() < 1e-9);
        }
        // risks over one class sum to 1 (a full probability split)
        let sum: f64 = report.risks.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    /// The printer round-trip holds for the generated k-anonymity program
    /// at any k.
    #[test]
    fn generated_programs_roundtrip(k in 2usize..50) {
        use vadalog::{parse_program, print_program};
        use vadasa_core::programs::{alg4_kanonymity, ALG2_TUPLE_REIFICATION};
        let src = format!("{}{}", ALG2_TUPLE_REIFICATION, alg4_kanonymity(k));
        let p1 = parse_program(&src).unwrap();
        let p2 = parse_program(&print_program(&p1)).unwrap();
        prop_assert_eq!(p1, p2);
    }

    /// Weight estimation from an oracle is exact for null-free samples.
    #[test]
    fn oracle_weights_count_matches(rows in qi_table(12, 2, false)) {
        use vadasa_core::weights::from_oracle;
        // oracle = 3 copies of the sample
        let mut oracle = rows.clone();
        oracle.extend(rows.clone());
        oracle.extend(rows.clone());
        let w = from_oracle(&rows, &oracle);
        let stats = group_stats(&rows, None, NullSemantics::Standard);
        for (wi, &c) in w.iter().zip(stats.count.iter()) {
            prop_assert_eq!(*wi, 3.0 * c as f64);
        }
    }
}
