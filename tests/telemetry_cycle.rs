//! Per-iteration cycle telemetry: the [`CycleProfile`] on a
//! [`CycleOutcome`] must agree with the audit log and the aggregate
//! counters, risky-tuple counts must shrink monotonically, and a
//! non-converging run must still hand back its partial records.

use std::sync::Arc;
use vadalog::Value;
use vadasa_core::cycle::CycleError;
use vadasa_core::obs::Recorder;
use vadasa_core::pipeline::Vadasa;
use vadasa_core::prelude::*;
use vadasa_core::report::render_profile;

/// A table with three singleton equivalence classes on (area, sector) so
/// 2-anonymity needs several suppression steps.
fn survey() -> (MicrodataDb, MetadataDictionary) {
    let mut db = MicrodataDb::new("survey", ["id", "area", "sector", "weight"]).unwrap();
    let rows = [
        (1, "North", "Commerce", 90),
        (2, "North", "Commerce", 90),
        (3, "North", "Energy", 3),
        (4, "South", "Textiles", 40),
        (5, "East", "Energy", 12),
    ];
    for (id, a, s, w) in rows {
        db.push_row(vec![
            Value::Int(id),
            Value::str(a),
            Value::str(s),
            Value::Int(w),
        ])
        .unwrap();
    }
    let mut dict = MetadataDictionary::new();
    for a in ["id", "area", "sector", "weight"] {
        dict.register_attr("survey", a, "");
    }
    dict.set_category("survey", "id", Category::Identifier)
        .unwrap();
    dict.set_category("survey", "area", Category::QuasiIdentifier)
        .unwrap();
    dict.set_category("survey", "sector", Category::QuasiIdentifier)
        .unwrap();
    dict.set_category("survey", "weight", Category::Weight)
        .unwrap();
    (db, dict)
}

#[test]
fn cycle_profile_agrees_with_outcome_and_audit() {
    let (db, dict) = survey();
    let risk = KAnonymity::new(2);
    let anonymizer = LocalSuppression::default();
    let config = CycleConfig {
        granularity: StepGranularity::OneTuplePerIteration,
        ..CycleConfig::default()
    };
    let out = AnonymizationCycle::new(&risk, &anonymizer, config)
        .run(&db, &dict)
        .unwrap();
    assert_eq!(out.final_risky, 0);
    assert!(out.iterations >= 2, "one-tuple steps need several rounds");

    // one record per iteration plus the final converged evaluation
    let records = &out.profile.iterations;
    assert_eq!(records.len(), out.iterations + 1);
    assert_eq!(records.last().unwrap().heuristic, "converged");
    assert_eq!(records.last().unwrap().targets, 0);
    for (i, r) in records.iter().enumerate() {
        assert_eq!(r.iteration, i);
    }

    // action counts line up with the outcome and the audit trail
    let suppressions: usize = records.iter().map(|r| r.suppressions).sum();
    assert_eq!(suppressions, out.nulls_injected);
    assert_eq!(suppressions, out.audit.suppressions());
    let recodings: usize = records.iter().map(|r| r.recodings).sum();
    assert_eq!(recodings, out.recodings);

    // the first record sees the pristine table, and under suppression-only
    // anonymization the risky count never increases
    assert_eq!(records[0].risky, out.initial_risky);
    for pair in records.windows(2) {
        assert!(
            pair[1].risky <= pair[0].risky,
            "risky went {} → {}",
            pair[0].risky,
            pair[1].risky
        );
    }

    // risk landscape fields are coherent
    for r in records {
        assert!(r.min_risk <= r.mean_risk && r.mean_risk <= r.max_risk);
        assert!(r.dur_ns >= r.risk_eval_ns);
    }
    assert_eq!(
        out.profile.risk_eval_ns,
        records.iter().map(|r| r.risk_eval_ns).sum::<u64>()
    );
    assert!((out.risk_eval_seconds() - out.profile.risk_eval_ns as f64 / 1e9).abs() < 1e-12);

    // and the rendered table shows every iteration
    let table = render_profile(&out.profile);
    assert!(table.contains(&format!("{} iteration(s)", records.len())));
    assert!(table.contains("converged"));
}

#[test]
fn non_convergence_carries_partial_profile_and_audit() {
    let (db, dict) = survey();
    let risk = KAnonymity::new(2);
    let anonymizer = LocalSuppression::default();
    let config = CycleConfig {
        granularity: StepGranularity::OneTuplePerIteration,
        max_iterations: 1,
        fallback: FallbackPolicy::Error,
        ..CycleConfig::default()
    };
    let err = AnonymizationCycle::new(&risk, &anonymizer, config)
        .run(&db, &dict)
        .unwrap_err();
    match err {
        CycleError::DidNotConverge {
            iterations,
            still_risky,
            partial,
        } => {
            assert_eq!(iterations, 1);
            assert!(still_risky > 0);
            // the partial profile covers the performed iteration plus the
            // capped re-evaluation, and the audit saw the step's actions
            assert_eq!(partial.profile.iterations.len(), 2);
            assert_eq!(
                partial.profile.iterations.last().unwrap().heuristic,
                "iteration cap hit"
            );
            let suppressed: usize = partial
                .profile
                .iterations
                .iter()
                .map(|r| r.suppressions)
                .sum();
            assert!(suppressed >= 1);
            assert_eq!(suppressed, partial.audit.suppressions());
        }
        other => panic!("expected DidNotConverge, got {other:?}"),
    }
}

#[test]
fn pipeline_replays_cycle_events_into_collector() {
    let (db, _) = survey();
    let recorder = Arc::new(Recorder::new());
    let release = Vadasa::new()
        .k_anonymity(2)
        .collector(recorder.clone())
        .run(&db)
        .unwrap();
    let spans = recorder.events_named("cycle.iteration");
    assert_eq!(spans.len(), release.outcome.profile.iterations.len());
    assert_eq!(recorder.events_named("cycle.run").len(), 1);
    assert!(recorder.histogram("cycle.iteration").is_some());
}
