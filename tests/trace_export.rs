//! Trace exporter tests: golden files for the Chrome `trace_event` and
//! collapsed-stack renderings of a fixed Fig. 5-style cycle profile, a
//! Recorder ↔ JSON-lines equivalence check, and a property test that the
//! emitted span trees always nest (child intervals inside their parent's)
//! no matter how hostile the recorded durations are.
//!
//! The golden files live in `tests/golden/`. To regenerate after an
//! intentional exporter change, run with `UPDATE_GOLDEN=1` and review the
//! diff like any other code change.

use proptest::prelude::*;
use std::sync::Arc;
use vadasa_core::cycle::{CycleProfile, IterationRecord};
use vadasa_core::obs::trace::{TraceBuilder, TraceTree};
use vadasa_core::obs::{json, Fanout, JsonLinesWriter, Obs, Recorder};
use vadasa_core::progress;

/// A deterministic profile shaped like the paper's Figure 5 run: three
/// iterations (the last one the converged evaluation), fixed durations.
fn fig5_profile() -> CycleProfile {
    CycleProfile {
        iterations: vec![
            IterationRecord {
                iteration: 0,
                risky: 3,
                exhausted: 0,
                min_risk: 0.0,
                mean_risk: 0.5,
                max_risk: 1.0,
                heuristic: "less-significant-first/all-risky → row 5".into(),
                targets: 3,
                suppressions: 2,
                recodings: 0,
                risk_eval_ns: 150_000,
                dur_ns: 400_000,
            },
            IterationRecord {
                iteration: 1,
                risky: 1,
                exhausted: 0,
                min_risk: 0.0,
                mean_risk: 0.25,
                max_risk: 1.0,
                heuristic: "less-significant-first/all-risky → row 2".into(),
                targets: 1,
                suppressions: 1,
                recodings: 0,
                risk_eval_ns: 120_000,
                dur_ns: 350_000,
            },
            IterationRecord {
                iteration: 2,
                risky: 0,
                exhausted: 0,
                min_risk: 0.0,
                mean_risk: 0.0,
                max_risk: 0.0,
                heuristic: "converged".into(),
                targets: 0,
                suppressions: 0,
                recodings: 0,
                risk_eval_ns: 100_000,
                dur_ns: 250_000,
            },
        ],
        risk_eval_ns: 370_000,
        total_ns: 1_000_000,
        fallback: None,
        warm: Default::default(),
        journal: Default::default(),
        progress: progress::estimate(&[3, 1, 0]),
    }
}

fn emit_to_tree(profile: &CycleProfile) -> TraceTree {
    let rec = Recorder::new();
    profile.emit(&Obs::new(Some(&rec)));
    TraceBuilder::from_recorder(&rec)
}

fn check_golden(name: &str, actual: &str) {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("cannot read golden {path}: {e}; run with UPDATE_GOLDEN=1 to create it")
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from its golden file; if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn chrome_trace_matches_golden() {
    let tree = emit_to_tree(&fig5_profile());
    let mut actual = tree.chrome_trace_json();
    actual.push('\n');
    check_golden("fig5_trace.json", &actual);
}

#[test]
fn collapsed_stacks_match_golden() {
    let tree = emit_to_tree(&fig5_profile());
    check_golden("fig5_collapsed.txt", &tree.collapsed_stacks());
}

#[test]
fn chrome_trace_is_valid_json_with_nested_complete_events() {
    let tree = emit_to_tree(&fig5_profile());
    let parsed = json::parse(&tree.chrome_trace_json()).expect("chrome trace parses");
    let json::Json::Arr(events) = parsed.get("traceEvents").expect("traceEvents").clone() else {
        panic!("traceEvents is not an array");
    };
    // one cycle.run root, 3 iterations, 3 risk-eval grandchildren, one
    // aggregate risk-eval child
    assert_eq!(events.len(), tree.nodes.len());
    assert_eq!(events.len(), 8);
    for e in &events {
        assert_eq!(e.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert!(e.get("ts").and_then(|v| v.as_f64()).is_some());
        assert!(e.get("dur").and_then(|v| v.as_f64()).is_some());
    }
    assert_eq!(
        parsed.get("displayTimeUnit").and_then(|v| v.as_str()),
        Some("ms")
    );
}

/// The JSON-lines sink and the in-process recorder reconstruct the same
/// tree: exporter output is byte-for-byte identical through either path.
#[test]
fn json_lines_round_trip_reproduces_the_recorder_tree() {
    let profile = fig5_profile();
    let rec = Arc::new(Recorder::new());
    let sink = Arc::new(JsonLinesWriter::new(Vec::<u8>::new()));
    let fanout = Fanout::new(vec![
        rec.clone() as Arc<dyn vadasa_core::obs::Collector>,
        sink.clone(),
    ]);
    profile.emit(&Obs::new(Some(&fanout)));

    let from_recorder = TraceBuilder::from_recorder(&rec);
    drop(fanout);
    let Ok(sink) = Arc::try_unwrap(sink) else {
        panic!("sole owner after fanout drop");
    };
    let bytes = sink.into_inner();
    let text = String::from_utf8(bytes).expect("utf-8 telemetry");
    let from_lines = TraceBuilder::from_json_lines(&text);

    assert_eq!(
        from_recorder.chrome_trace_json(),
        from_lines.chrome_trace_json()
    );
    assert_eq!(
        from_recorder.collapsed_stacks(),
        from_lines.collapsed_stacks()
    );
}

/// Nesting invariants every emitted tree must satisfy, however the
/// recorded durations relate to the recorded total.
fn assert_nested(tree: &TraceTree) {
    for node in &tree.nodes {
        if let Some(p) = node.parent {
            let parent = &tree.nodes[p];
            assert!(
                node.start_ns >= parent.start_ns,
                "child {} starts before parent {}",
                node.name,
                parent.name
            );
            assert!(
                node.end_ns() <= parent.end_ns(),
                "child {} ({}..{}) ends past parent {} ({}..{})",
                node.name,
                node.start_ns,
                node.end_ns(),
                parent.name,
                parent.start_ns,
                parent.end_ns()
            );
        }
    }
}

proptest! {
    /// Hostile per-iteration durations — longer than the run, zero-width,
    /// risk-eval larger than its iteration — still produce a properly
    /// nested tree with one `cycle.run` root, one child per iteration,
    /// and one risk-eval grandchild each.
    #[test]
    fn cycle_emit_always_produces_nested_spans(
        durs in proptest::collection::vec((0u64..2_000_000, 0u64..2_000_000), 0..16),
        total in 0u64..3_000_000,
    ) {
        let profile = CycleProfile {
            iterations: durs
                .iter()
                .enumerate()
                .map(|(i, &(dur_ns, risk_eval_ns))| IterationRecord {
                    iteration: i,
                    risky: 1,
                    exhausted: 0,
                    min_risk: 0.0,
                    mean_risk: 0.5,
                    max_risk: 1.0,
                    heuristic: "h".into(),
                    targets: 1,
                    suppressions: 1,
                    recodings: 0,
                    risk_eval_ns,
                    dur_ns,
                })
                .collect(),
            risk_eval_ns: durs.iter().map(|&(_, r)| r).sum(),
            total_ns: total,
            fallback: None,
            warm: Default::default(),
            journal: Default::default(),
            progress: None,
        };
        let tree = emit_to_tree(&profile);
        prop_assert_eq!(tree.roots.len(), 1, "exactly one root");
        prop_assert_eq!(tree.nodes[tree.roots[0]].name.as_str(), "cycle.run");
        prop_assert_eq!(tree.nodes.len(), 2 + 2 * durs.len());
        assert_nested(&tree);
        // exporters never panic on these trees either
        let _ = tree.chrome_trace_json();
        let _ = tree.collapsed_stacks();
    }
}

/// The engine's emitted tree obeys the same nesting contract on a real
/// recursive-rule evaluation.
#[test]
fn engine_emit_produces_a_nested_trace_on_a_real_run() {
    let program = vadalog::parse_program(
        "edge(1, 2). edge(2, 3). edge(3, 4).\n\
         path(X, Y) :- edge(X, Y).\n\
         path(X, Y) :- edge(X, Z), path(Z, Y).",
    )
    .expect("parse");
    let rec = Arc::new(Recorder::new());
    let engine = vadalog::Engine::with_config(vadalog::EngineConfig {
        collector: Some(rec.clone()),
        ..Default::default()
    });
    engine
        .run(&program, vadalog::Database::new())
        .expect("fixpoint");

    let tree = TraceBuilder::from_recorder(&rec);
    let roots: Vec<&str> = tree
        .roots
        .iter()
        .map(|&r| tree.nodes[r].name.as_str())
        .collect();
    assert_eq!(roots, ["engine.run"], "one engine.run root, got {roots:?}");
    assert!(
        tree.nodes.iter().any(|n| n.name == "engine.stratum"),
        "strata spans present"
    );
    assert!(
        tree.nodes.iter().any(|n| n.name == "engine.round"),
        "round spans present"
    );
    assert_nested(&tree);
}
